//! # ruvo — Rule-based Updates with Versioned Objects
//!
//! A faithful, executable reproduction of
//! *Kramer, Lausen, Saake: "Updates in a Rule-Based Language for
//! Objects", VLDB 1992* — a deductive object-base update language in
//! which bottom-up evaluation is controlled through **version
//! identities** (`ins(v)`, `del(v)`, `mod(v)`).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`term`] — OIDs, update chains, version identities, unification,
//! * [`obase`] — the versioned object-base store (copy-on-write
//!   clones, O(1) [`Snapshot`] read views, binary persistence),
//! * [`lang`] — parser / AST / safety analysis for the update language,
//! * [`core`] — the `T_P` operator, stratification and fixpoint
//!   evaluation (the paper's contribution), plus the [`Database`]
//!   facade and the `ruvo check` static analyses (`core::check`:
//!   write-write conflicts, commutativity, dead rules),
//! * [`datalog`] — the Logres-style baseline engine,
//! * [`workload`] — deterministic synthetic workload generators,
//! * [`schema`] — classes, conformance and update-driven schema
//!   evolution (the §2.4 direction).
//!
//! ## Quickstart
//!
//! The central type is [`Database`]: a persistent handle over an
//! evolving object base. Programs are **prepared once** (parse +
//! safety check + stratification) and applied any number of times;
//! every application is an all-or-nothing transaction, and
//! [`Database::snapshot`] hands out O(1) copy-on-write read views
//! that stay stable while the database keeps committing.
//!
//! ```
//! use ruvo::prelude::*;
//!
//! // §2.1 of the paper: give every employee a 10% raise — exactly once,
//! // because the rule only matches *initial* (not-yet-updated) versions.
//! let mut db = Database::open_src(
//!     "henry.isa -> empl. henry.sal -> 250.
//!      mary.isa -> empl.  mary.sal -> 300.",
//! ).unwrap();
//! let raise = db.prepare(
//!     "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
//! ).unwrap();
//!
//! let before = db.snapshot();          // O(1) read view
//! db.apply(&raise).unwrap();           // compiled once, applied now
//!
//! assert_eq!(db.current().lookup1(oid("henry"), "sal"), vec![int(275)]);
//! assert_eq!(db.current().lookup1(oid("mary"), "sal"), vec![int(330)]);
//! // The snapshot still sees the pre-transaction state.
//! assert_eq!(before.lookup1(oid("henry"), "sal"), vec![int(250)]);
//!
//! // The transaction log keeps every version the update created.
//! let txn = db.log().last().unwrap();
//! assert!(txn.outcome.result().contains(
//!     Vid::object(oid("henry")).apply(UpdateKind::Mod).unwrap(),
//!     sym("sal"), &[], int(275),
//! ));
//! ```
//!
//! ### Durability
//!
//! [`Database::open_dir`] opens a database that survives the process:
//! commits append to a checksummed write-ahead log (fsynced before
//! the caller is acknowledged), checkpoints bound recovery time, and
//! reopening the directory replays exactly the acknowledged history —
//! see `ruvo::core::store` for the engine and the crash matrix.
//!
//! ### Migrating from the pre-`Database` API
//!
//! The one-shot shape `UpdateEngine::new(program).run(&ob)` still
//! works unchanged; `Database::open(ob)` + `prepare`/`apply` is the
//! same semantics with compilation amortized and errors unified under
//! [`Error`]/[`ErrorKind`].

pub mod paper;

pub use ruvo_core as core;
pub use ruvo_datalog as datalog;
pub use ruvo_lang as lang;
pub use ruvo_obase as obase;
pub use ruvo_schema as schema;
pub use ruvo_term as term;
pub use ruvo_workload as workload;

pub use ruvo_core::{
    Applied, CheckReport, CheckpointPolicy, Commutativity, CommutativityMatrix, Database,
    DatabaseBuilder, DepEdge, DepEdgeKind, Error, ErrorKind, FsyncPolicy, Prepared, QueryAnswers,
    QueryMode, QueryPlan, ReadSet, RuleDepGraph, ServingDatabase, SourceCheck, TopCause,
    Transaction, WriteSet,
};
pub use ruvo_lang::{Diagnostic, Goal, Level, Lint, LintLevels, Severity, Span};
pub use ruvo_obase::Snapshot;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use ruvo_core::{
        Applied, CheckReport, CheckpointPolicy, Commutativity, CommutativityMatrix, Database,
        DatabaseBuilder, EngineConfig, Error, ErrorKind, EvalError, FsyncPolicy, Outcome, Prepared,
        QueryAnswers, QueryMode, QueryPlan, ServingDatabase, Session, SourceCheck, Stratification,
        Transaction, UpdateEngine,
    };
    pub use ruvo_lang::{Diagnostic, Goal, Lint, Program, Rule, Severity};
    pub use ruvo_obase::{MethodApp, ObjectBase, Snapshot};
    pub use ruvo_term::{int, num, oid, sym, Chain, Const, Symbol, UpdateKind, Vid};
}
