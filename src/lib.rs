//! # ruvo — Rule-based Updates with Versioned Objects
//!
//! A faithful, executable reproduction of
//! *Kramer, Lausen, Saake: "Updates in a Rule-Based Language for
//! Objects", VLDB 1992* — a deductive object-base update language in
//! which bottom-up evaluation is controlled through **version
//! identities** (`ins(v)`, `del(v)`, `mod(v)`).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`term`] — OIDs, update chains, version identities, unification,
//! * [`obase`] — the versioned object-base store,
//! * [`lang`] — parser / AST / safety analysis for the update language,
//! * [`core`] — the `T_P` operator, stratification and fixpoint
//!   evaluation (the paper's contribution),
//! * [`datalog`] — the Logres-style baseline engine,
//! * [`workload`] — deterministic synthetic workload generators,
//! * [`schema`] — classes, conformance and update-driven schema
//!   evolution (the §2.4 direction).
//!
//! ## Quickstart
//!
//! ```
//! use ruvo::prelude::*;
//!
//! // §2.1 of the paper: give every employee a 10% raise — exactly once,
//! // because the rule only matches *initial* (not-yet-updated) versions.
//! let ob = ObjectBase::parse(
//!     "henry.isa -> empl. henry.sal -> 250.
//!      mary.isa -> empl.  mary.sal -> 300.",
//! ).unwrap();
//! let program = Program::parse(
//!     "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
//! ).unwrap();
//!
//! let outcome = UpdateEngine::new(program).run(&ob).unwrap();
//! let ob2 = outcome.new_object_base();
//! assert_eq!(ob2.lookup1(oid("henry"), "sal"), vec![int(275)]);
//! assert_eq!(ob2.lookup1(oid("mary"), "sal"), vec![int(330)]);
//! ```

pub mod paper;

pub use ruvo_core as core;
pub use ruvo_datalog as datalog;
pub use ruvo_lang as lang;
pub use ruvo_obase as obase;
pub use ruvo_schema as schema;
pub use ruvo_term as term;
pub use ruvo_workload as workload;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use ruvo_core::{
        EngineConfig, EvalError, Outcome, Stratification, UpdateEngine,
    };
    pub use ruvo_lang::{Program, Rule};
    pub use ruvo_obase::{MethodApp, ObjectBase};
    pub use ruvo_term::{
        int, num, oid, sym, Chain, Const, Symbol, UpdateKind, Vid,
    };
}
