//! # Paper-to-code tour
//!
//! A section-by-section map from *Kramer, Lausen, Saake: "Updates in a
//! Rule-Based Language for Objects" (VLDB 1992)* to this codebase.
//! This module contains no code — it is the annotated index a reader
//! holding the paper should start from.
//!
//! ## §1 Introduction
//!
//! VIDs "admit tracing back the history of updates performed on each
//! object" → [`crate::term::Vid`] (a base OID plus a packed
//! [`crate::term::Chain`] of update kinds) and
//! [`mod@crate::core::history`] (timeline reconstruction with per-step
//! diffs).
//!
//! ## §2.1 The update language
//!
//! | paper construct | code |
//! |---|---|
//! | OIDs `O` (values are OIDs) | [`crate::term::Const`] |
//! | variables (range over `O` only) | [`crate::term::VarId`], bound in [`crate::term::Bindings`] |
//! | function symbols `F = {ins, del, mod}` | [`crate::term::UpdateKind`] |
//! | version-id-terms | [`crate::term::VidTerm`] (pattern), [`crate::term::Vid`] (ground) |
//! | version-terms `v.m@a→r` | [`crate::lang::VersionAtom`]; stored form [`crate::obase::ObjectBase`] |
//! | update-terms `ins[v]…`, `del[v]…`, `mod[v]…(r,r')` | [`crate::lang::UpdateAtom`] / [`crate::lang::UpdateSpec`] |
//! | update-rules / update-facts | [`crate::lang::Rule`] |
//! | update-programs | [`crate::lang::Program`] |
//! | safety "cf. \[Ull88\]" | [`crate::lang::safety`] (range restriction + literal ordering) |
//! | set-valued methods | [`crate::obase::VersionState`] (sets of [`crate::obase::MethodApp`]) |
//! | `del[v]:` delete-all shorthand | `del[V].*` ([`crate::lang::UpdateSpec::DelAll`]) |
//! | path shorthand `v:m1→r1/m2→r2` | `/`-paths in the parser ([`crate::lang::parser`]) |
//!
//! The termination argument — "for safe rules only a finite number of
//! new versions can be derived" — holds structurally here: rule chains
//! are static, so every derivable VID's chain appears syntactically in
//! the program.
//!
//! ## §2.2 General idea
//!
//! "An update-program \[is\] a mapping from an (old) object-base into a
//! (new) object-base" → [`crate::core::UpdateEngine::run`] produces an
//! [`crate::core::Outcome`]; chained mappings with commit/rollback are
//! [`crate::core::Session`]. The production shape of the same idea is
//! [`crate::Database`]: programs are compiled once
//! ([`crate::Database::prepare`]) and applied repeatedly as
//! transactions, with O(1) [`crate::Snapshot`] read views between
//! them.
//!
//! ## §2.3 Examples
//!
//! All four are in [`crate::workload`] and as runnable `examples/`:
//! [`crate::workload::salary_raise_program`],
//! [`crate::workload::enterprise_program`] (+ Figure 2 trace in the
//! `enterprise` example and experiment F2),
//! [`crate::workload::hypothetical_program`],
//! [`crate::workload::ancestors_program`].
//!
//! ## §2.4 Discussion and comparison
//!
//! The Logres-style comparison target (deletion-in-head Datalog with
//! stratified/inflationary semantics and manually ordered modules) is
//! implemented in [`crate::datalog`]; experiment E8 reproduces the
//! fire-before-raise anomaly the section warns about.
//!
//! ## §3 The immediate consequence operator
//!
//! * Truth of ground version-/update-terms: [`crate::core::truth`]
//!   (one function per clause, including the `mod[v].m→(r,r)` case).
//! * The system method `exists` and `v*`:
//!   [`crate::obase::ObjectBase::exists_fact`] /
//!   [`crate::obase::ObjectBase::v_star`];
//!   `exists` is unupdatable by validation
//!   ([`crate::lang::validate`]).
//! * `T_P` steps 1–3: [`crate::core::tp::collect_rule`] (step 1, with
//!   head-truth filtering) and [`crate::core::tp::apply_updates`]
//!   (steps 2+3: relevant/active copy, then insert/delete/modify).
//! * The frame-problem note ("copying old states only for the objects
//!   being updated") is measured by experiment E7.
//!
//! ## §4 Bottom-up evaluation
//!
//! Conditions (a)–(d) over unification of version-id-terms:
//! [`crate::core::stratify`] (chain-exact unification per DESIGN.md
//! D2); the per-stratum fixpoint loop with overwrite semantics:
//! [`crate::core::UpdateEngine`] (DESIGN.md D1). The paper's example
//! stratification `{rule1, rule2} < {rule3} < {rule4}` is asserted in
//! `core::stratify::tests` and in the F2 experiment.
//!
//! ## §5 Building the new object base
//!
//! Version-linearity and its runtime check:
//! [`crate::obase::LinearityTracker`] (the paper's keep-the-most-recent
//! -VID scheme, O(1) per version); final versions and `ob′` extraction:
//! [`crate::core::Outcome::try_new_object_base`]. Objects whose final
//! state holds only `exists` vanish, as prescribed.
//!
//! ## §6 Conclusion (future work) — implemented extensions
//!
//! Every direction the conclusion names is implemented:
//!
//! * "quantify over VIDs in addition to OIDs … carefully not to
//!   destroy the termination properties" → `$V` variables
//!   ([`crate::term::VidRef`]; body-only, so the set of creatable
//!   versions is unchanged — see `tests/vid_variables.rs`);
//! * "stratification or related criteria which allow to accept a
//!   broader class of programs" → runtime stability checking
//!   ([`crate::core::CyclePolicy`], [`crate::core::stratify::stratify_relaxed`]);
//! * "alternatives to version-linearity" →
//!   [`crate::core::FinalVersionPolicy`] (deepest-wins / merge-maximal
//!   extraction of branching results);
//! * "derived objects" → [`crate::datalog::bridge`] (Datalog views
//!   over the flat `ob′`, outside the update fixpoint);
//! * "relationship to temporal logics" → [`mod@crate::core::history`]
//!   (timelines with per-step diffs) and [`crate::core::temporal`]
//!   (LTLf with past operators over those timelines);
//! * §2.4's schema-evolution remark → [`crate::schema`] (conformance
//!   checking + update-driven schema deltas);
//! * engineering extensions (snapshots, sessions, REPL, parallel
//!   evaluation, delta filtering, the `core::reference` executable
//!   specification with differential tests) are catalogued in
//!   DESIGN.md §4.
