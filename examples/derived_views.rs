//! Derived methods as Datalog views over the updated object base —
//! the §6 "derived objects" direction, kept outside the update
//! fixpoint (see `ruvo::datalog::bridge`).
//!
//! ```sh
//! cargo run --example derived_views
//! ```
//!
//! Workflow: run the §2.3 enterprise update on the base methods, then
//! evaluate derived methods (`grandboss`, `peer`) as views over `ob′`,
//! and finally bridge a view back into an object base to seed a second
//! update program.

use ruvo::datalog::{db_to_ob, evaluate, ob_to_db, parse_program, Semantics};
use ruvo::prelude::*;
use ruvo::workload::enterprise_program;

fn main() {
    let mut rdb = Database::open_src(
        "phil.isa -> empl.  phil.pos -> mgr.   phil.sal -> 4000.
         bob.isa -> empl.   bob.boss -> phil.  bob.sal -> 3600.
         eve.isa -> empl.   eve.boss -> bob.   eve.sal -> 3000.
         tom.isa -> empl.   tom.boss -> bob.   tom.sal -> 2900.",
    )
    .expect("object base parses");

    // 1. Base-method update (the paper's machinery).
    rdb.apply_program(enterprise_program()).expect("runs");
    let ob2 = rdb.snapshot();
    println!("updated object base:\n{ob2}");

    // 2. Derived methods as views (outside the update fixpoint, so the
    //    termination/stratification story of the paper is untouched).
    let mut db = ob_to_db(ob2.object_base()).expect("ob2 is flat");
    let views = parse_program(
        "grandboss(E, B2) <= boss(E, B) & boss(B, B2).
         peer(E, F) <= boss(E, B) & boss(F, B) & E != F.",
    )
    .expect("views parse");
    evaluate(&mut db, &views, Semantics::Modules, 1_000);

    assert!(db.contains(sym("grandboss"), &[oid("eve"), oid("phil")]));
    assert!(db.contains(sym("peer"), &[oid("eve"), oid("tom")]));
    println!("derived: eve's grandboss is phil; eve and tom are peers ✓");

    // 3. Bridge a view back and run a second update seeded by it.
    let derived = db_to_ob(&db, &[sym("grandboss")]).expect("arity ≥ 2");
    let mut seeded = ob2.to_object_base();
    for f in derived.iter() {
        seeded.insert(f.vid, f.method, f.args.clone(), f.result);
    }
    let mut seeded_db = Database::open(seeded);
    seeded_db.apply_src("skip_level: ins[E].mentor -> G <= E.grandboss -> G.").expect("runs");
    assert_eq!(seeded_db.current().lookup1(oid("eve"), "mentor"), vec![oid("phil")]);
    println!("second update consumed the derived view: eve.mentor -> phil ✓");
}
