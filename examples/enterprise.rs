//! The §2.3 enterprise update and the Figure-2 trace.
//!
//! ```sh
//! cargo run --example enterprise
//! ```
//!
//! Four rules: raise every salary by 10% (managers get an extra $200),
//! fire employees who out-earn a superior, and group the surviving
//! employees above $4500 into `hpe` (high-paid employees). The example
//! prints the version history of `phil` and `bob` — the paper's
//! Figure 2 — and checks the paper's stated outcome: "the update (as a
//! whole) leaves phil in the class hpe with a salary of $4600 and bob
//! fired".

use ruvo::prelude::*;
use ruvo::workload::{enterprise_program, PAPER_ENTERPRISE_OB};

fn main() {
    let mut db = Database::open_src(PAPER_ENTERPRISE_OB).expect("object base parses");
    println!("to-be-updated object base:\n{}", db.current());

    // Compiled once; reused below on the §2.4 variant base.
    let update = db.prepare_program(enterprise_program()).expect("stratifiable");
    let strat = update.stratification();
    println!("stratification (paper: {{rule1, rule2}} < {{rule3}} < {{rule4}}):\n  {strat}\n");

    db.apply(&update).expect("evaluation succeeds");
    let outcome = &db.log().last().expect("committed").outcome;

    // Figure 2: the version history of each object.
    for name in ["phil", "bob"] {
        println!("versions of {name}:");
        let mut versions: Vec<Vid> = outcome.result().versions_of(oid(name)).collect();
        versions.sort_by_key(|v| v.depth());
        for v in versions {
            let state = outcome.result().version(v).expect("version has facts");
            let mut apps: Vec<String> =
                state.iter().map(|(m, app)| format!("{m} {app:?}")).collect();
            apps.sort();
            println!("  {v}: {}", apps.join(", "));
        }
        println!();
    }

    let ob2 = db.current();
    println!("updated object base ob′:\n{ob2}");

    // The paper's stated outcome.
    let phil_isa = ob2.lookup1(oid("phil"), "isa");
    assert!(phil_isa.contains(&oid("empl")), "phil is still an employee");
    assert!(phil_isa.contains(&oid("hpe")), "phil joined hpe");
    assert_eq!(ob2.lookup1(oid("phil"), "sal"), vec![int(4600)], "phil earns $4600");
    assert!(!ob2.objects().any(|o| o == oid("bob")), "bob was fired (erased entirely)");
    println!("paper outcome reproduced ✓ (phil: hpe @ $4600; bob: fired)");

    // §2.4's control discussion: if bob earned only $4100, firing him
    // before the raise would have been wrong — the VIDs prevent that.
    // The prepared program is database-independent: reuse it here.
    let mut variant = Database::open_src(
        "phil.isa -> empl.  phil.pos -> mgr.    phil.sal -> 4000.
         bob.isa -> empl.   bob.boss -> phil.   bob.sal -> 4100.",
    )
    .expect("variant parses");
    variant.apply(&update).expect("runs");
    let ob2 = variant.current();
    assert_eq!(
        ob2.lookup1(oid("bob"), "sal"),
        vec![int(4510)],
        "bob (4100 → 4510) keeps his job: raises happen before firing"
    );
    assert!(ob2.lookup1(oid("bob"), "isa").contains(&oid("hpe")), "and he is hpe now");
    println!("§2.4 variant reproduced ✓ (bob at $4100 survives and joins hpe)");
}
