//! §2.3's recursive ancestors: set-valued methods and recursion through
//! `ins(X)` versions, checked against a ground-truth transitive closure
//! and against the Datalog baseline.
//!
//! ```sh
//! cargo run --example ancestors
//! ```

use ruvo::datalog::{evaluate, parse_program as parse_dl, Semantics};
use ruvo::prelude::*;
use ruvo::workload::{ancestors_program, Family, FamilyConfig};

fn main() {
    let family = Family::generate(FamilyConfig {
        generations: 5,
        per_generation: 8,
        parents_per_person: 2,
        seed: 11,
    });
    println!(
        "family: {} persons over {} generations, {} parent edges",
        family.population(),
        family.generations.len(),
        family.edges.len()
    );

    let mut rdb = Database::open(family.ob.clone());
    let closure = rdb.prepare_program(ancestors_program()).expect("stratifiable");
    rdb.apply(&closure).expect("runs");
    let outcome = &rdb.log().last().expect("committed").outcome;
    let ob2 = rdb.current();

    // Check every person against the ground-truth closure.
    let expected = family.expected_ancestors();
    for gen in &family.generations {
        for &p in gen {
            let mut got = ob2.lookup1(p, "anc");
            got.sort();
            let mut want: Vec<Const> = expected[&p].iter().copied().collect();
            want.sort();
            assert_eq!(got, want, "ancestors of {p}");
        }
    }
    println!("ancestor sets match the transitive closure ✓");

    // Cross-check cardinalities against the Datalog baseline.
    let mut db = family.as_datalog();
    let baseline = parse_dl(
        "anc(X, P) <= parents(X, P).
         anc(X, P) <= anc(X, A) & parents(A, P).",
    )
    .expect("baseline parses");
    let report = evaluate(&mut db, &baseline, Semantics::Modules, 10_000);
    let baseline_pairs = db.arity_count(sym("anc"));
    let ruvo_pairs: usize =
        family.generations.iter().flatten().map(|&p| ob2.lookup1(p, "anc").len()).sum();
    assert_eq!(baseline_pairs, ruvo_pairs);
    println!(
        "baseline agrees: {baseline_pairs} ancestor pairs (semi-naive, {} rounds)",
        report.rounds
    );

    let deepest = family.generations.last().unwrap()[0];
    println!(
        "sample: {deepest} has {} ancestors; evaluation took {} rounds total",
        ob2.lookup1(deepest, "anc").len(),
        outcome.stats().rounds
    );
}
