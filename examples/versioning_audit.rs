//! Version histories as an audit log, and the §5 linearity machinery.
//!
//! ```sh
//! cargo run --example versioning_audit
//! ```
//!
//! `result(P)` keeps every version an update-process created; the VIDs
//! "admit tracing back the history of updates performed on each
//! object" (§1). This example runs a multi-stage update and then walks
//! each object's version chain like an audit log, asks temporal (LTLf)
//! queries over the timelines (§6's "temporal characteristics"), and
//! shows the §5 runtime check rejecting a non-version-linear program.

use ruvo::core::temporal::{FactProp, Formula, Timeline};
use ruvo::prelude::*;

fn main() {
    let mut db = Database::open_src(
        "acct1.owner -> alice.  acct1.balance -> 100.  acct1.status -> active.
         acct2.owner -> bob.    acct2.balance -> 70.   acct2.status -> dormant.",
    )
    .expect("object base parses");

    // Stage 1 (mod): accrue 5% interest on active accounts.
    // Stage 2 (del): drop the status flag of dormant accounts.
    // Stage 3 (ins): tag every account version that went through
    //                stage 1 or 2 with an audit note.
    let audit = db
        .prepare(
            "interest: mod[A].balance -> (B, B2) <=
                 A.status -> active & A.balance -> B & B2 = B * 1.05.
             cleanup: del[A].status -> dormant <= A.status -> dormant.
             audit1: ins[mod(A)].audited -> interest <= mod[A].balance -> (B, B2).
             audit2: ins[del(A)].audited -> cleanup <= del[A].status -> dormant.",
        )
        .expect("program compiles");
    println!("stratification: {}\n", audit.stratification());
    db.apply(&audit).expect("runs");
    let outcome = &db.log().last().expect("committed").outcome;

    // Walk each object's linear version history.
    for base in ["acct1", "acct2"] {
        println!("history of {base}:");
        let mut versions: Vec<Vid> = outcome.result().versions_of(oid(base)).collect();
        versions.sort_by_key(|v| v.depth());
        for v in versions {
            let state = outcome.result().version(v).expect("has facts");
            let mut line: Vec<String> = state
                .iter()
                .filter(|(m, _)| *m != sym("exists"))
                .map(|(m, app)| format!("{m} {app:?}"))
                .collect();
            line.sort();
            println!("  depth {}: {v}\n           {}", v.depth(), line.join(", "));
        }
        println!();
    }

    // Temporal queries over the same data: each object's update
    // process is a finite trace, and ground method-applications are
    // temporal propositions.
    let t1 = Timeline::of(outcome.result(), oid("acct1")).expect("linear");
    let active = Formula::fact(sym("status"), oid("active"));
    let audited = Formula::fact(sym("audited"), oid("interest"));
    // acct1 stayed active throughout and was eventually audited.
    assert!(t1.check(&active.clone().always()));
    assert!(t1.check(&audited.clone().eventually()));
    // ... more precisely: it was active *until* audited.
    assert!(t1.check(&active.until(audited)));
    println!(
        "temporal: acct1 balance intervals {:?}, changed at steps {:?}",
        t1.intervals(&FactProp::new(sym("balance"), int(100))),
        t1.changed_at(sym("balance")),
    );

    let t2 = Timeline::of(outcome.result(), oid("acct2")).expect("linear");
    let dormant = Formula::fact(sym("status"), oid("dormant"));
    // At the end of acct2's trace the flag is gone but was once there.
    let last = t2.len() - 1;
    assert!(t2.eval(last, &!dormant.clone()));
    assert!(t2.eval(last, &Formula::Once(Box::new(dormant))));
    println!("temporal: acct2 went through {} update steps\n", last);

    let ob2 = db.current();
    println!("final object base:\n{ob2}");
    assert_eq!(ob2.lookup1(oid("acct1"), "balance"), vec![int(105)]);
    assert_eq!(ob2.lookup1(oid("acct1"), "audited"), vec![oid("interest")]);
    assert_eq!(ob2.lookup1(oid("acct2"), "status"), vec![]);
    assert_eq!(ob2.lookup1(oid("acct2"), "audited"), vec![oid("cleanup")]);

    // §5: a program creating incomparable versions of one object is
    // rejected at runtime — surfaced through the unified error type,
    // and the database is left exactly as it was.
    let mut bad_db = Database::open_src("o.m -> a.").unwrap();
    let before = bad_db.snapshot();
    let err = bad_db
        .apply_src(
            "mod[o].m -> (a, b) <= o.m -> a.
             del[o].m -> a <= o.m -> a.",
        )
        .expect_err("must be rejected");
    assert_eq!(err.kind(), ErrorKind::Linearity);
    assert_eq!(bad_db.current(), before.object_base());
    println!("\n§5 runtime check fired as expected ({}):\n  {err}", err.kind());
}
