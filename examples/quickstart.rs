//! Quickstart: the paper's §2.1 salary-raise rule, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the core loop: open a `Database` over an object base,
//! prepare an update-program once, take a snapshot, apply the program
//! transactionally, and inspect both the new state and the version
//! history the transaction kept.

use ruvo::prelude::*;

fn main() {
    // An object base is a set of ground version-terms (§2.1).
    let mut db = Database::open_src(
        "henry.isa -> empl.  henry.sal -> 250.
         mary.isa -> empl.   mary.sal -> 300.
         rex.isa -> dog.     rex.sal -> 0.",
    )
    .expect("object base parses");

    // "To every employee a 10% salary-raise has to be performed."
    // The rule matches only *initial* versions (the variable E ranges
    // over OIDs, never VIDs), so every employee is raised exactly once
    // and bottom-up evaluation terminates. `prepare` parses, validates,
    // safety-checks and stratifies exactly once.
    let raise = db
        .prepare("raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.")
        .expect("program compiles");
    println!("stratification: {}\n", raise.stratification());

    // An O(1) read view of the pre-transaction state.
    let before = db.snapshot();

    db.apply(&raise).expect("transaction commits");

    let txn = db.log().last().expect("one transaction committed");
    println!("result(P) — every version, including the update history:");
    print!("{}", txn.outcome.result());

    println!("\nupdated object base ob′:");
    print!("{}", db.current());

    println!("\nstats: {}", txn.outcome.stats());

    assert_eq!(db.current().lookup1(oid("henry"), "sal"), vec![int(275)]);
    assert_eq!(db.current().lookup1(oid("mary"), "sal"), vec![int(330)]);
    assert_eq!(db.current().lookup1(oid("rex"), "sal"), vec![int(0)], "dogs get no raise");
    // The snapshot still sees the old state — readers never block.
    assert_eq!(before.lookup1(oid("henry"), "sal"), vec![int(250)]);

    // A prepared program is reusable: apply it again for another 10%.
    db.apply(&raise).expect("second transaction commits");
    assert_eq!(db.current().lookup1(oid("henry"), "sal"), vec![num(302.5)]);
    println!("\nall assertions hold ✓ ({} transactions committed)", db.len());
}
