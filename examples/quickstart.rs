//! Quickstart: the paper's §2.1 salary-raise rule, end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the core loop: parse an object base, parse an
//! update-program, run it, inspect `result(P)` (old and new versions
//! side by side) and extract the updated object base.

use ruvo::prelude::*;

fn main() {
    // An object base is a set of ground version-terms (§2.1).
    let ob = ObjectBase::parse(
        "henry.isa -> empl.  henry.sal -> 250.
         mary.isa -> empl.   mary.sal -> 300.
         rex.isa -> dog.     rex.sal -> 0.",
    )
    .expect("object base parses");

    // "To every employee a 10% salary-raise has to be performed."
    // The rule matches only *initial* versions (the variable E ranges
    // over OIDs, never VIDs), so every employee is raised exactly once
    // and bottom-up evaluation terminates.
    let program = Program::parse(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
    )
    .expect("program parses");

    let engine = UpdateEngine::new(program);
    println!("stratification: {}\n", engine.stratify().expect("stratifiable"));

    let outcome = engine.run(&ob).expect("evaluation succeeds");

    println!("result(P) — every version, including the update history:");
    print!("{}", outcome.result());

    let ob2 = outcome.new_object_base();
    println!("\nupdated object base ob′:");
    print!("{ob2}");

    println!("\nstats: {}", outcome.stats());

    assert_eq!(ob2.lookup1(oid("henry"), "sal"), vec![int(275)]);
    assert_eq!(ob2.lookup1(oid("mary"), "sal"), vec![int(330)]);
    assert_eq!(ob2.lookup1(oid("rex"), "sal"), vec![int(0)], "dogs get no raise");
    println!("\nall assertions hold ✓");
}
