//! Schema evolution driven by an update-program (§2.4 / SZ87).
//!
//! ```sh
//! cargo run --example schema_evolution
//! ```
//!
//! The paper's update language is untyped; §2.4 observes that in a
//! strongly typed environment, inserts and deletes "would require
//! changes of corresponding class-definitions … because methods become
//! undefined, respectively defined". This example puts a class schema
//! next to the §2.3 enterprise update and shows the full loop:
//!
//! 1. the initial object base conforms to the schema,
//! 2. the update-program runs (salary raise, firing, hpe grouping),
//! 3. the updated base *violates* the schema (a class `hpe` appeared),
//! 4. the implied schema delta is inferred and applied,
//! 5. the evolved schema accepts the updated base.

use ruvo::prelude::*;
use ruvo::schema::{check, diff, ClassDef, MethodSig, Schema, TypeRef};
use ruvo::term::sym;

fn main() {
    // A typed view of the enterprise domain.
    let schema = Schema::builder()
        .class(
            "empl",
            ClassDef {
                parents: vec![],
                methods: vec![
                    MethodSig::new("sal", TypeRef::Num).required(),
                    MethodSig::new("boss", TypeRef::Instance(sym("empl"))),
                    MethodSig::new("pos", TypeRef::Sym),
                ],
            },
        )
        .build()
        .expect("schema is coherent");

    let ob = ObjectBase::parse(
        "phil.isa -> empl / pos -> mgr / sal -> 4000.
         bob.isa -> empl / boss -> phil / sal -> 4200.",
    )
    .expect("object base parses");

    println!("violations before update: {:?}", check(&schema, &ob));
    assert!(check(&schema, &ob).is_empty());

    // The paper's §2.3 enterprise update.
    let program = Program::parse(
        "rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
         rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
         rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
         rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.",
    )
    .expect("program parses");
    let mut rdb = Database::open(ob.clone());
    rdb.apply_program(program).expect("runs");
    let ob2 = rdb.current().clone();
    println!("\nupdated object base:\n{ob2}");

    // The untyped update left the typed world behind: phil now claims
    // membership in a class the schema never heard of.
    let violations = check(&schema, &ob2);
    println!("violations after update:");
    for v in &violations {
        println!("  {v}");
    }
    assert!(!violations.is_empty());

    // Infer the schema delta the program implied...
    let delta = diff(&schema, &ob, &ob2);
    println!("\ninferred schema delta:");
    for (class, sigs) in &delta.new_classes {
        let names: Vec<&str> = sigs.iter().map(|s| s.name.as_str()).collect();
        println!("  new class {class} with methods {names:?}");
    }
    for (class, sig) in &delta.added_methods {
        println!("  class {class}: method {} became defined ({})", sig.name, sig.result);
    }
    for (class, method) in &delta.removed_methods {
        println!("  class {class}: method {method} became undefined");
    }
    for class in &delta.emptied_classes {
        println!("  class {class} lost its last member");
    }
    assert!(delta.new_classes.iter().any(|(c, _)| *c == sym("hpe")));
    // bob (the only boss-haver) was fired.
    assert!(delta.removed_methods.contains(&(sym("empl"), sym("boss"))));

    // ...and evolve. The updated base now typechecks.
    let evolved = schema.evolve(&delta).expect("delta applies cleanly");
    assert!(evolved.has_class(sym("hpe")));
    assert!(check(&evolved, &ob2).is_empty());
    println!("\nevolved schema accepts the updated object base ✓");
}
