//! §2.3's hypothetical reasoning: "would peter be the richest employee
//! after a (non-linear) salary raise?" — performed and revised right
//! away via `mod(mod(e))` versions.
//!
//! ```sh
//! cargo run --example hypothetical
//! ```

use ruvo::prelude::*;
use ruvo::workload::hypothetical_program;

fn main() {
    // peter's factor is large; with it he would overtake everyone.
    let mut db = Database::open_src(
        "peter.isa -> empl.  peter.sal -> 3000.  peter.factor -> 1.8.
         anna.isa -> empl.   anna.sal -> 4000.   anna.factor -> 1.1.
         otto.isa -> empl.   otto.sal -> 5000.   otto.factor -> 1.02.",
    )
    .expect("object base parses");

    let what_if = db.prepare_program(hypothetical_program("peter")).expect("stratifiable");
    println!("stratification: {}\n", what_if.stratification());

    db.apply(&what_if).expect("evaluation succeeds");
    let outcome = &db.log().last().expect("committed").outcome;

    // The hypothetical salaries live on the mod(·) versions...
    println!("hypothetical (raised) salaries:");
    for name in ["peter", "anna", "otto"] {
        let v = Vid::object(oid(name)).apply(UpdateKind::Mod).unwrap();
        let sal: Vec<Const> = outcome.result().results(v, sym("sal"), &[]).collect();
        println!("  mod({name}).sal = {sal:?}");
    }

    let ob2 = db.current();
    println!("\nupdated object base ob′ (salaries reverted):\n{ob2}");

    // Salaries are unchanged — the raise was revised by rule2.
    assert_eq!(ob2.lookup1(oid("peter"), "sal"), vec![int(3000)]);
    assert_eq!(ob2.lookup1(oid("anna"), "sal"), vec![int(4000)]);
    assert_eq!(ob2.lookup1(oid("otto"), "sal"), vec![int(5000)]);
    // ...but the answer of the hypothetical query is recorded:
    // 3000·1.8 = 5400 beats 4400 and 5100.
    assert_eq!(ob2.lookup1(oid("peter"), "richest"), vec![oid("yes")]);
    println!("peter would be the richest ✓ (recorded, salaries untouched)");

    // Flip the scenario: with a small factor the answer is `no`. The
    // prepared what-if is reusable on the variant base.
    let mut db_no = Database::open_src(
        "peter.isa -> empl.  peter.sal -> 3000.  peter.factor -> 1.1.
         anna.isa -> empl.   anna.sal -> 4000.   anna.factor -> 1.2.",
    )
    .expect("variant parses");
    db_no.apply(&what_if).expect("runs");
    assert_eq!(db_no.current().lookup1(oid("peter"), "richest"), vec![oid("no")]);
    assert_eq!(db_no.current().lookup1(oid("peter"), "sal"), vec![int(3000)]);
    println!("negative variant ✓ (peter would not be the richest)");
}
