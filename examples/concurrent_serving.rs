//! Concurrent serving: many snapshot readers over a committing writer.
//!
//! `Database` is a single-owner handle; `ServingDatabase` upgrades it
//! into a cloneable, thread-safe one. Readers load the published head
//! with a couple of atomic operations — they never wait while a
//! commit is being computed — and every snapshot is a stable,
//! point-in-time view. Writes funnel through a single writer with
//! group commit: concurrent `apply` calls are drained as one batch
//! and the new head is published with one pointer swap.
//!
//! Run with: `cargo run --example concurrent_serving`

use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

use ruvo::prelude::*;
use ruvo::workload::{serving_scenario, ServingConfig};

fn main() {
    // A deterministic mixed workload: 60 accounts dealt into two
    // writer groups, each group credited by its own update program.
    let scenario =
        serving_scenario(ServingConfig { objects: 60, writers: 2, pad_methods: 2, seed: 7 });
    let db = Database::open(scenario.ob.clone()).into_serving();
    let programs: Vec<Prepared> = scenario
        .writer_programs
        .iter()
        .map(|p| Prepared::compile(p.clone(), Default::default()).expect("compiles"))
        .collect();

    const COMMITS_PER_WRITER: usize = 25;
    let done = AtomicBool::new(false);
    let observed = thread::scope(|s| {
        // Three readers poll snapshots for the duration of the run.
        // Every balance sum they observe is *some* committed state:
        // never a torn one, never a half-applied transaction.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let db = db.clone();
                let scenario = &scenario;
                let done = &done;
                s.spawn(move || {
                    let mut snapshots = 0u64;
                    let group = scenario.group_size(0) as i64;
                    while !done.load(Ordering::Relaxed) {
                        let snap = db.snapshot();
                        let credited = scenario.balance_sum(&snap) - scenario.initial_balance_sum;
                        // Each commit credits one whole group: any sum
                        // that is not a multiple of the group size is a
                        // torn read of a half-applied transaction.
                        assert_eq!(credited % group, 0, "torn read: {credited} credits");
                        assert!((0..=2 * COMMITS_PER_WRITER as i64 * group).contains(&credited));
                        snapshots += 1;
                    }
                    snapshots
                })
            })
            .collect();

        // Two writers, one per account group, committing concurrently.
        let writers: Vec<_> = programs
            .iter()
            .map(|prepared| {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..COMMITS_PER_WRITER {
                        db.apply(prepared).expect("commit succeeds");
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        done.store(true, Ordering::Relaxed);
        readers.into_iter().map(|r| r.join().expect("reader")).sum::<u64>()
    });

    // Every commit credited every account of its group exactly once.
    let expected = scenario.expected_balance_sum(&[COMMITS_PER_WRITER, COMMITS_PER_WRITER]);
    let final_sum = scenario.balance_sum(&db.current());
    assert_eq!(final_sum, expected);
    println!("{} commits across 2 writers, {} snapshots across 3 readers", db.commits(), observed);
    println!(
        "final balance sum {final_sum} == initial {} + {} credits ✓",
        scenario.initial_balance_sum,
        expected - scenario.initial_balance_sum
    );
    println!("head published {} times (group commit folds batches)", db.epoch());
}
