//! Interactive session mode: `ruvo repl [base-file]`.
//!
//! Update-rules typed at the prompt are collected until a line ends
//! with `.`, then applied as one transactional update-program through
//! a [`ruvo_core::Database`] handle. Meta-commands start with `:`.

use std::io::{BufRead, Write};

use ruvo_core::{history, Database};
use ruvo_lang::Program;
use ruvo_obase::{snapshot, ObjectBase};
use ruvo_term::oid;

const HELP: &str = "\
commands:
  :load <file>        load object base (text .ob or binary snapshot)
  :save [--bin|--text] <file>
                      save object base; without a flag the extension
                      decides (.snap/.ruvosnap → binary, else text)
  :show [object]      print the object base (or one object)
  :history <object>   version history of <object> in the last transaction
  :run <file>         apply a program file as a transaction
  :strata <file>      show the stratification of a program file
  :check <file>       static analysis: lints, conflicts, dead rules
  :deps <file>        rule dependency graph: read/write sets,
                      per-stratum components, advisory lints
  :savepoint          create a savepoint
  :rollback <n>       roll back to savepoint n
  :log                list committed transactions
  :stats              object base statistics
  :set threads <n>    parallel evaluation with n worker threads
                      (0 = serial, the default; results are identical)
  :help               this help
  :quit               leave
?- B1 & ... & Bk .    query goal, answered against the current base
                      (demand-driven; never commits)
anything else: update-rules, applied as one transaction once a line
ends with `.`";

/// Run the REPL over arbitrary reader/writer (tests drive it with
/// buffers; `main` passes stdin/stdout).
pub fn run(
    input: impl BufRead,
    out: &mut impl Write,
    initial: Option<ObjectBase>,
) -> std::io::Result<()> {
    let mut db = Database::open(initial.unwrap_or_default());
    let mut savepoints: Vec<ruvo_core::SavepointId> = Vec::new();
    let mut pending = String::new();

    writeln!(out, "ruvo repl — :help for commands")?;
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(cmd) = trimmed.strip_prefix(':') {
            if !pending.is_empty() {
                writeln!(out, "! discarded incomplete rule input")?;
                pending.clear();
            }
            let mut parts = cmd.splitn(2, char::is_whitespace);
            let verb = parts.next().unwrap_or("");
            let arg = parts.next().map(str::trim).filter(|s| !s.is_empty());
            match (verb, arg) {
                ("quit" | "q" | "exit", _) => break,
                ("help" | "h", _) => writeln!(out, "{HELP}")?,
                ("show", None) => write!(out, "{}", db.current())?,
                ("show", Some(name)) => {
                    let base = oid(name);
                    let mut any = false;
                    for fact in db.current().facts_sorted() {
                        if fact.vid.base() == base {
                            writeln!(out, "{fact}")?;
                            any = true;
                        }
                    }
                    if !any {
                        writeln!(out, "! no facts for {name}")?;
                    }
                }
                ("stats", _) => writeln!(out, "{}", db.current().stats())?,
                ("log", _) => {
                    if db.is_empty() {
                        writeln!(out, "(no transactions)")?;
                    }
                    for txn in db.log() {
                        writeln!(
                            out,
                            "#{}: {} — {} facts after",
                            txn.seq,
                            txn.outcome.stats(),
                            txn.facts_after
                        )?;
                    }
                }
                ("history", Some(name)) => match db.log().last() {
                    None => writeln!(out, "! no transactions yet")?,
                    Some(txn) => match history(txn.outcome.result(), oid(name)) {
                        None => writeln!(out, "! no history for {name} in the last transaction")?,
                        Some(h) => {
                            for step in &h.steps {
                                let kind = step
                                    .kind
                                    .map_or("initial".to_string(), |k| k.keyword().to_string());
                                writeln!(out, "{} [{kind}]", step.vid)?;
                                for (m, args, r) in &step.added {
                                    if args.is_empty() {
                                        writeln!(out, "  + {m} -> {r}")?;
                                    } else {
                                        writeln!(out, "  + {m} @ {args} -> {r}")?;
                                    }
                                }
                                for (m, args, r) in &step.removed {
                                    if args.is_empty() {
                                        writeln!(out, "  - {m} -> {r}")?;
                                    } else {
                                        writeln!(out, "  - {m} @ {args} -> {r}")?;
                                    }
                                }
                            }
                        }
                    },
                },
                ("load", Some(path)) => match load_base(path) {
                    Ok(ob) => {
                        writeln!(out, "loaded {} ({})", path, ob.stats())?;
                        db = Database::open(ob);
                        savepoints.clear();
                    }
                    Err(e) => writeln!(out, "! {e}")?,
                },
                ("save", Some(arg)) => {
                    let (first, rest) = match arg.split_once(char::is_whitespace) {
                        Some((first, rest)) => (first, rest.trim()),
                        None => (arg, ""),
                    };
                    let (format, path) = match first {
                        "--bin" => (Some(SaveFormat::Binary), rest),
                        "--text" => (Some(SaveFormat::Text), rest),
                        _ => (None, arg),
                    };
                    if path.is_empty() {
                        writeln!(out, "! :save [--bin|--text] <file>")?;
                    } else {
                        match save_base_as(db.current(), path, format) {
                            Ok(written) => writeln!(out, "saved {path} ({written})")?,
                            Err(e) => writeln!(out, "! {e}")?,
                        }
                    }
                }
                ("run", Some(path)) => match std::fs::read_to_string(path) {
                    Err(e) => writeln!(out, "! cannot read {path}: {e}")?,
                    Ok(src) => apply(&mut db, &src, out)?,
                },
                ("strata", Some(path)) => match std::fs::read_to_string(path) {
                    Err(e) => writeln!(out, "! cannot read {path}: {e}")?,
                    Ok(src) => match Program::parse(&src) {
                        Err(e) => writeln!(out, "! {e}")?,
                        Ok(p) => match ruvo_core::stratify::stratify(&p) {
                            Err(e) => writeln!(out, "! {e}")?,
                            Ok(s) => writeln!(out, "{s}")?,
                        },
                    },
                },
                ("check", Some(path)) => match std::fs::read_to_string(path) {
                    Err(e) => writeln!(out, "! cannot read {path}: {e}")?,
                    Ok(src) => {
                        let report =
                            ruvo_core::check::check_source(&src, ruvo_core::CyclePolicy::Reject);
                        if let Some(compiled) = &report.compiled {
                            writeln!(
                                out,
                                "{} rules, {} strata; commutativity: {}",
                                compiled.program().len(),
                                compiled.stratification().len(),
                                if compiled.commutativity().all_commute() {
                                    "all same-stratum pairs commute"
                                } else {
                                    "some pairs conflict or are undecided"
                                }
                            )?;
                        }
                        if report.diagnostics.is_empty() {
                            writeln!(out, "ok: no diagnostics")?;
                        } else {
                            let rendered = ruvo_lang::analysis::render_all(
                                &report.diagnostics,
                                Some(&src),
                                Some(path),
                            );
                            write!(out, "{rendered}")?;
                        }
                    }
                },
                ("deps", Some(path)) => match std::fs::read_to_string(path) {
                    Err(e) => writeln!(out, "! cannot read {path}: {e}")?,
                    Ok(src) => {
                        let report =
                            ruvo_core::check::check_source(&src, ruvo_core::CyclePolicy::Reject);
                        match &report.compiled {
                            None => {
                                writeln!(out, "! program did not compile (:check for details)")?
                            }
                            Some(compiled) => {
                                let deps = compiled.deps();
                                let program = compiled.program();
                                writeln!(
                                    out,
                                    "{} rule(s), {} dependency edge(s)",
                                    deps.len(),
                                    deps.edges().len()
                                )?;
                                for r in 0..deps.len() {
                                    let marker = if deps.self_dependent(r) {
                                        " (self-dependent)"
                                    } else {
                                        ""
                                    };
                                    writeln!(
                                        out,
                                        "  {}: writes {}{marker}",
                                        program.rule_name(r),
                                        deps.write_str(r)
                                    )?;
                                }
                                for si in 0..compiled.stratification().len() {
                                    let comps = deps.stratum_components(si);
                                    let listing: Vec<String> = comps
                                        .iter()
                                        .map(|comp| {
                                            let names: Vec<String> = comp
                                                .iter()
                                                .map(|&r| program.rule_name(r))
                                                .collect();
                                            format!("{{{}}}", names.join(", "))
                                        })
                                        .collect();
                                    writeln!(
                                        out,
                                        "  stratum {si}: {} component(s): {}",
                                        comps.len(),
                                        listing.join(" ")
                                    )?;
                                }
                                if !report.advisories.is_empty() {
                                    let rendered = ruvo_lang::analysis::render_all(
                                        &report.advisories,
                                        Some(&src),
                                        Some(path),
                                    );
                                    write!(out, "{rendered}")?;
                                }
                            }
                        }
                    }
                },
                ("savepoint", _) => {
                    let id = db.savepoint();
                    savepoints.push(id);
                    writeln!(out, "savepoint {}", savepoints.len() - 1)?;
                }
                ("rollback", arg) => {
                    let idx = arg.and_then(|a| a.parse::<usize>().ok());
                    let target = match idx {
                        Some(i) => savepoints.get(i).copied(),
                        None => savepoints.last().copied(),
                    };
                    match target {
                        None => writeln!(out, "! no such savepoint")?,
                        Some(sp) => match db.rollback_to(sp) {
                            Ok(()) => writeln!(out, "rolled back")?,
                            Err(e) => writeln!(out, "! {e}")?,
                        },
                    }
                }
                ("set", arg) => {
                    // One knob for now: `:set threads <n>`. n = 0 turns
                    // parallel evaluation off; n >= 1 turns it on with
                    // an n-worker cap. Either way results are
                    // unchanged — only execution strategy moves.
                    let parsed = arg.and_then(|a| {
                        let (key, value) = a.split_once(char::is_whitespace)?;
                        (key == "threads").then(|| value.trim().parse::<usize>().ok())?
                    });
                    match parsed {
                        Some(0) => {
                            db.set_parallel(false);
                            db.set_threads(0);
                            writeln!(out, "threads: serial evaluation")?;
                        }
                        Some(n) => {
                            db.set_parallel(true);
                            db.set_threads(n);
                            writeln!(out, "threads: parallel evaluation, {n} workers")?;
                        }
                        None => writeln!(out, "! :set threads <n>")?,
                    }
                }
                (other, _) => writeln!(out, "! unknown command :{other} (:help)")?,
            }
            continue;
        }

        // Rule or goal input: accumulate until a line ends the
        // statement.
        pending.push_str(trimmed);
        pending.push('\n');
        if trimmed.ends_with('.') {
            let src = std::mem::take(&mut pending);
            if src.trim_start().starts_with("?-") {
                query(&db, &src, out)?;
            } else {
                apply(&mut db, &src, out)?;
            }
        }
    }
    Ok(())
}

fn query(db: &Database, src: &str, out: &mut impl Write) -> std::io::Result<()> {
    let goal = match ruvo_lang::Goal::parse(src) {
        Ok(g) => g,
        Err(e) => return writeln!(out, "! {e}"),
    };
    // A goal over the empty update-program asks the committed base
    // itself (the demand rewrite degenerates to a direct match).
    match db.prepare("").and_then(|empty| db.query(&empty, goal)) {
        Ok(answers) => writeln!(out, "{answers}"),
        Err(e) => writeln!(out, "! {e}"),
    }
}

fn apply(db: &mut Database, src: &str, out: &mut impl Write) -> std::io::Result<()> {
    match db.apply_src(src) {
        Ok(txn) => writeln!(
            out,
            "ok: txn #{} — {} ({} facts now)",
            txn.seq,
            txn.outcome.stats(),
            txn.facts_after
        ),
        Err(e) => writeln!(out, "! {e}"),
    }
}

/// Load a base from text or snapshot, sniffing the magic bytes.
pub fn load_base(path: &str) -> Result<ObjectBase, String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if data.starts_with(b"RUVO") {
        return snapshot::read(&data).map_err(|e| format!("snapshot {path}: {e}"));
    }
    let text = String::from_utf8(data).map_err(|_| format!("{path}: not UTF-8"))?;
    ObjectBase::parse(&text).map_err(|e| e.to_string())
}

/// The two on-disk representations `:save`/`convert` can write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaveFormat {
    /// Checksummed binary snapshot.
    Binary,
    /// The textual interchange format.
    Text,
}

impl SaveFormat {
    fn describe(self) -> &'static str {
        match self {
            SaveFormat::Binary => "binary snapshot",
            SaveFormat::Text => "text",
        }
    }
}

/// Save as snapshot for `.snap`/`.ruvosnap` extensions, else text
/// (the extension-sniffing default; see [`save_base_as`] to force a
/// format explicitly).
pub fn save_base(ob: &ObjectBase, path: &str) -> Result<(), String> {
    save_base_as(ob, path, None).map(|_| ())
}

/// Save `ob` to `path`. `format` forces the representation; `None`
/// keeps the extension-sniffing default. Returns a human-readable
/// name of the format actually written, so callers can say what
/// happened instead of guessing.
pub fn save_base_as(
    ob: &ObjectBase,
    path: &str,
    format: Option<SaveFormat>,
) -> Result<&'static str, String> {
    let format = format.unwrap_or({
        if path.ends_with(".snap") || path.ends_with(".ruvosnap") {
            SaveFormat::Binary
        } else {
            SaveFormat::Text
        }
    });
    match format {
        SaveFormat::Binary => snapshot::save_file(ob, path).map_err(|e| e.to_string())?,
        SaveFormat::Text => {
            std::fs::write(path, ob.to_string()).map_err(|e| format!("cannot write {path}: {e}"))?
        }
    }
    Ok(format.describe())
}
