//! `ruvo` — command-line driver for update-programs.
//!
//! ```text
//! ruvo check   <program.ruvo> [--json]        static analysis: validate,
//!                                              stratify, lint (conflicts,
//!                                              dead rules, cycle policy)
//!     --deps          rule dependency analysis: read/write sets,
//!                     per-stratum components, advisory lints
//!     --dot           with --deps: emit the dependency graph as DOT
//!     --deny          exit non-zero on warnings too (CI parity with
//!                     DatabaseBuilder::deny_lints)
//! ruvo explain <program.ruvo>                 stratification constraints
//! ruvo fmt     <program.ruvo>                 pretty-print
//! ruvo run     <program.ruvo> <base.ob>       evaluate and print ob′
//!     --result        print result(P) (all versions) instead of ob′
//!     --stats         print evaluation statistics
//!     --trace         print per-stratum traces
//!     --no-linearity  disable the §5 runtime check
//!     --naive         disable rule-level delta filtering
//!     --parallel      evaluate rules on multiple threads
//!     --threads N     cap parallel evaluation at N workers (0 = auto)
//!     --dynamic       accept statically non-stratifiable programs
//!                     under the runtime stability check (§6 extension)
//! ruvo serve   <base.ob> <program.ruvo>       concurrent serving demo
//!     --readers N     reader threads (default 4)
//!     --commits K     writer transactions (default 50)
//!     --data-dir D    serve durably: WAL + checkpoints under D
//!                     (recovers D if it already holds a database —
//!                     the base file then only seeds a fresh D)
//!     --ack-file F    append one line per acknowledged commit
//!                     (crash-test hook)
//!     (durable serves run incremental checkpoints on a background
//!     thread and log each completion to stderr)
//! ruvo recover <data-dir>                      checkpoint/WAL stats +
//!                                              dry-run recovery report
//!     --compact       then fold the checkpoint chain into one fresh
//!                     full generation (modifies the directory)
//! ```

mod repl;

use std::process::ExitCode;

use ruvo_core::store;
use ruvo_core::{CyclePolicy, Database, Prepared, TraceLevel};
use ruvo_lang::Program;
use ruvo_obase::ObjectBase;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ruvo check   <program.ruvo> [--json] [--deps] [--dot] [--deny]\n  \
         ruvo explain <program.ruvo>\n  \
         ruvo fmt     <program.ruvo>\n  ruvo run     <program.ruvo> <base.ob> \
         [--result] [--stats] [--trace] [--no-linearity] [--naive] [--parallel] [--threads N] \
         [--dynamic]\n  \
         ruvo serve   <base.ob> <program.ruvo> [--readers N] [--commits K] \
         [--data-dir D] [--ack-file F]\n  \
         ruvo recover <data-dir> [--compact]\n  \
         ruvo repl    [base]\n  ruvo convert <in> <out>   (text ↔ .snap snapshot)"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("error: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn load_program(path: &str) -> Result<Program, ExitCode> {
    let src = read(path)?;
    Program::parse(&src).map_err(|e| {
        eprintln!("error: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    match command.as_str() {
        "check" => {
            let mut opts = CheckOpts::default();
            let mut path = None;
            for arg in &args[1..] {
                match arg.as_str() {
                    "--json" => opts.json = true,
                    "--deps" => opts.deps = true,
                    "--dot" => {
                        // DOT is a dependency-graph rendering, so
                        // asking for it asks for the analysis too.
                        opts.deps = true;
                        opts.dot = true;
                    }
                    "--deny" => opts.deny = true,
                    p if path.is_none() && !p.starts_with("--") => path = Some(p),
                    other => {
                        eprintln!("error: unknown argument {other}");
                        return usage();
                    }
                }
            }
            let Some(path) = path else { return usage() };
            let src = match read(path) {
                Ok(src) => src,
                Err(code) => return code,
            };
            check_command(path, &src, opts)
        }
        "explain" => {
            let Some(path) = args.get(1) else { return usage() };
            let program = match load_program(path) {
                Ok(p) => p,
                Err(code) => return code,
            };
            match Prepared::compile(program, CyclePolicy::Reject) {
                Ok(prepared) => {
                    let strat = prepared.stratification();
                    println!("stratification: {strat}");
                    println!("constraints:");
                    for e in &strat.edges {
                        println!(
                            "  {} {} {}   via condition {}",
                            strat.rule_names[e.from],
                            if e.strict { "<" } else { "=<" },
                            strat.rule_names[e.to],
                            e.condition
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "fmt" => {
            let Some(path) = args.get(1) else { return usage() };
            match load_program(path) {
                Ok(p) => {
                    print!("{p}");
                    ExitCode::SUCCESS
                }
                Err(code) => code,
            }
        }
        "run" => {
            let (Some(ppath), Some(obpath)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut flags: Vec<&str> = Vec::new();
            let mut threads: usize = 0;
            let mut rest = args[3..].iter().map(String::as_str);
            while let Some(arg) = rest.next() {
                match arg {
                    "--result" | "--stats" | "--trace" | "--no-linearity" | "--naive"
                    | "--parallel" | "--dynamic" => flags.push(arg),
                    "--threads" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(n) => threads = n,
                        None => {
                            eprintln!("error: --threads needs a number");
                            return usage();
                        }
                    },
                    unknown => {
                        eprintln!("error: unknown flag {unknown}");
                        return usage();
                    }
                }
            }
            let program = match load_program(ppath) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let ob = match read(obpath) {
                Ok(src) => match ObjectBase::parse(&src) {
                    Ok(ob) => ob,
                    Err(e) => {
                        eprintln!("error: {obpath}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(code) => return code,
            };
            let mut db = Database::builder()
                .check_linearity(!flags.contains(&"--no-linearity"))
                .delta_filtering(!flags.contains(&"--naive"))
                .parallel(flags.contains(&"--parallel"))
                .threads(threads)
                .trace(if flags.contains(&"--trace") {
                    TraceLevel::Rounds
                } else {
                    TraceLevel::Strata
                })
                .cycle_policy(if flags.contains(&"--dynamic") {
                    CyclePolicy::RuntimeStability
                } else {
                    CyclePolicy::Reject
                })
                .open(ob);
            let prepared = match db.prepare_program(program) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // --result inspects result(P) without extracting ob′, so it
            // must not hit the commit gate: a dry-run `evaluate` keeps
            // non-version-linear results printable (--no-linearity).
            let show_result = flags.contains(&"--result");
            let outcome = if show_result {
                match db.evaluate(&prepared) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match db.apply(&prepared) {
                    Ok(txn) => txn.outcome.clone(),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            if flags.contains(&"--trace") {
                eprintln!("stratification: {}", outcome.stratification());
                for st in outcome.stratum_traces() {
                    eprintln!("  {st}");
                }
            }
            if show_result {
                print!("{}", outcome.result());
            } else {
                print!("{}", db.current());
            }
            if flags.contains(&"--stats") {
                eprintln!("stats: {}", outcome.stats());
            }
            ExitCode::SUCCESS
        }
        "repl" => {
            let initial = match args.get(1) {
                Some(path) => match repl::load_base(path) {
                    Ok(ob) => Some(ob),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            match repl::run(stdin.lock(), &mut stdout, initial) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "convert" => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            match repl::load_base(input).and_then(|ob| repl::save_base(&ob, output)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "serve" => {
            let (Some(obpath), Some(ppath)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut readers = 4usize;
            let mut commits = 50usize;
            let mut data_dir: Option<String> = None;
            let mut ack_file: Option<String> = None;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                let count =
                    |v: Option<&String>| v.and_then(|s| s.parse::<usize>().ok()).filter(|&n| n > 0);
                let bad = |flag: &str| {
                    eprintln!("error: bad flag/value near {flag}");
                    usage()
                };
                match flag.as_str() {
                    "--readers" => match count(rest.next()) {
                        Some(n) => readers = n,
                        None => return bad(flag),
                    },
                    "--commits" => match count(rest.next()) {
                        Some(n) => commits = n,
                        None => return bad(flag),
                    },
                    "--data-dir" => match rest.next() {
                        Some(d) => data_dir = Some(d.clone()),
                        None => return bad(flag),
                    },
                    "--ack-file" => match rest.next() {
                        Some(f) => ack_file = Some(f.clone()),
                        None => return bad(flag),
                    },
                    _ => return bad(flag),
                }
            }
            let program = match load_program(ppath) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let ob = match repl::load_base(obpath) {
                Ok(ob) => ob,
                Err(e) => {
                    eprintln!("error: {obpath}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // With --data-dir the base file only seeds a fresh
            // directory; an existing directory recovers and wins.
            let db = match &data_dir {
                Some(dir) => match Database::builder().data_dir(dir).seed(ob).open_dir() {
                    Ok(db) => {
                        eprintln!("data dir {dir}: {} facts after recovery", db.current().len());
                        db
                    }
                    Err(e) => {
                        eprintln!("error: {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => Database::open(ob),
            };
            match serve_demo(db, program, readers, commits, ack_file.as_deref()) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "recover" => {
            let Some(dir) = args.get(1) else { return usage() };
            let compact = match args.get(2).map(String::as_str) {
                None => false,
                Some("--compact") => true,
                Some(flag) => {
                    eprintln!("error: bad flag {flag}");
                    return usage();
                }
            };
            match recover_report(std::path::Path::new(dir)) {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("error: {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if compact {
                // Offline chain compaction: recover the directory for
                // real, then rewrite the chain as one full generation.
                match Database::builder().data_dir(dir).open_dir().and_then(|mut db| {
                    let outcome = db.compact()?;
                    Ok((outcome, db.len()))
                }) {
                    Ok((outcome, txns)) => {
                        println!("compacted: {outcome} at {txns} transaction(s)");
                    }
                    Err(e) => {
                        eprintln!("error: {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Flags accepted by `ruvo check` (beyond the program path).
#[derive(Clone, Copy, Default)]
struct CheckOpts {
    /// Emit one JSON object instead of rustc-style text.
    json: bool,
    /// Include the rule dependency analysis: read/write sets,
    /// per-stratum components, and the advisory lints.
    deps: bool,
    /// With `deps`: print the dependency graph as Graphviz DOT on
    /// stdout (text mode only; `--json` embeds the graph instead).
    dot: bool,
    /// Treat warnings as fatal for the exit code (the CLI analogue of
    /// [`ruvo_core::DatabaseBuilder::deny_lints`]).
    deny: bool,
}

/// `ruvo check`: run the full static-analysis pass over one program
/// and print rustc-style diagnostics (or a JSON report with `--json`).
/// Exits with failure exactly when an error-severity diagnostic —
/// syntax, validation, safety, or a denied lint — rejects the program
/// (with `--deny`, warnings reject it too).
fn check_command(path: &str, src: &str, opts: CheckOpts) -> ExitCode {
    use ruvo_core::check;
    use ruvo_lang::analysis;

    let report = check::check_source(src, CyclePolicy::Reject);
    let (errors, warnings) = report.diagnostics.iter().fold((0usize, 0usize), |(e, w), d| {
        if d.is_error() {
            (e + 1, w)
        } else {
            (e, w + 1)
        }
    });

    if opts.json {
        let mut out = String::from("{");
        out.push_str(&format!("\"file\":\"{}\",", analysis::json_escape(path)));
        match &report.compiled {
            Some(compiled) => {
                let strat = compiled.stratification();
                out.push_str(&format!(
                    "\"rules\":{},\"strata\":{},\"all_commute\":{},",
                    compiled.program().len(),
                    strat.len(),
                    compiled.commutativity().all_commute()
                ));
            }
            None => out.push_str("\"rules\":null,\"strata\":null,\"all_commute\":null,"),
        }
        out.push_str(&format!(
            "\"errors\":{errors},\"warnings\":{warnings},\"diagnostics\":{}",
            analysis::json_array(&report.diagnostics)
        ));
        if opts.deps {
            out.push_str(&format!(",\"advisories\":{}", analysis::json_array(&report.advisories)));
            match &report.compiled {
                Some(compiled) => out.push_str(&format!(
                    ",\"deps\":{}",
                    compiled.deps().to_json(compiled.program())
                )),
                None => out.push_str(",\"deps\":null"),
            }
        }
        out.push('}');
        println!("{out}");
    } else if opts.dot {
        // DOT mode prints only the graph on stdout so it pipes
        // straight into `dot -Tsvg`; diagnostics still go to stderr.
        match &report.compiled {
            Some(compiled) => print!("{}", compiled.deps().to_dot(compiled.program())),
            None => eprintln!("error: {path}: program did not compile; no dependency graph"),
        }
        let rendered = analysis::render_all(&report.diagnostics, Some(src), Some(path));
        if !rendered.is_empty() {
            eprint!("{rendered}");
        }
        if report.compiled.is_none() {
            return ExitCode::FAILURE;
        }
    } else {
        if let Some(compiled) = &report.compiled {
            let strat = compiled.stratification();
            println!("{path}: {} rules, {} strata", compiled.program().len(), strat.len());
            println!("stratification: {strat}");
            let matrix = compiled.commutativity();
            if matrix.all_commute() {
                println!("commutativity: all same-stratum pairs commute");
            } else {
                let conflicts = matrix.pairs_with(check::Commutativity::Conflicts).len();
                let unknown = matrix.pairs_with(check::Commutativity::Unknown).len();
                println!("commutativity: {conflicts} conflicting, {unknown} undecided pair(s)");
            }
            if opts.deps {
                print_deps_summary(compiled);
            }
        }
        let rendered = analysis::render_all(&report.diagnostics, Some(src), Some(path));
        if !rendered.is_empty() {
            eprint!("{rendered}");
        }
        if opts.deps && !report.advisories.is_empty() {
            let rendered = analysis::render_all(&report.advisories, Some(src), Some(path));
            eprint!("{rendered}");
        }
        match (errors, warnings) {
            (0, 0) => println!("ok: no diagnostics"),
            (e, w) => eprintln!("{e} error(s), {w} warning(s)"),
        }
    }
    if errors > 0 || (opts.deny && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `--deps` text report: per-rule read/write sets and the
/// per-stratum dependency components the scheduler parallelizes over.
fn print_deps_summary(compiled: &ruvo_core::CompiledProgram) {
    let deps = compiled.deps();
    let program = compiled.program();
    println!("dependency graph: {} rule(s), {} edge(s)", deps.len(), deps.edges().len());
    for r in 0..deps.len() {
        let reads = deps.reads(r);
        let mut read_parts: Vec<String> = reads
            .keys
            .iter()
            .map(|&(c, m)| ruvo_core::deps::read_str(c, m))
            .chain(
                reads
                    .negated
                    .iter()
                    .map(|&(c, m)| format!("not {}", ruvo_core::deps::read_str(c, m))),
            )
            .collect();
        if reads.is_top() {
            read_parts.push("⊤".to_string());
        }
        let marker = if deps.self_dependent(r) { " (self-dependent)" } else { "" };
        println!(
            "  {}: writes {}, reads {{{}}}{marker}",
            program.rule_name(r),
            deps.write_str(r),
            read_parts.join(", "),
        );
    }
    for si in 0..compiled.stratification().len() {
        let comps = deps.stratum_components(si);
        let listing: Vec<String> = comps
            .iter()
            .map(|comp| {
                let names: Vec<String> = comp.iter().map(|&r| program.rule_name(r)).collect();
                format!("{{{}}}", names.join(", "))
            })
            .collect();
        println!("  stratum {si}: {} component(s): {}", comps.len(), listing.join(" "));
    }
}

/// `ruvo recover`: read-only checkpoint/WAL stats plus a dry-run
/// recovery (checkpoint + tail replayed in memory; the directory is
/// not modified).
fn recover_report(dir: &std::path::Path) -> Result<String, ruvo_core::Error> {
    use std::fmt::Write as _;

    let state = store::read_state(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "data dir: {}", dir.display());
    match &state.checkpoint {
        Some(ckpt) => {
            let _ = writeln!(
                out,
                "checkpoint: seq {} / epoch {} / {} facts / {} generation(s)",
                ckpt.seq,
                ckpt.epoch,
                ckpt.base.len(),
                ckpt.generations.len(),
            );
            for (i, g) in ckpt.generations.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  generation #{i}: {} / seq {} / epoch {} / {} bytes / {} dirty shard(s)",
                    g.kind, g.seq, g.epoch, g.bytes, g.dirty_shards
                );
            }
            if ckpt.torn_bytes > 0 {
                let _ = writeln!(
                    out,
                    "  chain tail: {} torn bytes (interrupted delta append; \
                     the wal covers it) will be dropped on open",
                    ckpt.torn_bytes
                );
            }
        }
        None => {
            let _ = writeln!(out, "checkpoint: none");
        }
    }
    let _ = writeln!(
        out,
        "wal: {} records, {} programs, {} payload bytes",
        state.stats.wal_records, state.stats.wal_programs, state.stats.wal_bytes
    );
    if state.stats.dropped_bytes > 0 {
        let _ = writeln!(
            out,
            "wal tail: {} torn/corrupt bytes will be dropped on open",
            state.stats.dropped_bytes
        );
    }
    if state.stats.skipped_records > 0 {
        let _ = writeln!(
            out,
            "wal: {} stale records already covered by the checkpoint",
            state.stats.skipped_records
        );
    }

    // Dry-run recovery: checkpoint + replay, all in memory, through
    // the same replay path real recovery uses.
    let ckpt_seq = state.checkpoint.as_ref().map_or(0, |c| c.seq);
    let mut db = Database::open(state.checkpoint.map(|c| c.base).unwrap_or_default());
    let replayed = db.replay_wal_records(&state.records)?;
    let _ = writeln!(
        out,
        "recovery: {} programs replayed, head has {} facts across {} transactions",
        replayed,
        db.current().len(),
        ckpt_seq + replayed
    );
    Ok(out)
}

/// `ruvo serve`: the concurrent serving demo. One writer thread
/// commits `program` `commits` times through a [`ServingDatabase`]
/// while `readers` threads continuously snapshot and scan; reports
/// aggregate throughput and the final head. With `ack_file`, one line
/// (`"<seq>"`) is appended and flushed per acknowledged commit — the
/// crash-recovery test kills this process mid-stream and checks that
/// every acknowledged seq survives recovery.
fn serve_demo(
    db: Database,
    program: Program,
    readers: usize,
    commits: usize,
    ack_file: Option<&str>,
) -> Result<String, ruvo_core::Error> {
    use ruvo_core::ServingDatabase;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let mut ack = match ack_file {
        Some(path) => Some(std::fs::File::create(path).map_err(|e| {
            ruvo_core::Error::from(store::StorageError::Io {
                op: "create",
                path: path.to_string(),
                kind: e.kind(),
                message: e.to_string(),
            })
        })?),
        None => None,
    };
    let db = db.into_serving();
    let prepared = Prepared::compile(program, CyclePolicy::Reject)?;
    let objects: Vec<ruvo_term::Const> = db.current().objects().collect();
    // Demand-driven point queries for a handful of objects: each reader
    // interleaves these with its raw snapshot scans. The plans are
    // built once (the magic-set rewrite is per-goal, not per-ask).
    let query_plans: Vec<ruvo_core::QueryPlan> = objects
        .iter()
        .take(8)
        .filter_map(|obj| ruvo_lang::Goal::parse(&format!("?- {obj}.sal -> S.")).ok())
        .map(|goal| prepared.query_plan(goal))
        .collect();
    let done = AtomicBool::new(false);
    let started = Instant::now();
    let (reads, queries, write_result) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let db: ServingDatabase = db.clone();
                let objects = &objects;
                let query_plans = &query_plans;
                let done = &done;
                s.spawn(move || {
                    let mut reads = 0u64;
                    let mut queries = 0u64;
                    let mut i = r;
                    while !done.load(Ordering::Relaxed) {
                        let snap = db.snapshot();
                        for _ in 0..16 {
                            if let Some(&obj) = objects.get(i % objects.len().max(1)) {
                                std::hint::black_box(snap.lookup1(obj, "sal"));
                            }
                            i += 1;
                            reads += 1;
                        }
                        if let Some(plan) = query_plans.get(i % query_plans.len().max(1)) {
                            std::hint::black_box(db.run_query_plan(plan).ok());
                            queries += 1;
                        }
                    }
                    (reads, queries)
                })
            })
            .collect();
        let writer = {
            let db = db.clone();
            let prepared = &prepared;
            let ack = &mut ack;
            s.spawn(move || {
                for i in 0..commits {
                    let applied = db.apply(prepared)?;
                    if let Some(f) = ack {
                        // The commit is durable (WAL appended +
                        // fsynced) by the time `apply` returns, so the
                        // ack only needs to reach the OS: a SIGKILL
                        // cannot take back completed writes.
                        let _ = writeln!(f, "{}", applied.seq);
                        let _ = f.flush();
                    }
                    // Durable serves checkpoint incrementally in the
                    // background: the writer path only pays the
                    // O(shards) plan, the encode runs on its own
                    // thread. A volatile database returns false and
                    // this is a no-op.
                    if (i + 1) % 16 == 0 && db.checkpoint_background()? {
                        for done in db.take_checkpoint_completions() {
                            eprintln!("background {done}");
                        }
                    }
                }
                if db.checkpoint_flush()?.is_some() {
                    for done in db.take_checkpoint_completions() {
                        eprintln!("background {done}");
                    }
                }
                Ok::<(), ruvo_core::Error>(())
            })
        };
        let write_result = writer.join().expect("writer thread");
        done.store(true, Ordering::Relaxed);
        let (reads, queries) = handles.into_iter().fold((0u64, 0u64), |(r, q), h| {
            let (reads, queries) = h.join().expect("reader thread");
            (r + reads, q + queries)
        });
        (reads, queries, write_result)
    });
    write_result?;
    let elapsed = started.elapsed().as_secs_f64();
    Ok(format!(
        "served {reads} snapshot reads and {queries} demand queries across {readers} readers \
         while committing {commits} transactions in {elapsed:.2}s\n\
         ({:.0} reads/s, {:.0} commits/s, head epoch {})\n\
         final head: {} facts\n",
        reads as f64 / elapsed,
        commits as f64 / elapsed,
        db.epoch(),
        db.current().len(),
    ))
}
