//! End-to-end tests of the `ruvo` binary.

use std::io::Write;
use std::process::Command;

fn write_file(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn ruvo(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ruvo")).args(args).output().expect("binary runs")
}

const ENTERPRISE: &str = "
rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.
";

const BASE: &str = "
phil.isa -> empl.  phil.pos -> mgr.    phil.sal -> 4000.
bob.isa -> empl.   bob.boss -> phil.   bob.sal -> 4200.
";

#[test]
fn check_reports_strata() {
    let dir = std::env::temp_dir().join("ruvo-cli-check");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let out = ruvo(&["check", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("4 rules, 3 strata"), "got: {stdout}");
    assert!(stdout.contains("{rule1, rule2} < {rule3} < {rule4}"), "got: {stdout}");
}

#[test]
fn check_flags_write_write_conflict_with_span() {
    let dir = std::env::temp_dir().join("ruvo-cli-check-ww");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "ww.ruvo",
        "r1: mod[X].price -> (P, 1) <= X.price -> P.\n\
         r2: mod[X].price -> (P, 2) <= X.price -> P.\n",
    );
    // Warning severity: the check still succeeds, but reports the pair.
    let out = ruvo(&["check", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning[write-write-conflict]"), "got: {stderr}");
    assert!(stderr.contains("ww.ruvo:2:1"), "diagnostic must be spanned, got: {stderr}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 conflicting"), "got: {stdout}");
}

#[test]
fn check_json_is_machine_readable() {
    let dir = std::env::temp_dir().join("ruvo-cli-check-json");
    std::fs::create_dir_all(&dir).unwrap();
    let clean = write_file(&dir, "p.ruvo", ENTERPRISE);
    let out = ruvo(&["check", "--json", clean.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"rules\":4,\"strata\":3,\"all_commute\":true"), "got: {stdout}");
    assert!(stdout.contains("\"diagnostics\":[]"), "got: {stdout}");

    let bad = write_file(&dir, "bad.ruvo", "ins[x].exists -> x.");
    let out = ruvo(&["check", "--json", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"lint\":\"exists-update\""), "got: {stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "got: {stdout}");
}

#[test]
fn check_deny_fails_on_warnings() {
    let dir = std::env::temp_dir().join("ruvo-cli-check-deny");
    std::fs::create_dir_all(&dir).unwrap();
    let warny = write_file(
        &dir,
        "ww.ruvo",
        "r1: mod[X].price -> (P, 1) <= X.price -> P.\n\
         r2: mod[X].price -> (P, 2) <= X.price -> P.\n",
    );
    // Plain check: warnings do not fail the run.
    assert!(ruvo(&["check", warny.to_str().unwrap()]).status.success());
    // --deny: the same warnings become fatal (CI parity with
    // DatabaseBuilder::deny_lints).
    let out = ruvo(&["check", "--deny", warny.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning[write-write-conflict]"), "got: {stderr}");

    // A clean program still passes under --deny; advisories (allow
    // level) must not trip it.
    let clean = write_file(&dir, "p.ruvo", ENTERPRISE);
    assert!(ruvo(&["check", "--deny", clean.to_str().unwrap()]).status.success());
    assert!(ruvo(&["check", "--deny", "--deps", clean.to_str().unwrap()]).status.success());
}

#[test]
fn check_deps_reports_graph_and_components() {
    let dir = std::env::temp_dir().join("ruvo-cli-check-deps");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "indep.ruvo",
        "a: ins[X].p -> 1 <= X.s -> 1.\n\
         b: ins[X].q -> 2 <= X.t -> 2.\n",
    );
    let out = ruvo(&["check", "--deps", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("dependency graph: 2 rule(s)"), "got: {stdout}");
    assert!(stdout.contains("stratum 0: 2 component(s): {a} {b}"), "got: {stdout}");
    // The parallel-opportunity advisory is rendered with --deps.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("parallel-opportunity"), "got: {stderr}");

    // JSON mode embeds the graph and the advisories.
    let out = ruvo(&["check", "--deps", "--json", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"deps\":{"), "got: {stdout}");
    assert!(stdout.contains("\"advisories\":["), "got: {stdout}");
    assert!(stdout.contains("parallel-opportunity"), "got: {stdout}");
}

#[test]
fn check_dot_emits_graphviz() {
    let dir = std::env::temp_dir().join("ruvo-cli-check-dot");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let out = ruvo(&["check", "--deps", "--dot", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("graph ruvo_deps {"), "got: {stdout}");
    assert!(stdout.trim_end().ends_with('}'), "got: {stdout}");
    assert!(stdout.contains("subgraph cluster_s0"), "got: {stdout}");
    // DOT goes to stdout alone so it can be piped into `dot`; the
    // human-readable summary must not pollute it.
    assert!(!stdout.contains("stratification:"), "got: {stdout}");

    // A non-compiling program yields no graph and a failing exit.
    let bad = write_file(&dir, "bad.ruvo", "ins[x].exists -> x.");
    let out = ruvo(&["check", "--dot", bad.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn run_produces_new_object_base() {
    let dir = std::env::temp_dir().join("ruvo-cli-run");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let base = write_file(&dir, "b.ob", BASE);
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap(), "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("phil.sal -> 4600"), "got: {stdout}");
    assert!(stdout.contains("phil.isa -> hpe"), "got: {stdout}");
    assert!(!stdout.contains("bob."), "bob must be gone, got: {stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fired updates"), "got: {stderr}");
}

#[test]
fn run_parallel_with_thread_cap_matches_serial() {
    let dir = std::env::temp_dir().join("ruvo-cli-run-threads");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let base = write_file(&dir, "b.ob", BASE);
    let serial = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(serial.status.success());
    for threads in ["1", "2", "4"] {
        let par = ruvo(&[
            "run",
            prog.to_str().unwrap(),
            base.to_str().unwrap(),
            "--parallel",
            "--threads",
            threads,
        ]);
        assert!(par.status.success());
        assert_eq!(par.stdout, serial.stdout, "--threads {threads} diverged from serial");
    }
    // The flag needs a numeric value.
    let bad = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap(), "--threads"]);
    assert!(!bad.status.success());
}

#[test]
fn run_result_shows_versions() {
    let dir = std::env::temp_dir().join("ruvo-cli-result");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let base = write_file(&dir, "b.ob", BASE);
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap(), "--result"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mod(phil).sal -> 4600"), "got: {stdout}");
    assert!(stdout.contains("del(mod(bob)).exists -> bob"), "got: {stdout}");
}

#[test]
fn explain_lists_conditions() {
    let dir = std::env::temp_dir().join("ruvo-cli-explain");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let out = ruvo(&["explain", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for cond in ["(a)", "(b)", "(c)", "(d)"] {
        assert!(stdout.contains(cond), "missing condition {cond}: {stdout}");
    }
}

#[test]
fn fmt_roundtrips() {
    let dir = std::env::temp_dir().join("ruvo-cli-fmt");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", ENTERPRISE);
    let out = ruvo(&["fmt", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let pretty = String::from_utf8(out.stdout).unwrap();
    let prog2 = write_file(&dir, "p2.ruvo", &pretty);
    let out2 = ruvo(&["fmt", prog2.to_str().unwrap()]);
    assert_eq!(pretty, String::from_utf8(out2.stdout).unwrap());
}

#[test]
fn parse_errors_are_reported() {
    let dir = std::env::temp_dir().join("ruvo-cli-err");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "bad.ruvo", "ins[X].p -> ??? .");
    let out = ruvo(&["check", prog.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[syntax]"), "got: {stderr}");
    assert!(stderr.contains("bad.ruvo:1:13"), "diagnostic must carry a span, got: {stderr}");
}

#[test]
fn non_stratifiable_is_rejected() {
    let dir = std::env::temp_dir().join("ruvo-cli-strat");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", "r: ins[X].p -> 1 <= X.q -> 1 & not ins(X).p -> 1.");
    let out = ruvo(&["check", prog.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not stratifiable"), "got: {stderr}");
}

#[test]
fn linearity_violation_is_reported() {
    let dir = std::env::temp_dir().join("ruvo-cli-lin");
    std::fs::create_dir_all(&dir).unwrap();
    let prog =
        write_file(&dir, "p.ruvo", "mod[o].m -> (a, b) <= o.m -> a. del[o].m -> a <= o.m -> a.");
    let base = write_file(&dir, "b.ob", "o.m -> a.");
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("version-linearity"), "got: {stderr}");

    // With the §5 check disabled, --result must still let the user
    // inspect the raw (non-linear) result(P).
    let out = ruvo(&[
        "run",
        prog.to_str().unwrap(),
        base.to_str().unwrap(),
        "--no-linearity",
        "--result",
    ]);
    assert!(out.status.success(), "got: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mod(o).m -> b"), "got: {stdout}");
    assert!(stdout.contains("del(o).exists -> o"), "got: {stdout}");
}

#[test]
fn usage_on_bad_invocation() {
    assert!(!ruvo(&[]).status.success());
    assert!(!ruvo(&["frobnicate"]).status.success());
    assert!(!ruvo(&["run", "only-one-arg"]).status.success());
    let out = ruvo(&["run", "a", "b", "--bogus"]);
    assert!(!out.status.success());
}

// ----- repl ----------------------------------------------------------

fn ruvo_stdin(args: &[&str], stdin_text: &str) -> std::process::Output {
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_ruvo"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child.stdin.as_mut().unwrap().write_all(stdin_text.as_bytes()).unwrap();
    child.wait_with_output().expect("binary runs")
}

#[test]
fn repl_applies_rules_transactionally() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl");
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "b.ob", "acct.balance -> 100.");
    let script = "\
:savepoint
mod[acct].balance -> (100, 150) <= acct.balance -> 100.
:show acct
:rollback 0
:show acct
:stats
:quit
";
    let out = ruvo_stdin(&["repl", base.to_str().unwrap()], script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ok: txn #0"), "got: {stdout}");
    assert!(stdout.contains("acct.balance -> 150"), "got: {stdout}");
    // After rollback the original balance is back.
    let after_rollback = stdout.split("rolled back").nth(1).expect("rollback happened");
    assert!(after_rollback.contains("acct.balance -> 100"), "got: {stdout}");
}

#[test]
fn repl_answers_query_goals() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-query");
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "b.ob", "henry.isa -> empl. henry.sal -> 250. rex.isa -> dog.");
    let script = "\
?- henry.sal -> S.
?- X.isa -> empl & X.sal -> S.
?- rex.isa -> empl.
?- not a goal.
:log
:quit
";
    let out = ruvo_stdin(&["repl", base.to_str().unwrap()], script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("S = 250"), "got: {stdout}");
    assert!(stdout.contains("X = henry, S = 250"), "got: {stdout}");
    assert!(stdout.contains("\nno\n"), "got: {stdout}");
    assert!(stdout.contains("! parse error"), "got: {stdout}");
    // Queries never commit.
    assert!(stdout.contains("(no transactions)"), "got: {stdout}");
}

#[test]
fn repl_reports_errors_without_dying() {
    let script = "\
not a rule at all .
:bogus
ins[x].p -> 1.
:log
:quit
";
    let out = ruvo_stdin(&["repl"], script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("! parse error"), "got: {stdout}");
    assert!(stdout.contains("! unknown command"), "got: {stdout}");
    assert!(stdout.contains("ok: txn #0"), "got: {stdout}");
}

#[test]
fn repl_set_threads_switches_evaluation_strategy() {
    let script = "\
:set threads 2
ins[x].p -> 1.
:set threads 0
ins[y].p -> 2.
:set threads
:quit
";
    let out = ruvo_stdin(&["repl"], script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("parallel evaluation, 2 workers"), "got: {stdout}");
    assert!(stdout.contains("serial evaluation"), "got: {stdout}");
    assert!(stdout.contains("! :set threads <n>"), "got: {stdout}");
    assert!(stdout.contains("ok: txn #0"), "got: {stdout}");
    assert!(stdout.contains("ok: txn #1"), "got: {stdout}");
}

#[test]
fn repl_check_command() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-check");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "ww.ruvo",
        "r1: mod[X].price -> (P, 1) <= X.price -> P.\n\
         r2: mod[X].price -> (P, 2) <= X.price -> P.\n",
    );
    let script = format!(":check {}\n:quit\n", prog.display());
    let out = ruvo_stdin(&["repl"], &script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 rules, 1 strata"), "got: {stdout}");
    assert!(stdout.contains("warning[write-write-conflict]"), "got: {stdout}");
}

#[test]
fn repl_deps_command() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-deps");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "indep.ruvo",
        "a: ins[X].p -> 1 <= X.s -> 1.\n\
         b: ins[X].q -> 2 <= X.t -> 2.\n",
    );
    let script = format!(":deps {}\n:deps /no/such/file\n:quit\n", prog.display());
    let out = ruvo_stdin(&["repl"], &script);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 rule(s), 0 dependency edge(s)"), "got: {stdout}");
    assert!(stdout.contains("stratum 0: 2 component(s): {a} {b}"), "got: {stdout}");
    assert!(stdout.contains("parallel-opportunity"), "got: {stdout}");
    assert!(stdout.contains("! cannot read /no/such/file"), "got: {stdout}");
}

#[test]
fn repl_history_command() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-hist");
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "b.ob", "o.p -> 1.");
    let script = "\
mod[o].p -> (1, 2) <= o.p -> 1.
:history o
:quit
";
    let out = ruvo_stdin(&["repl", base.to_str().unwrap()], script);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("mod(o) [mod]"), "got: {stdout}");
    assert!(stdout.contains("+ p -> 2"), "got: {stdout}");
    assert!(stdout.contains("- p -> 1"), "got: {stdout}");
}

#[test]
fn convert_roundtrips_through_snapshot() {
    let dir = std::env::temp_dir().join("ruvo-cli-convert");
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "b.ob", "a.p -> 1. b.q @ x -> 2.5.");
    let snap = dir.join("b.snap");
    let back = dir.join("b2.ob");
    assert!(ruvo(&["convert", base.to_str().unwrap(), snap.to_str().unwrap()]).status.success());
    // Snapshot starts with the magic.
    let raw = std::fs::read(&snap).unwrap();
    assert_eq!(&raw[..4], b"RUVO");
    assert!(ruvo(&["convert", snap.to_str().unwrap(), back.to_str().unwrap()]).status.success());
    let text = std::fs::read_to_string(&back).unwrap();
    assert!(text.contains("a.p -> 1"), "got: {text}");
    assert!(text.contains("b.q @ x -> 2.5"), "got: {text}");
}

#[test]
fn repl_loads_and_saves_snapshots() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-snap");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("state.snap");
    let script = format!("ins[a].p -> 7.\n:save {}\n:quit\n", snap.display());
    let out = ruvo_stdin(&["repl"], &script);
    assert!(String::from_utf8(out.stdout).unwrap().contains("saved"), "save failed");
    // Reload it in a second repl.
    let script2 = format!(":load {}\n:show a\n:quit\n", snap.display());
    let out2 = ruvo_stdin(&["repl"], &script2);
    let stdout = String::from_utf8(out2.stdout).unwrap();
    assert!(stdout.contains("a.p -> 7"), "got: {stdout}");
}

#[test]
fn repl_save_reports_format_and_honors_flags() {
    let dir = std::env::temp_dir().join("ruvo-cli-repl-save-fmt");
    std::fs::create_dir_all(&dir).unwrap();
    let sniffed_snap = dir.join("state.snap");
    let sniffed_text = dir.join("state.ob");
    let forced_bin = dir.join("forced.ob");
    let forced_text = dir.join("forced.snap");
    let script = format!(
        "ins[a].p -> 7.\n:save {}\n:save {}\n:save --bin {}\n:save --text {}\n:save --bin\n:quit\n",
        sniffed_snap.display(),
        sniffed_text.display(),
        forced_bin.display(),
        forced_text.display(),
    );
    let out = ruvo_stdin(&["repl"], &script);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The repl says which format it wrote, so silent text-vs-binary
    // surprises are impossible.
    assert!(
        stdout.contains(&format!("saved {} (binary snapshot)", sniffed_snap.display())),
        "got: {stdout}"
    );
    assert!(stdout.contains(&format!("saved {} (text)", sniffed_text.display())), "got: {stdout}");
    // Explicit flags override the extension sniffing both ways.
    assert!(
        stdout.contains(&format!("saved {} (binary snapshot)", forced_bin.display())),
        "got: {stdout}"
    );
    assert!(stdout.contains(&format!("saved {} (text)", forced_text.display())), "got: {stdout}");
    // A flag without a path is a usage error, not a file named --bin.
    assert!(stdout.contains(":save [--bin|--text] <file>"), "got: {stdout}");

    // The bytes on disk match what was reported.
    assert!(std::fs::read(&forced_bin).unwrap().starts_with(b"RUVO"));
    assert!(std::fs::read_to_string(&forced_text).unwrap().contains("a.p -> 7"));
    assert!(std::fs::read(&sniffed_snap).unwrap().starts_with(b"RUVO"));
}

#[test]
fn recover_reports_checkpoint_and_wal_stats() {
    let dir = std::env::temp_dir().join("ruvo-cli-recover");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "b.ob", "acct.balance -> 0.");
    let prog =
        write_file(&dir, "bump.ruvo", "mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.");
    let data = dir.join("data");
    let out = ruvo(&[
        "serve",
        base.to_str().unwrap(),
        prog.to_str().unwrap(),
        "--readers",
        "1",
        "--commits",
        "3",
        "--data-dir",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = ruvo(&["recover", data.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("checkpoint:"), "got: {stdout}");
    assert!(stdout.contains("3 records, 3 programs"), "got: {stdout}");
    assert!(stdout.contains("3 programs replayed"), "got: {stdout}");

    // A second serve run over the same directory recovers it (the
    // seed is ignored) and extends the history.
    let out = ruvo(&[
        "serve",
        base.to_str().unwrap(),
        prog.to_str().unwrap(),
        "--readers",
        "1",
        "--commits",
        "2",
        "--data-dir",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = ruvo(&["recover", data.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("5 programs replayed"), "got: {stdout}");
}

#[test]
fn dynamic_flag_accepts_cyclic_stable_program() {
    let dir = std::env::temp_dir().join("ruvo-cli-dynamic");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "cyclic.ruvo",
        "r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
         r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 9.",
    );
    let base = write_file(&dir, "b.ob", "a.m -> 1. a.trigger -> 1.");
    // Without --dynamic: statically rejected.
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not stratifiable"), "got: {stderr}");
    // With --dynamic: runs stably and prints the updated base.
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap(), "--dynamic"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("a.go -> 1"), "got: {stdout}");
    assert!(!stdout.contains("a.m -> 1"), "m must be deleted; got: {stdout}");
}

#[test]
fn dynamic_flag_reports_instability() {
    let dir = std::env::temp_dir().join("ruvo-cli-unstable");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "unstable.ruvo",
        "r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
         r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 1.",
    );
    let base = write_file(&dir, "b.ob", "a.m -> 1. a.trigger -> 1.");
    let out = ruvo(&["run", prog.to_str().unwrap(), base.to_str().unwrap(), "--dynamic"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unstable"), "got: {stderr}");
}

#[test]
fn serve_runs_concurrent_demo() {
    let dir = std::env::temp_dir().join("ruvo-cli-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(
        &dir,
        "raise.ruvo",
        "w: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S + 1.",
    );
    let base = write_file(&dir, "b.ob", "henry.isa -> empl. henry.sal -> 250.");
    let out = ruvo(&[
        "serve",
        base.to_str().unwrap(),
        prog.to_str().unwrap(),
        "--readers",
        "2",
        "--commits",
        "10",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("committing 10 transactions"), "got: {stdout}");
    assert!(stdout.contains("head epoch"), "got: {stdout}");
}

#[test]
fn serve_rejects_bad_flags() {
    let dir = std::env::temp_dir().join("ruvo-cli-serve-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = write_file(&dir, "p.ruvo", "w: ins[a].x -> 1 <= a.m -> 1.");
    let base = write_file(&dir, "b.ob", "a.m -> 1.");
    let out = ruvo(&["serve", base.to_str().unwrap(), prog.to_str().unwrap(), "--readers", "zero"]);
    assert!(!out.status.success());
}
