//! The acceptance tests for the durable storage engine: a serving
//! `ruvo` process with a data directory is SIGKILLed mid-workload,
//! then the directory is reopened and the recovered head compared
//! against the acknowledgements the dead process managed to write.
//!
//! Contract under test:
//! * **acknowledged commits are never lost** — every seq the process
//!   acked before dying is in the recovered state;
//! * **unacknowledged tails are dropped cleanly** — reopening never
//!   errors on the torn end of the log, with or without extra
//!   garbage appended;
//! * **multi-generation checkpoint chains survive the same matrix** —
//!   the killed process writes background delta checkpoints, so the
//!   directory recovery faces a full+delta chain, not a monolithic
//!   snapshot: torn chain tails, a crashed compaction's leftover tmp
//!   file, and corrupt interior generations (which must fail closed
//!   naming the generation, never silently drop durable data).
//!
//! The kill lands at an arbitrary point in the commit/checkpoint
//! pipeline, so across runs this also exercises the window between a
//! delta install and the WAL truncation that follows it (recovery's
//! stale-record filter covers it; the deterministic in-process
//! version lives in `ruvo_core::store`'s unit tests).

use ruvo_core::store::{read_state, GenerationKind};
use ruvo_core::Database;
use ruvo_term::{int, oid, Const};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn write_file(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// Spawn `ruvo serve` against a fresh data directory under `dir`,
/// wait until it acknowledged at least `min_acks` commits, SIGKILL it
/// mid-stream, and return the data directory plus the complete ack
/// lines the dead process managed to write.
fn run_killed_workload(dir: &Path, base_src: &str, min_acks: usize) -> (PathBuf, Vec<i64>) {
    let base = write_file(dir, "base.ob", base_src);
    let prog =
        write_file(dir, "bump.ruvo", "mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.\n");
    let data_dir = dir.join("data");
    let ack_file = dir.join("acks.txt");

    // Far more commits than the process will live to make: the kill
    // lands mid-stream, not after a clean finish.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ruvo"))
        .args([
            "serve",
            base.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--readers",
            "1",
            "--commits",
            "1000000",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--ack-file",
            ack_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");

    // Wait until a healthy number of commits were acknowledged.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let acked = std::fs::read_to_string(&ack_file).map(|s| s.lines().count()).unwrap_or(0);
        if acked >= min_acks {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before the kill");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "workload finished before the kill — raise --commits"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL"); // no shutdown hook runs
    child.wait().expect("reaped");

    // Count only complete ack lines (the kill may tear the last one).
    let acks = std::fs::read_to_string(&ack_file).unwrap();
    let acked: Vec<i64> = acks
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| l.parse::<i64>().expect("ack line is a seq"))
        .collect();
    assert!(acked.len() >= min_acks);
    (data_dir, acked)
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruvo-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Recovered commit count = the counter's balance (one bump per
/// commit, starting at 0).
fn recovered_commits(data_dir: &Path) -> i64 {
    let db = Database::open_dir(data_dir).expect("recovery must succeed");
    let bal = db.current().lookup1(oid("acct"), "balance");
    assert_eq!(bal.len(), 1, "torn counter state: {bal:?}");
    match bal[0] {
        Const::Int(v) => v,
        other => panic!("non-integer balance {other}"),
    }
}

#[test]
fn sigkill_mid_workload_loses_no_acknowledged_commit() {
    let dir = test_dir("ack");
    let (data_dir, acked) = run_killed_workload(&dir, "acct.balance -> 0.\n", 20);
    let last_acked = *acked.last().expect("at least one ack");

    let recovered = recovered_commits(&data_dir);
    // Every acknowledged commit survived...
    assert!(
        recovered > last_acked,
        "lost acknowledged commits: acked through seq {last_acked}, recovered {recovered}"
    );
    // ...and the recovered head is the last acknowledged commit, give
    // or take the single batch that was in flight (durable but not
    // yet acked) when the kill landed.
    assert!(
        recovered <= last_acked + 3,
        "recovered {recovered} commits but only seq {last_acked} was acked — \
         recovery replayed something that was never committed"
    );

    // A torn/garbage tail on top of the kill still recovers cleanly
    // to the same state.
    let wal = data_dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xC3; 17]);
    std::fs::write(&wal, &bytes).unwrap();
    assert_eq!(recovered_commits(&data_dir), recovered);

    // And the recovered database accepts new durable commits.
    let mut db = Database::open_dir(&data_dir).unwrap();
    db.apply_src("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
    drop(db);
    let db = Database::open_dir(&data_dir).unwrap();
    assert_eq!(db.current().lookup1(oid("acct"), "balance"), vec![int(recovered + 1)]);
}

#[test]
fn multi_generation_chain_survives_the_crash_matrix() {
    // A broad base keeps each delta far below the compaction
    // threshold, so the chain genuinely stacks generations instead of
    // folding back into a full snapshot after every commit.
    let mut base_src = String::from("acct.balance -> 0.\n");
    for i in 0..200 {
        base_src.push_str(&format!("o{i}.val -> {i}.\n"));
    }
    let dir = test_dir("chain");
    let (data_dir, _) = run_killed_workload(&dir, &base_src, 40);
    let recovered = recovered_commits(&data_dir);

    // Deterministically extend whatever chain the kill left behind:
    // the first explicit checkpoint is full or delta depending on
    // where the kill landed, the following two are guaranteed deltas.
    let mut db = Database::open_dir(&data_dir).unwrap();
    for _ in 0..3 {
        db.apply_src("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
        db.checkpoint().unwrap();
    }
    drop(db);
    let balance = recovered + 3;

    let state = read_state(&data_dir).unwrap();
    let gens = &state.checkpoint.as_ref().expect("chain exists").generations;
    assert!(gens.len() >= 3, "expected a stacked chain, got {} generation(s)", gens.len());
    assert_eq!(gens[0].kind, GenerationKind::Full, "generation 0 must be full");
    let last = gens.last().unwrap();
    assert_eq!(last.kind, GenerationKind::Delta);
    assert!(last.dirty_shards >= 1, "a counter bump must dirty at least one shard");
    assert_eq!(recovered_commits(&data_dir), balance);

    // Torn delta tail: garbage appended to the chain (a delta append
    // cut off by a crash) is dropped; everything durable survives.
    let ckpt = data_dir.join("checkpoint.ruvock");
    let clean_chain = std::fs::read(&ckpt).unwrap();
    let mut torn = clean_chain.clone();
    torn.extend_from_slice(&[0xC3; 23]);
    std::fs::write(&ckpt, &torn).unwrap();
    assert_eq!(recovered_commits(&data_dir), balance);

    // Crash mid-compaction: a leftover checkpoint.ruvock.tmp must be
    // ignored by recovery and clobbered by the next full rewrite.
    let tmp = data_dir.join("checkpoint.ruvock.tmp");
    std::fs::write(&tmp, b"half-written full generation").unwrap();
    assert_eq!(recovered_commits(&data_dir), balance);
    let mut db = Database::open_dir(&data_dir).unwrap();
    db.compact().unwrap();
    drop(db);
    assert!(!tmp.exists(), "compaction must consume the tmp file");
    let state = read_state(&data_dir).unwrap();
    let gens = &state.checkpoint.as_ref().expect("chain exists").generations;
    assert_eq!(gens.len(), 1, "compaction folds the chain to one generation");
    assert_eq!(gens[0].kind, GenerationKind::Full);
    assert_eq!(recovered_commits(&data_dir), balance);

    // Corrupt interior generation: stack one more delta, then flip a
    // byte inside generation 0's frame. That generation was durable —
    // recovery must fail closed naming it, not resurrect a prefix.
    let mut db = Database::open_dir(&data_dir).unwrap();
    db.apply_src("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
    db.checkpoint().unwrap();
    drop(db);
    let state = read_state(&data_dir).unwrap();
    assert!(state.checkpoint.as_ref().unwrap().generations.len() >= 2);
    let mut bytes = std::fs::read(&ckpt).unwrap();
    bytes[24] ^= 0xFF; // inside generation 0's frame, past the header
    std::fs::write(&ckpt, &bytes).unwrap();
    let err = Database::open_dir(&data_dir).expect_err("corrupt interior must fail closed");
    let msg = err.to_string();
    assert!(msg.contains("generation #0"), "error must name the generation: {msg}");
}
