//! The acceptance test for the durable storage engine: a serving
//! `ruvo` process with a data directory is SIGKILLed mid-workload,
//! then the directory is reopened and the recovered head compared
//! against the acknowledgements the dead process managed to write.
//!
//! Contract under test:
//! * **acknowledged commits are never lost** — every seq the process
//!   acked before dying is in the recovered state;
//! * **unacknowledged tails are dropped cleanly** — reopening never
//!   errors on the torn end of the log, with or without extra
//!   garbage appended.

use ruvo_core::Database;
use ruvo_term::{int, oid, Const};
use std::io::Write;
use std::time::{Duration, Instant};

fn write_file(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// Recovered commit count = the counter's balance (one bump per
/// commit, starting at 0).
fn recovered_commits(data_dir: &std::path::Path) -> i64 {
    let db = Database::open_dir(data_dir).expect("recovery must succeed");
    let bal = db.current().lookup1(oid("acct"), "balance");
    assert_eq!(bal.len(), 1, "torn counter state: {bal:?}");
    match bal[0] {
        Const::Int(v) => v,
        other => panic!("non-integer balance {other}"),
    }
}

#[test]
fn sigkill_mid_workload_loses_no_acknowledged_commit() {
    let dir = std::env::temp_dir().join(format!("ruvo-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = write_file(&dir, "base.ob", "acct.balance -> 0.\n");
    let prog = write_file(
        &dir,
        "bump.ruvo",
        "mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.\n",
    );
    let data_dir = dir.join("data");
    let ack_file = dir.join("acks.txt");

    // Far more commits than the process will live to make: the kill
    // lands mid-stream, not after a clean finish.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ruvo"))
        .args([
            "serve",
            base.to_str().unwrap(),
            prog.to_str().unwrap(),
            "--readers",
            "1",
            "--commits",
            "1000000",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--ack-file",
            ack_file.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");

    // Wait until a healthy number of commits were acknowledged.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let acked = std::fs::read_to_string(&ack_file).map(|s| s.lines().count()).unwrap_or(0);
        if acked >= 20 {
            break;
        }
        assert!(Instant::now() < deadline, "no progress before the kill");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "workload finished before the kill — raise --commits"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL"); // no shutdown hook runs
    child.wait().expect("reaped");

    // Count only complete ack lines (the kill may tear the last one).
    let acks = std::fs::read_to_string(&ack_file).unwrap();
    let acked: Vec<i64> = acks
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| l.parse::<i64>().expect("ack line is a seq"))
        .collect();
    let last_acked = *acked.last().expect("at least one ack");
    assert!(acked.len() >= 20);

    let recovered = recovered_commits(&data_dir);
    // Every acknowledged commit survived...
    assert!(
        recovered > last_acked,
        "lost acknowledged commits: acked through seq {last_acked}, recovered {recovered}"
    );
    // ...and the recovered head is the last acknowledged commit, give
    // or take the single batch that was in flight (durable but not
    // yet acked) when the kill landed.
    assert!(
        recovered <= last_acked + 3,
        "recovered {recovered} commits but only seq {last_acked} was acked — \
         recovery replayed something that was never committed"
    );

    // A torn/garbage tail on top of the kill still recovers cleanly
    // to the same state.
    let wal = data_dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0xC3; 17]);
    std::fs::write(&wal, &bytes).unwrap();
    assert_eq!(recovered_commits(&data_dir), recovered);

    // And the recovered database accepts new durable commits.
    let mut db = Database::open_dir(&data_dir).unwrap();
    db.apply_src("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
    drop(db);
    let db = Database::open_dir(&data_dir).unwrap();
    assert_eq!(db.current().lookup1(oid("acct"), "balance"), vec![int(recovered + 1)]);
}
