//! # ruvo-obase — versioned object-base storage
//!
//! §2.1 of the paper: "A set of ground version-terms is called an
//! *object-base*." This crate stores such sets with the indexes the
//! evaluator needs:
//!
//! * per-version states (`Vid → {method → {(args, result)}}`) — "The
//!   state of a version w.r.t. a certain object-base is given by the set
//!   of all ground method-applications, which can be derived from its
//!   version-terms",
//! * a `(chain, method) → bases` index, so a rule literal like
//!   `mod(E).sal -> S` enumerates exactly the `mod(·)`-versions that
//!   define `sal`,
//! * a value-keyed method index (`(chain, method, result/first-arg) →
//!   bases`), so a literal with a bound key like `E.isa -> empl`
//!   enumerates only the matching versions
//!   ([`ObjectBase::versions_with_result`] /
//!   [`ObjectBase::versions_with_arg0`]),
//! * incremental delta sets ([`ChangedSince`]) recorded by
//!   [`ObjectBase::replace_version_tracked`] commits, feeding the
//!   engine's semi-naive evaluation,
//! * a `base → chains` index enumerating every version of an object
//!   (used for §5's final-version extraction),
//! * copy-on-write structural sharing throughout: every index is
//!   split into [`SHARD_COUNT`] `Arc`-wrapped shards and every
//!   per-version state is `Arc`-shared, so cloning an [`ObjectBase`]
//!   is O(shards) and mutation pays only for what it dirties (see
//!   [`mod@shard`] and [`ObjectBase::cow_stats`]),
//! * the `exists` system method bookkeeping and the `v*` operator of §3,
//! * the §5 *version-linearity* tracker ([`LinearityTracker`]).
//!
//! Methods are set-valued by construction (§2.1: "Whenever an
//! object-base contains several method-applications for a certain
//! object(-version) … we consider the method to be set-valued"), so
//! inserting a second result for the same method and arguments simply
//! grows the set; functional-dependency enforcement is deliberately out
//! of scope, as in the paper.

pub mod args;
pub mod base;
pub mod codec;
pub mod delta;
pub mod linearity;
pub mod shard;
pub mod snapshot;
pub mod state;
pub mod stats;

pub use args::Args;
pub use base::{base_shard, vid_shard, Fact, ObjectBase};
pub use bytes::Bytes;
pub use codec::DecodeError;
pub use delta::ChangedSince;
pub use linearity::{check_all_linear, LinearityTracker, LinearityViolation};
pub use shard::SHARD_COUNT;
pub use snapshot::{Snapshot, SnapshotError, SnapshotFileError};
pub use state::{MethodApp, VersionState};
pub use stats::{CowStats, ObStats};

/// The name of the paper's system method: `o.exists -> o`.
pub const EXISTS_METHOD: &str = "exists";

/// Assert an internal index invariant.
///
/// Like `debug_assert!`, but also armed when the enclosing crate is
/// compiled for its test harness (`cfg(test)`), so `cargo test
/// --release` still catches index-consistency bugs the optimizer
/// would otherwise let slide silently. In ordinary release builds the
/// whole expansion is a constant-false branch and the condition is
/// never evaluated.
#[macro_export]
macro_rules! invariant_assert {
    ($($arg:tt)*) => {
        if cfg!(debug_assertions) || cfg!(test) {
            assert!($($arg)*);
        }
    };
}

// The serving layer (ruvo-core's `ServingDatabase`) shares these
// types across threads behind `Arc`s; losing `Send + Sync` — say by
// introducing an `Rc` or `Cell` into a shard — would silently make
// the whole concurrent read path impossible, so the bound is pinned
// here at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ObjectBase>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<VersionState>();
    assert_send_sync::<Fact>();
    assert_send_sync::<ChangedSince>();
};

/// The interned `exists` symbol (cached — this is called in the
/// store's per-fact hot paths).
pub fn exists_sym() -> ruvo_term::Symbol {
    static CACHE: std::sync::OnceLock<ruvo_term::Symbol> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| ruvo_term::sym(EXISTS_METHOD))
}
