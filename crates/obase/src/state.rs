//! Per-version states.
//!
//! §2.1: "The state of a version w.r.t. a certain object-base is given
//! by the set of all ground method-applications, which can be derived
//! from its version-terms in the respective object-base."

use std::fmt;
use std::sync::Arc;

use ruvo_term::{Const, FastHashMap, FastHashSet, Symbol};

use crate::Args;

/// One ground method-application `m@a1,...,ak -> r` (without the
/// version, which is the map key in [`crate::ObjectBase`]).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodApp {
    /// Ground arguments.
    pub args: Args,
    /// Ground result.
    pub result: Const,
}

impl MethodApp {
    /// Construct from parts.
    pub fn new(args: impl Into<Args>, result: Const) -> MethodApp {
        MethodApp { args: args.into(), result }
    }
}

impl fmt::Debug for MethodApp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            write!(f, "-> {}", self.result)
        } else {
            write!(f, "@ {} -> {}", self.args, self.result)
        }
    }
}

/// The state of one version: its method-applications, grouped by method.
///
/// Each method's application set is `Arc`-shared: cloning a state — the
/// frame-copy step `T_P` performs per updated version, and what
/// `ensure_exists` pays per version of a raw base — allocates one map
/// and bumps one refcount per method instead of deep-copying every
/// set, and a mutation unshares only the one method it touches. This
/// is the innermost level of the store's copy-on-write stack (index
/// shards → version states → method sets); it also lets
/// [`VersionState::changed_methods`] skip still-shared sets by pointer
/// identity.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VersionState {
    methods: FastHashMap<Symbol, Arc<FastHashSet<MethodApp>>>,
    fact_count: usize,
}

impl VersionState {
    /// An empty state.
    pub fn new() -> VersionState {
        VersionState::default()
    }

    /// Add a method-application. Returns true if it was new.
    pub fn insert(&mut self, method: Symbol, app: MethodApp) -> bool {
        // Peek before copying: a duplicate insert must not unshare the
        // method's set.
        if self.methods.get(&method).is_some_and(|s| s.contains(&app)) {
            return false;
        }
        Arc::make_mut(self.methods.entry(method).or_default()).insert(app);
        self.fact_count += 1;
        true
    }

    /// Remove a method-application. Returns true if it was present.
    pub fn remove(&mut self, method: Symbol, app: &MethodApp) -> bool {
        // Peek before copying: a miss must not unshare the set.
        let Some(set) = self.methods.get_mut(&method) else { return false };
        if !set.contains(app) {
            return false;
        }
        let remaining = {
            let set = Arc::make_mut(set);
            set.remove(app);
            set.len()
        };
        self.fact_count -= 1;
        if remaining == 0 {
            self.methods.remove(&method);
        }
        true
    }

    /// Remove every application of `method`; returns how many were removed.
    pub fn remove_method(&mut self, method: Symbol) -> usize {
        match self.methods.remove(&method) {
            Some(set) => {
                self.fact_count -= set.len();
                set.len()
            }
            None => 0,
        }
    }

    /// Membership test.
    pub fn contains(&self, method: Symbol, app: &MethodApp) -> bool {
        self.methods.get(&method).is_some_and(|s| s.contains(app))
    }

    /// True if the state defines `method` at all.
    pub fn has_method(&self, method: Symbol) -> bool {
        self.methods.contains_key(&method)
    }

    /// All applications of one method.
    pub fn apps(&self, method: Symbol) -> impl Iterator<Item = &MethodApp> {
        self.methods.get(&method).into_iter().flat_map(|s| s.iter())
    }

    /// Results of `method` applied to exactly `args`.
    pub fn results<'a>(
        &'a self,
        method: Symbol,
        args: &'a [Const],
    ) -> impl Iterator<Item = Const> + 'a {
        self.apps(method).filter(move |a| a.args.as_slice() == args).map(|a| a.result)
    }

    /// The methods this state defines.
    pub fn methods(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.methods.keys().copied()
    }

    /// All `(method, application)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &MethodApp)> {
        self.methods.iter().flat_map(|(m, set)| set.iter().map(move |a| (*m, a)))
    }

    /// Number of method-applications in the state.
    pub fn len(&self) -> usize {
        self.fact_count
    }

    /// True if the state has no method-applications at all.
    pub fn is_empty(&self) -> bool {
        self.fact_count == 0
    }

    /// §5: "it may be the case that for an object all method-applications
    /// are deleted in its final version, i.e. the only method defined for
    /// this version is the method `exists`."
    pub fn is_empty_except(&self, method: Symbol) -> bool {
        self.methods.keys().all(|&m| m == method)
    }

    /// The methods whose application sets differ between `self` and
    /// `other` (symmetric difference over methods, set equality within
    /// one method) — the per-commit delta the semi-naive evaluator
    /// seeds from. Sets the two states still share by pointer (a
    /// copy-on-write clone whose method was never written) compare in
    /// O(1).
    pub fn changed_methods(&self, other: &VersionState) -> Vec<Symbol> {
        let mut out = Vec::new();
        for (&m, set) in &self.methods {
            match other.methods.get(&m) {
                Some(o) if Arc::ptr_eq(o, set) || o == set => {}
                _ => out.push(m),
            }
        }
        for &m in other.methods.keys() {
            if !self.methods.contains_key(&m) {
                out.push(m);
            }
        }
        out
    }
}

impl fmt::Debug for VersionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<String> = self.iter().map(|(m, a)| format!("{m} {a:?}")).collect();
        entries.sort();
        write!(f, "{{{}}}", entries.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid, sym};

    fn app(result: Const) -> MethodApp {
        MethodApp::new(Args::empty(), result)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = VersionState::new();
        assert!(s.insert(sym("sal"), app(int(250))));
        assert!(!s.insert(sym("sal"), app(int(250))), "duplicate insert");
        assert_eq!(s.len(), 1);
        assert!(s.contains(sym("sal"), &app(int(250))));
        assert!(s.remove(sym("sal"), &app(int(250))));
        assert!(!s.remove(sym("sal"), &app(int(250))));
        assert!(s.is_empty());
        assert!(!s.has_method(sym("sal")));
    }

    #[test]
    fn set_valued_methods() {
        // §2.3's `parents` example: several results for one method.
        let mut s = VersionState::new();
        s.insert(sym("parents"), app(oid("ann")));
        s.insert(sym("parents"), app(oid("tom")));
        assert_eq!(s.len(), 2);
        let mut results: Vec<Const> = s.results(sym("parents"), &[]).collect();
        results.sort();
        assert_eq!(results, vec![oid("ann"), oid("tom")]);
    }

    #[test]
    fn results_filter_by_args() {
        let mut s = VersionState::new();
        s.insert(sym("dist"), MethodApp::new(vec![oid("a")], int(1)));
        s.insert(sym("dist"), MethodApp::new(vec![oid("b")], int(2)));
        let r: Vec<Const> = s.results(sym("dist"), &[oid("a")]).collect();
        assert_eq!(r, vec![int(1)]);
    }

    #[test]
    fn remove_method_bulk() {
        let mut s = VersionState::new();
        s.insert(sym("p"), app(int(1)));
        s.insert(sym("p"), app(int(2)));
        s.insert(sym("q"), app(int(3)));
        assert_eq!(s.remove_method(sym("p")), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove_method(sym("p")), 0);
    }

    #[test]
    fn changed_methods_is_a_symmetric_method_diff() {
        let mut a = VersionState::new();
        a.insert(sym("sal"), app(int(250)));
        a.insert(sym("isa"), app(oid("empl")));
        let mut b = a.clone();
        assert!(a.changed_methods(&b).is_empty(), "identical states have no diff");
        b.insert(sym("sal"), app(int(275)));
        b.insert(sym("pos"), app(oid("mgr")));
        b.remove(sym("isa"), &app(oid("empl")));
        let mut diff = a.changed_methods(&b);
        diff.sort_by_key(|m| m.as_str().to_owned());
        assert_eq!(diff, vec![sym("isa"), sym("pos"), sym("sal")]);
    }

    #[test]
    fn is_empty_except_exists() {
        let mut s = VersionState::new();
        let exists = sym("exists");
        s.insert(exists, app(oid("o")));
        assert!(s.is_empty_except(exists));
        s.insert(sym("p"), app(int(1)));
        assert!(!s.is_empty_except(exists));
    }
}
