//! Method argument tuples.
//!
//! Most methods in the paper take no arguments (`k = 0`), so the empty
//! tuple is represented without allocation; non-empty tuples share an
//! `Arc` so that the state copies of `T_P`'s step 2 (the frame-problem
//! copy) never deep-clone argument vectors.

use std::fmt;
use std::sync::Arc;

use ruvo_term::Const;

/// An immutable tuple of ground method arguments.
#[derive(Clone, Default)]
pub struct Args(Option<Arc<[Const]>>);

impl Args {
    /// The empty argument tuple (`k = 0`).
    pub fn empty() -> Args {
        Args(None)
    }

    /// Build from a vector; empty vectors normalize to [`Args::empty`].
    pub fn new(args: Vec<Const>) -> Args {
        if args.is_empty() {
            Args(None)
        } else {
            Args(Some(args.into()))
        }
    }

    /// The arguments as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Const] {
        match &self.0 {
            None => &[],
            Some(a) => a,
        }
    }

    /// Number of arguments.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True for `k = 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Iterate the arguments.
    pub fn iter(&self) -> std::slice::Iter<'_, Const> {
        self.as_slice().iter()
    }
}

impl PartialEq for Args {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Args {}

impl std::hash::Hash for Args {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Args {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Args {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Args {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({self})")
    }
}

impl fmt::Display for Args {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl From<Vec<Const>> for Args {
    fn from(v: Vec<Const>) -> Self {
        Args::new(v)
    }
}

impl From<&[Const]> for Args {
    fn from(v: &[Const]) -> Self {
        Args::new(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid};

    #[test]
    fn empty_args_do_not_allocate() {
        let a = Args::empty();
        let b = Args::new(vec![]);
        assert_eq!(a, b);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Args::new(vec![int(1), oid("x")]);
        let b = Args::new(vec![int(1), oid("x")]);
        let c = Args::new(vec![int(2)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn clone_is_shallow() {
        let a = Args::new(vec![int(1), int(2), int(3)]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn display_comma_separated() {
        assert_eq!(Args::new(vec![int(1), oid("x")]).to_string(), "1, x");
        assert_eq!(Args::empty().to_string(), "");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Args::new(vec![int(1)]);
        let b = Args::new(vec![int(1), int(2)]);
        let c = Args::new(vec![int(2)]);
        assert!(a < b);
        assert!(b < c);
        assert!(Args::empty() < a);
    }
}
