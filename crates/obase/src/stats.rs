//! Summary statistics over an object base.

use std::fmt;

/// Size/shape summary of an [`crate::ObjectBase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObStats {
    /// Distinct base OIDs with at least one version.
    pub objects: usize,
    /// Distinct versions (VIDs) with at least one fact.
    pub versions: usize,
    /// Total ground version-terms.
    pub facts: usize,
    /// Distinct method names in use.
    pub distinct_methods: usize,
    /// Deepest update chain among stored versions.
    pub max_version_depth: usize,
}

impl fmt::Display for ObStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects, {} versions, {} facts, {} methods, max depth {}",
            self.objects, self.versions, self.facts, self.distinct_methods, self.max_version_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = ObStats {
            objects: 2,
            versions: 3,
            facts: 7,
            distinct_methods: 4,
            max_version_depth: 1,
        };
        let text = s.to_string();
        assert!(text.contains("2 objects"));
        assert!(text.contains("max depth 1"));
    }
}
