//! Summary statistics over an object base.

use std::fmt;

/// Size/shape summary of an [`crate::ObjectBase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObStats {
    /// Distinct base OIDs with at least one version.
    pub objects: usize,
    /// Distinct versions (VIDs) with at least one fact.
    pub versions: usize,
    /// Total ground version-terms.
    pub facts: usize,
    /// Distinct method names in use.
    pub distinct_methods: usize,
    /// Deepest update chain among stored versions.
    pub max_version_depth: usize,
}

impl fmt::Display for ObStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects, {} versions, {} facts, {} methods, max depth {}",
            self.objects, self.versions, self.facts, self.distinct_methods, self.max_version_depth
        )
    }
}

/// Copy-on-write sharing diagnostics between two object bases, as
/// reported by [`crate::ObjectBase::cow_stats`]: of the
/// `indexes × shards_per_index` index shards, how many are still the
/// *same allocation* in both bases. A fresh clone shares all of them;
/// every write unshares at most one shard per affected index, so
/// `total() - shared_shards` bounds how much index data a working
/// copy has actually duplicated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Sharded maps per object base (the version table + 4 indexes).
    pub indexes: usize,
    /// Copy-on-write shards per map ([`crate::SHARD_COUNT`]).
    pub shards_per_index: usize,
    /// Shards whose allocation both bases still share.
    pub shared_shards: usize,
}

impl CowStats {
    /// Total shards per base (`indexes × shards_per_index`).
    pub fn total(&self) -> usize {
        self.indexes * self.shards_per_index
    }

    /// Shards this base has unshared (deep-copied) relative to the
    /// other.
    pub fn unshared_shards(&self) -> usize {
        self.total() - self.shared_shards
    }

    /// True if the two bases share every index shard (e.g. a clone
    /// that has not been written to).
    pub fn fully_shared(&self) -> bool {
        self.shared_shards == self.total()
    }
}

impl fmt::Display for CowStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} index shards shared ({} indexes × {} shards)",
            self.shared_shards,
            self.total(),
            self.indexes,
            self.shards_per_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cow_stats_arithmetic() {
        let s = CowStats { indexes: 5, shards_per_index: 16, shared_shards: 76 };
        assert_eq!(s.total(), 80);
        assert_eq!(s.unshared_shards(), 4);
        assert!(!s.fully_shared());
        assert!(CowStats { shared_shards: 80, ..s }.fully_shared());
        assert!(s.to_string().contains("76/80"));
    }

    #[test]
    fn display_is_informative() {
        let s = ObStats {
            objects: 2,
            versions: 3,
            facts: 7,
            distinct_methods: 4,
            max_version_depth: 1,
        };
        let text = s.to_string();
        assert!(text.contains("2 objects"));
        assert!(text.contains("max depth 1"));
    }
}
