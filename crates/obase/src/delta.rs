//! Delta sets: which `(chain, method)` relations changed, and for
//! which objects.
//!
//! Semi-naive fixpoint evaluation re-derives only what a round's
//! version-state commits could have affected. A [`ChangedSince`]
//! records, per `(chain, method)` relation, the set of object bases
//! whose facts under that relation were added *or* removed since the
//! set was last cleared — exactly the seed a delta-driven join needs.
//!
//! The set is populated by [`crate::ObjectBase::replace_version_tracked`]
//! (the engine's per-round state commit), which diffs the incoming
//! state against the one it replaces so that idempotent re-commits
//! contribute nothing. The `Arc`-shared variant
//! ([`crate::ObjectBase::replace_version_tracked_shared`]) goes one
//! step further: re-committing the very state handle the store
//! already holds is recognized by pointer identity and skips the diff
//! entirely, so a fixpoint round that re-applies an unchanged update
//! set records nothing at zero cost.

use ruvo_term::{Chain, Const, FastHashMap, FastHashSet, Symbol};

/// The changes accumulated since a point in time: per `(chain, method)`
/// relation, the object bases whose fact sets changed.
///
/// ```
/// use ruvo_obase::{ChangedSince, ObjectBase, VersionState, MethodApp, Args};
/// use ruvo_term::{int, oid, sym, Chain, Vid};
///
/// let mut ob = ObjectBase::parse("phil.sal -> 4000.").unwrap();
/// let mut delta = ChangedSince::new();
///
/// // Commit a new state for phil's initial version: sal changes.
/// let mut state = VersionState::new();
/// state.insert(sym("sal"), MethodApp::new(Args::empty(), int(4600)));
/// ob.replace_version_tracked(Vid::object(oid("phil")), state, &mut delta);
///
/// assert!(delta.contains(&(Chain::EMPTY, sym("sal"))));
/// assert_eq!(delta.bases(&(Chain::EMPTY, sym("sal"))).unwrap().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChangedSince {
    map: FastHashMap<(Chain, Symbol), FastHashSet<Const>>,
}

impl ChangedSince {
    /// An empty delta set.
    pub fn new() -> ChangedSince {
        ChangedSince::default()
    }

    /// Record that `base`'s facts under `(chain, method)` changed.
    pub fn record(&mut self, chain: Chain, method: Symbol, base: Const) {
        self.map.entry((chain, method)).or_default().insert(base);
    }

    /// True if the relation changed for *some* object.
    pub fn contains(&self, key: &(Chain, Symbol)) -> bool {
        self.map.contains_key(key)
    }

    /// The objects whose facts under `key` changed, if any did.
    pub fn bases(&self, key: &(Chain, Symbol)) -> Option<&FastHashSet<Const>> {
        self.map.get(key)
    }

    /// The changed relations.
    pub fn keys(&self) -> impl Iterator<Item = &(Chain, Symbol)> {
        self.map.keys()
    }

    /// Fold another delta set into this one.
    pub fn merge(&mut self, other: &ChangedSince) {
        for (key, bases) in &other.map {
            self.map.entry(*key).or_default().extend(bases.iter().copied());
        }
    }

    /// Number of changed relations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all recorded changes.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{oid, sym};

    #[test]
    fn record_and_query() {
        let mut d = ChangedSince::new();
        assert!(d.is_empty());
        d.record(Chain::EMPTY, sym("sal"), oid("phil"));
        d.record(Chain::EMPTY, sym("sal"), oid("bob"));
        d.record(Chain::EMPTY, sym("isa"), oid("phil"));
        assert_eq!(d.len(), 2);
        assert!(d.contains(&(Chain::EMPTY, sym("sal"))));
        assert!(!d.contains(&(Chain::EMPTY, sym("boss"))));
        assert_eq!(d.bases(&(Chain::EMPTY, sym("sal"))).unwrap().len(), 2);
    }

    #[test]
    fn merge_unions() {
        let mut a = ChangedSince::new();
        a.record(Chain::EMPTY, sym("p"), oid("x"));
        let mut b = ChangedSince::new();
        b.record(Chain::EMPTY, sym("p"), oid("y"));
        b.record(Chain::EMPTY, sym("q"), oid("z"));
        a.merge(&b);
        assert_eq!(a.bases(&(Chain::EMPTY, sym("p"))).unwrap().len(), 2);
        assert!(a.contains(&(Chain::EMPTY, sym("q"))));
        a.clear();
        assert!(a.is_empty());
    }
}
