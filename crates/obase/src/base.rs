//! The object base: a set of ground version-terms with join indexes.

use std::fmt;
use std::sync::Arc;

use ruvo_lang::{parse_facts, ParseError};
use ruvo_term::{Chain, Const, FastHashMap, FastHashSet, Symbol, Vid};

use crate::shard::{route, ShardKey, ShardedMap, SHARD_COUNT};
use crate::{exists_sym, Args, ChangedSince, CowStats, MethodApp, ObStats, VersionState};

// Shard routing for the index key types. The key indexes route by
// their `(chain, method)` prefix so that one relation — the unit a
// version-state commit dirties — stays within one shard per index.
impl ShardKey for Vid {
    fn shard(&self) -> usize {
        route(self)
    }
}

impl ShardKey for Const {
    fn shard(&self) -> usize {
        route(self)
    }
}

impl ShardKey for (Chain, Symbol) {
    fn shard(&self) -> usize {
        route(self)
    }
}

impl ShardKey for (Chain, Symbol, Const) {
    fn shard(&self) -> usize {
        route((self.0, self.1))
    }
}

/// One ground version-term `vid.m@args -> r`, as stored.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fact {
    /// The version carrying the method-application.
    pub vid: Vid,
    /// Method name.
    pub method: Symbol,
    /// Ground arguments.
    pub args: Args,
    /// Ground result.
    pub result: Const,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let method = ruvo_lang::pretty::symbol_str(self.method);
        write!(f, "{}.{}", self.vid, method)?;
        if !self.args.is_empty() {
            write!(f, " @ {}", self.args)?;
        }
        write!(f, " -> {} .", ruvo_lang::pretty::const_str(self.result))
    }
}

/// The method index: `(chain, method, key) → {base → multiplicity}`,
/// where `key` is a fact's result value or its first argument.
///
/// This is the scan accelerator behind
/// [`ObjectBase::versions_with_result`] /
/// [`ObjectBase::versions_with_arg0`]: a body literal like
/// `E.isa -> empl` (base unbound, result bound) enumerates exactly the
/// versions whose `isa` set contains `empl` instead of every version
/// defining `isa`. Multiplicities are needed because several facts of
/// one version can share a key (same result under different
/// arguments, and vice versa).
#[derive(Clone, Default, PartialEq)]
struct KeyIndex {
    map: ShardedMap<(Chain, Symbol, Const), FastHashMap<Const, u32>>,
}

impl KeyIndex {
    fn add(&mut self, chain: Chain, method: Symbol, key: Const, base: Const) {
        *self.map.get_or_default((chain, method, key)).entry(base).or_insert(0) += 1;
    }

    fn remove(&mut self, chain: Chain, method: Symbol, key: Const, base: Const) {
        let full = (chain, method, key);
        // Peek through the shared shard first: in a consistent index
        // the entry is always present, and a miss — an index bug —
        // must not CoW-copy the shard on its way to doing nothing.
        let present = self.map.get(&full).is_some_and(|bases| bases.contains_key(&base));
        crate::invariant_assert!(
            present,
            "KeyIndex multiplicity underflow: removing absent entry \
             chain={chain} method={method} key={key} base={base}"
        );
        if !present {
            return;
        }
        let bases = self.map.get_mut(&full).expect("presence checked above");
        let count = bases.get_mut(&base).expect("presence checked above");
        *count -= 1;
        if *count == 0 {
            bases.remove(&base);
            if bases.is_empty() {
                self.map.remove(&full);
            }
        }
    }

    fn bases(&self, chain: Chain, method: Symbol, key: Const) -> impl Iterator<Item = Const> + '_ {
        self.map.get(&(chain, method, key)).into_iter().flatten().map(|(&b, _)| b)
    }
}

/// Whether a fact's result participates in the value-keyed index.
///
/// Canonical `exists` facts (`v.exists -> base(v)`, §3) are excluded:
/// the version is computable directly from the lookup key — see
/// [`ObjectBase::versions_with_result`] — so indexing them would just
/// mirror the whole version table into one `(chain, exists)` shard and
/// make every preparation pass (`ensure_exists`) O(#versions) index
/// work. Non-canonical `exists` facts (result ≠ base; only raw
/// [`ObjectBase::insert`] can produce them) stay indexed.
fn result_indexed(method: Symbol, result: Const, base: Const) -> bool {
    method != exists_sym() || result != base
}

/// The shard index an object `base` routes to — the same pure routing
/// function every `Const`-keyed index uses ([`crate::shard`]). The
/// engine partitions a seeded scan's seed set with this, so each
/// sub-task's objects align with the shard layout the subsequent
/// commit will dirty.
pub fn base_shard(base: Const) -> usize {
    ShardKey::shard(&base)
}

/// The shard index a version routes to in the version table — the
/// dirty-set unit of incremental checkpoints
/// ([`ObjectBase::shard_facts_sorted`] /
/// [`ObjectBase::version_generations`]). Distinct from [`base_shard`]:
/// the version table routes by the full [`Vid`], not its base.
pub fn vid_shard(vid: Vid) -> usize {
    ShardKey::shard(&vid)
}

/// The deterministic fact order used by [`ObjectBase::facts_sorted`]
/// and the binary snapshot/delta encodings.
fn fact_cmp(a: &Fact, b: &Fact) -> std::cmp::Ordering {
    (a.vid, a.method.as_str(), &a.args, a.result).cmp(&(
        b.vid,
        b.method.as_str(),
        &b.args,
        b.result,
    ))
}

/// One net index mutation of a batch commit
/// ([`ObjectBase::replace_versions_tracked_shared`]), bucketed by the
/// `(chain, method)` shard route that `by_chain_method`, `by_result`
/// and `by_arg0` share.
enum RelOp {
    /// ± `base` in `by_chain_method[(chain, method)]`.
    Cm { add: bool, chain: Chain, method: Symbol, base: Const },
    /// ± one multiplicity of `base` under `(chain, method, key)` in
    /// `by_result` (`arg: false`) or `by_arg0` (`arg: true`).
    Key { add: bool, arg: bool, chain: Chain, method: Symbol, key: Const, base: Const },
}

impl RelOp {
    fn cm(add: bool, vid: Vid, method: Symbol) -> RelOp {
        RelOp::Cm { add, chain: vid.chain(), method, base: vid.base() }
    }

    /// The value-keyed ops one fact implies (mirroring the
    /// [`ObjectBase::insert`] / [`ObjectBase::remove`] maintenance of
    /// the two key indexes).
    fn keyed(bucket: &mut Vec<RelOp>, add: bool, vid: Vid, method: Symbol, app: &MethodApp) {
        if result_indexed(method, app.result, vid.base()) {
            bucket.push(RelOp::Key {
                add,
                arg: false,
                chain: vid.chain(),
                method,
                key: app.result,
                base: vid.base(),
            });
        }
        if let Some(&a0) = app.args.as_slice().first() {
            bucket.push(RelOp::Key {
                add,
                arg: true,
                chain: vid.chain(),
                method,
                key: a0,
                base: vid.base(),
            });
        }
    }
}

type CmShard = Arc<FastHashMap<(Chain, Symbol), FastHashSet<Const>>>;
type KeyShard = Arc<FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>>>;

/// One worker-ownable unit of a batch commit: a shard slot (or the
/// route-aligned slots of the three `(chain, method)`-routed indexes)
/// plus the mutations bucketed to it. Jobs borrow disjoint `&mut`
/// slots, so a worker team can apply any partition of them without
/// synchronization.
enum CommitJob<'a> {
    Versions {
        slot: &'a mut Arc<FastHashMap<Vid, Arc<VersionState>>>,
        ops: Vec<(Vid, Option<Arc<VersionState>>)>,
    },
    Relations {
        cm: &'a mut CmShard,
        res: &'a mut KeyShard,
        arg: &'a mut KeyShard,
        ops: Vec<RelOp>,
    },
    Bases {
        slot: &'a mut Arc<FastHashMap<Const, FastHashSet<Chain>>>,
        ops: Vec<(Const, Chain, bool)>,
    },
}

impl CommitJob<'_> {
    fn ops_len(&self) -> usize {
        match self {
            CommitJob::Versions { ops, .. } => ops.len(),
            CommitJob::Relations { ops, .. } => ops.len(),
            CommitJob::Bases { ops, .. } => ops.len(),
        }
    }

    fn apply(self) {
        match self {
            CommitJob::Versions { slot, ops } => {
                let map = Arc::make_mut(slot);
                for (vid, state) in ops {
                    match state {
                        Some(state) => {
                            map.insert(vid, state);
                        }
                        None => {
                            map.remove(&vid);
                        }
                    }
                }
            }
            CommitJob::Relations { cm, res, arg, ops } => {
                // Unshare only the planes ops actually target.
                let mut cm =
                    ops.iter().any(|o| matches!(o, RelOp::Cm { .. })).then(|| Arc::make_mut(cm));
                let mut res = ops
                    .iter()
                    .any(|o| matches!(o, RelOp::Key { arg: false, .. }))
                    .then(|| Arc::make_mut(res));
                let mut arg_m = ops
                    .iter()
                    .any(|o| matches!(o, RelOp::Key { arg: true, .. }))
                    .then(|| Arc::make_mut(arg));
                for op in ops {
                    match op {
                        RelOp::Cm { add: true, chain, method, base } => {
                            let map = cm.as_mut().expect("plane unshared above");
                            map.entry((chain, method)).or_default().insert(base);
                        }
                        RelOp::Cm { add: false, chain, method, base } => {
                            let map = cm.as_mut().expect("plane unshared above");
                            if let Some(set) = map.get_mut(&(chain, method)) {
                                set.remove(&base);
                                if set.is_empty() {
                                    map.remove(&(chain, method));
                                }
                            }
                        }
                        RelOp::Key { add, arg, chain, method, key, base } => {
                            let map = if arg { &mut arg_m } else { &mut res };
                            let map = map.as_mut().expect("plane unshared above");
                            apply_key_op(map, add, chain, method, key, base);
                        }
                    }
                }
            }
            CommitJob::Bases { slot, ops } => {
                let map = Arc::make_mut(slot);
                for (base, chain, add) in ops {
                    if add {
                        map.entry(base).or_default().insert(chain);
                    } else if let Some(chains) = map.get_mut(&base) {
                        chains.remove(&chain);
                        if chains.is_empty() {
                            map.remove(&base);
                        }
                    }
                }
            }
        }
    }
}

/// Apply one multiplicity op to a key-index shard (the batch-commit
/// mirror of `KeyIndex::add` / `KeyIndex::remove`, including the
/// underflow invariant).
fn apply_key_op(
    map: &mut FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>>,
    add: bool,
    chain: Chain,
    method: Symbol,
    key: Const,
    base: Const,
) {
    let full = (chain, method, key);
    if add {
        *map.entry(full).or_default().entry(base).or_insert(0) += 1;
        return;
    }
    let present = map.get(&full).is_some_and(|bases| bases.contains_key(&base));
    crate::invariant_assert!(
        present,
        "KeyIndex multiplicity underflow in batch commit: \
         chain={chain} method={method} key={key} base={base}"
    );
    if !present {
        return;
    }
    let bases = map.get_mut(&full).expect("presence checked above");
    let count = bases.get_mut(&base).expect("presence checked above");
    *count -= 1;
    if *count == 0 {
        bases.remove(&base);
        if bases.is_empty() {
            map.remove(&full);
        }
    }
}

/// A set of ground version-terms, indexed for bottom-up evaluation.
///
/// See the crate docs for the index structure. All mutating operations
/// keep the indexes consistent; inline invariants go through
/// [`invariant_assert!`](crate::invariant_assert) (armed in debug *and*
/// `cfg(test)` release builds) and the test suite cross-checks whole
/// bases via [`ObjectBase::check_invariants`].
///
/// ## Copy-on-write clones
///
/// Sharing is structural at two levels. Every map — the version table
/// and all four join indexes — is split into [`SHARD_COUNT`] fixed
/// `Arc`-wrapped shards (see [`crate::shard`]), and every per-version
/// fact set is an `Arc<VersionState>` of its own. [`Clone`] therefore
/// bumps 5 × [`SHARD_COUNT`] reference counts — **O(shards), not
/// O(facts) or O(versions)** — and a subsequent mutation unshares only
/// the shards and the one state it actually dirties
/// ([`Arc::make_mut`]). This is what makes engine runs (which evaluate
/// on a working copy), session savepoints, hypothetical what-if
/// transactions and [`crate::Snapshot`] read views pay for what they
/// touch rather than for what the base holds; see
/// [`ObjectBase::cow_stats`] for the sharing diagnostics.
#[derive(Clone, Default)]
pub struct ObjectBase {
    versions: ShardedMap<Vid, Arc<VersionState>>,
    /// `(chain, method) → bases`: which objects have a version with this
    /// chain defining this method.
    by_chain_method: ShardedMap<(Chain, Symbol), FastHashSet<Const>>,
    /// `base → chains`: every version of an object.
    by_base: ShardedMap<Const, FastHashSet<Chain>>,
    /// `(chain, method, result) → bases`: the value-keyed scan index.
    by_result: KeyIndex,
    /// `(chain, method, first-arg) → bases`: ditto for argument keys.
    by_arg0: KeyIndex,
    fact_count: usize,
    /// Versions whose state carries the canonical `v.exists -> base(v)`
    /// fact (§3). When this equals the version count the base is fully
    /// *prepared* and [`ObjectBase::ensure_exists`] is O(1) — the
    /// common case for working copies cloned from an already-prepared
    /// base.
    prepared_versions: usize,
}

impl ObjectBase {
    /// An empty object base.
    pub fn new() -> ObjectBase {
        ObjectBase::default()
    }

    /// Parse the textual format (see [`ruvo_lang::parse_facts`]).
    ///
    /// Does *not* add `exists` facts; the engine does that when an
    /// update-program is run (§3's preparation step).
    pub fn parse(src: &str) -> Result<ObjectBase, ParseError> {
        let mut ob = ObjectBase::new();
        for f in parse_facts(src)? {
            ob.insert(f.vid, f.method, Args::new(f.args), f.result);
        }
        Ok(ob)
    }

    // ----- mutation --------------------------------------------------

    /// Insert one ground version-term. Returns true if it was new.
    pub fn insert(
        &mut self,
        vid: Vid,
        method: Symbol,
        args: impl Into<Args>,
        result: Const,
    ) -> bool {
        let app = MethodApp::new(args, result);
        // Peek before copying: a duplicate insert must not CoW-copy
        // anything (neither the versions shard nor the shared state).
        // This is what keeps `ensure_exists` on an already-prepared
        // working copy from deep-copying every state it visits.
        if self.versions.get(&vid).is_some_and(|s| s.contains(method, &app)) {
            return false;
        }
        let arg0 = app.args.as_slice().first().copied();
        if method == exists_sym() && result == vid.base() && app.args.is_empty() {
            self.prepared_versions += 1;
        }
        let state = Arc::make_mut(self.versions.get_or_default(vid));
        let was_empty_method = !state.has_method(method);
        let added = state.insert(method, app);
        crate::invariant_assert!(added, "presence peeked above");
        self.fact_count += 1;
        if was_empty_method {
            self.by_chain_method.get_or_default((vid.chain(), method)).insert(vid.base());
        }
        self.index_version(vid);
        if result_indexed(method, result, vid.base()) {
            self.by_result.add(vid.chain(), method, result, vid.base());
        }
        if let Some(a0) = arg0 {
            self.by_arg0.add(vid.chain(), method, a0, vid.base());
        }
        true
    }

    /// Record `vid` in the `base → chains` index. Peeks through the
    /// shared shard first: adding a second fact to an already-indexed
    /// version must not unshare anything.
    fn index_version(&mut self, vid: Vid) {
        if !self.by_base.get(&vid.base()).is_some_and(|chains| chains.contains(&vid.chain())) {
            self.by_base.get_or_default(vid.base()).insert(vid.chain());
        }
    }

    /// Remove one ground version-term. Returns true if it was present.
    pub fn remove(&mut self, vid: Vid, method: Symbol, args: &Args, result: Const) -> bool {
        let app = MethodApp { args: args.clone(), result };
        // Peek before copying: a miss must not CoW-copy the shard or
        // the state.
        if !self.versions.get(&vid).is_some_and(|s| s.contains(method, &app)) {
            return false;
        }
        let (method_gone, version_gone) = {
            let state_arc = self.versions.get_mut(&vid).expect("presence peeked above");
            let state = Arc::make_mut(state_arc);
            let removed = state.remove(method, &app);
            crate::invariant_assert!(removed, "presence peeked above");
            (!state.has_method(method), state.is_empty())
        };
        self.fact_count -= 1;
        if method == exists_sym() && result == vid.base() && args.is_empty() {
            self.prepared_versions -= 1;
        }
        if result_indexed(method, result, vid.base()) {
            self.by_result.remove(vid.chain(), method, result, vid.base());
        }
        if let Some(&a0) = args.as_slice().first() {
            self.by_arg0.remove(vid.chain(), method, a0, vid.base());
        }
        if method_gone {
            self.unindex_method(vid, method);
        }
        if version_gone {
            self.drop_version_entry(vid);
        }
        true
    }

    /// Remove a whole version and all its facts; returns the old state
    /// (unsharing it first if a clone still references it).
    pub fn remove_version(&mut self, vid: Vid) -> Option<VersionState> {
        let state = self.discard_version(vid)?;
        Some(Arc::try_unwrap(state).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Remove a whole version, unindexing its facts, without forcing
    /// the state out of its (possibly shared) allocation.
    pub(crate) fn discard_version(&mut self, vid: Vid) -> Option<Arc<VersionState>> {
        let state = self.versions.remove(&vid)?;
        self.fact_count -= state.len();
        if state.contains(exists_sym(), &MethodApp::new(Args::empty(), vid.base())) {
            self.prepared_versions -= 1;
        }
        for method in state.methods() {
            self.unindex_method(vid, method);
        }
        for (method, app) in state.iter() {
            if result_indexed(method, app.result, vid.base()) {
                self.by_result.remove(vid.chain(), method, app.result, vid.base());
            }
            if let Some(&a0) = app.args.as_slice().first() {
                self.by_arg0.remove(vid.chain(), method, a0, vid.base());
            }
        }
        self.unindex_version(vid);
        Some(state)
    }

    /// Install `state` as the (complete) new state of `vid`, replacing
    /// whatever was there — the engine's per-stratum *overwrite* step
    /// (DESIGN.md D1). Empty states simply remove the version.
    pub fn replace_version(&mut self, vid: Vid, state: VersionState) {
        self.replace_version_shared(vid, Arc::new(state));
    }

    /// [`ObjectBase::replace_version`] for an already-shared state:
    /// the store adopts the `Arc` as-is, so a state read out of one
    /// version (or another base) can be installed without deep-copying
    /// it — the commit-side half of the copy-on-write discipline.
    pub fn replace_version_shared(&mut self, vid: Vid, state: Arc<VersionState>) {
        self.discard_version(vid);
        if state.is_empty() {
            return;
        }
        self.fact_count += state.len();
        if state.contains(exists_sym(), &MethodApp::new(Args::empty(), vid.base())) {
            self.prepared_versions += 1;
        }
        for method in state.methods() {
            self.by_chain_method.get_or_default((vid.chain(), method)).insert(vid.base());
        }
        for (method, app) in state.iter() {
            if result_indexed(method, app.result, vid.base()) {
                self.by_result.add(vid.chain(), method, app.result, vid.base());
            }
            if let Some(&a0) = app.args.as_slice().first() {
                self.by_arg0.add(vid.chain(), method, a0, vid.base());
            }
        }
        self.index_version(vid);
        self.versions.insert(vid, state);
    }

    /// [`ObjectBase::replace_version`] that also records the commit's
    /// semantic delta into `changed`: every method whose application
    /// set differs between the old and the new state of `vid` (all of
    /// the new state's methods when the version is new). Idempotent
    /// re-commits therefore record nothing — the property the
    /// semi-naive evaluator's seeding relies on.
    pub fn replace_version_tracked(
        &mut self,
        vid: Vid,
        state: VersionState,
        changed: &mut ChangedSince,
    ) {
        self.replace_version_tracked_shared(vid, Arc::new(state), changed);
    }

    /// [`ObjectBase::replace_version_tracked`] for an already-shared
    /// state. Re-committing the very `Arc` the store already holds —
    /// the shape an idempotent round of the fixpoint produces when it
    /// re-applies an unchanged update set — is recognized by pointer
    /// identity and returns immediately: no method-set diff, no
    /// re-indexing, nothing recorded.
    pub fn replace_version_tracked_shared(
        &mut self,
        vid: Vid,
        state: Arc<VersionState>,
        changed: &mut ChangedSince,
    ) {
        let methods = match self.versions.get(&vid) {
            Some(old) if Arc::ptr_eq(old, &state) => return,
            Some(old) => {
                let diff = old.changed_methods(&state);
                if diff.is_empty() {
                    // Content-equal recommit under a fresh `Arc`: the
                    // stored state already equals the new one, so keep
                    // it — no re-indexing, nothing recorded, and (like
                    // the pointer-equal case) no shard dirtied.
                    return;
                }
                diff
            }
            None => state.methods().collect(),
        };
        for method in methods {
            changed.record(vid.chain(), method, vid.base());
        }
        self.replace_version_shared(vid, state);
    }

    /// Batch [`ObjectBase::replace_version_tracked_shared`] over
    /// `edits` — one complete new state per **distinct** vid — with the
    /// index maintenance partitioned across up to `workers` threads.
    ///
    /// The committed base, the recorded `changed` delta and the
    /// fact/preparation counters are exactly those of applying the
    /// edits one by one in order (any `workers` value, including 1,
    /// produces the identical base). Parallelism comes from shard
    /// ownership: every mutation an edit implies routes to a fixed
    /// shard of one index ([`crate::shard`]), so the edits' mutations
    /// are bucketed per shard and each worker commits a disjoint set
    /// of shard buckets through `ShardedMap::shard_slots_mut` — no
    /// locks, no shared write state. Two different edits can never
    /// contend on one index *entry* either: a `(chain, method[, key])`
    /// cell names the edit's own `(base, chain)` version, so its
    /// multiplicity updates come from a single edit.
    pub fn replace_versions_tracked_shared(
        &mut self,
        edits: &[(Vid, Arc<VersionState>)],
        workers: usize,
        changed: &mut ChangedSince,
    ) {
        crate::invariant_assert!(
            edits.iter().map(|(v, _)| v).collect::<FastHashSet<_>>().len() == edits.len(),
            "replace_versions_tracked_shared requires distinct vids"
        );
        if workers < 2 || edits.len() < 2 {
            for (vid, state) in edits {
                self.replace_version_tracked_shared(*vid, Arc::clone(state), changed);
            }
            return;
        }
        self.commit_edits_sharded(edits, workers, changed);
    }

    /// The parallel half of
    /// [`ObjectBase::replace_versions_tracked_shared`]: a serial
    /// read-only pre-pass diffs each edit against the stored state and
    /// buckets the implied index mutations by target shard; a scoped
    /// worker team then owns disjoint shard groups and applies the
    /// buckets concurrently. The pre-pass emits *net* diffs (facts in
    /// old∖new removed, new∖old added), which lands on the same index
    /// state as the serial discard-and-reinsert.
    fn commit_edits_sharded(
        &mut self,
        edits: &[(Vid, Arc<VersionState>)],
        workers: usize,
        changed: &mut ChangedSince,
    ) {
        let exists = exists_sym();
        let mut rel_ops: Vec<Vec<RelOp>> =
            std::iter::repeat_with(Vec::new).take(SHARD_COUNT).collect();
        let mut ver_ops: Vec<Vec<(Vid, Option<Arc<VersionState>>)>> =
            std::iter::repeat_with(Vec::new).take(SHARD_COUNT).collect();
        let mut base_ops: Vec<Vec<(Const, Chain, bool)>> =
            std::iter::repeat_with(Vec::new).take(SHARD_COUNT).collect();
        let mut fact_delta = 0isize;
        let mut prepared_delta = 0isize;

        for (vid, new) in edits {
            let vid = *vid;
            let old = self.versions.get(&vid);
            if old.is_some_and(|o| Arc::ptr_eq(o, new)) {
                continue; // idempotent recommit: nothing to diff or record
            }
            let old_present = old.is_some();
            let diff: Vec<Symbol> = match old {
                Some(old) => old.changed_methods(new),
                None => new.methods().collect(),
            };
            if old_present && diff.is_empty() {
                continue; // content-equal recommit: keep the stored state
            }
            for &m in &diff {
                changed.record(vid.chain(), m, vid.base());
            }
            fact_delta += new.len() as isize - old.map_or(0, |s| s.len()) as isize;
            let exists_app = MethodApp::new(Args::empty(), vid.base());
            prepared_delta += new.contains(exists, &exists_app) as isize
                - old.is_some_and(|s| s.contains(exists, &exists_app)) as isize;

            for &m in &diff {
                let bucket = &mut rel_ops[(vid.chain(), m).shard()];
                let old_has = old.is_some_and(|s| s.has_method(m));
                match (old_has, new.has_method(m)) {
                    (true, false) => bucket.push(RelOp::cm(false, vid, m)),
                    (false, true) => bucket.push(RelOp::cm(true, vid, m)),
                    _ => {}
                }
                // Net fact diff, removals before additions (the order
                // the serial two-phase commit establishes per edit).
                if let Some(old) = old {
                    for app in old.apps(m) {
                        if !new.contains(m, app) {
                            RelOp::keyed(bucket, false, vid, m, app);
                        }
                    }
                }
                for app in new.apps(m) {
                    if old.is_none_or(|o| !o.contains(m, app)) {
                        RelOp::keyed(bucket, true, vid, m, app);
                    }
                }
            }

            if new.is_empty() {
                if old_present {
                    ver_ops[vid.shard()].push((vid, None));
                    base_ops[vid.base().shard()].push((vid.base(), vid.chain(), false));
                }
            } else {
                ver_ops[vid.shard()].push((vid, Some(Arc::clone(new))));
                if !old_present {
                    base_ops[vid.base().shard()].push((vid.base(), vid.chain(), true));
                }
            }
        }

        // `shard_slots_mut` bypasses the generation-tracked entry
        // points, so record which slots the jobs below will actually
        // write before the op buckets are moved into them.
        let ver_dirty: Vec<bool> = ver_ops.iter().map(|ops| !ops.is_empty()).collect();
        let rel_dirty: Vec<bool> = rel_ops.iter().map(|ops| !ops.is_empty()).collect();
        let bas_dirty: Vec<bool> = base_ops.iter().map(|ops| !ops.is_empty()).collect();

        let mut jobs: Vec<CommitJob> = Vec::new();
        for ((_, slot), ops) in self.versions.shard_slots_mut().zip(ver_ops) {
            if !ops.is_empty() {
                jobs.push(CommitJob::Versions { slot, ops });
            }
        }
        let res_slots = self.by_result.map.shard_slots_mut().map(|(_, s)| s);
        let arg_slots = self.by_arg0.map.shard_slots_mut().map(|(_, s)| s);
        for ((((_, cm), res), arg), ops) in
            self.by_chain_method.shard_slots_mut().zip(res_slots).zip(arg_slots).zip(rel_ops)
        {
            if !ops.is_empty() {
                jobs.push(CommitJob::Relations { cm, res, arg, ops });
            }
        }
        for ((_, slot), ops) in self.by_base.shard_slots_mut().zip(base_ops) {
            if !ops.is_empty() {
                jobs.push(CommitJob::Bases { slot, ops });
            }
        }
        // Largest buckets first, dealt round-robin: a deterministic
        // assignment that keeps the heaviest shard groups apart.
        jobs.sort_by_key(|j| std::cmp::Reverse(j.ops_len()));
        let mut bins: Vec<Vec<CommitJob>> = Vec::new();
        bins.resize_with(workers.min(jobs.len()).max(1), Vec::new);
        let n_bins = bins.len();
        for (i, job) in jobs.into_iter().enumerate() {
            bins[i % n_bins].push(job);
        }
        std::thread::scope(|scope| {
            for bin in bins {
                scope.spawn(move || {
                    for job in bin {
                        job.apply();
                    }
                });
            }
        });
        for i in 0..SHARD_COUNT {
            if ver_dirty[i] {
                self.versions.note_written(i);
            }
            if rel_dirty[i] {
                self.by_chain_method.note_written(i);
                self.by_result.map.note_written(i);
                self.by_arg0.map.note_written(i);
            }
            if bas_dirty[i] {
                self.by_base.note_written(i);
            }
        }
        self.fact_count = (self.fact_count as isize + fact_delta) as usize;
        self.prepared_versions = (self.prepared_versions as isize + prepared_delta) as usize;
    }

    fn unindex_method(&mut self, vid: Vid, method: Symbol) {
        if let Some(set) = self.by_chain_method.get_mut(&(vid.chain(), method)) {
            set.remove(&vid.base());
            if set.is_empty() {
                self.by_chain_method.remove(&(vid.chain(), method));
            }
        }
    }

    fn drop_version_entry(&mut self, vid: Vid) {
        self.versions.remove(&vid);
        self.unindex_version(vid);
    }

    fn unindex_version(&mut self, vid: Vid) {
        if let Some(chains) = self.by_base.get_mut(&vid.base()) {
            chains.remove(&vid.chain());
            if chains.is_empty() {
                self.by_base.remove(&vid.base());
            }
        }
    }

    /// §3: define the system method for every version currently present
    /// (`v.exists -> base`). For a freshly loaded object base this is
    /// exactly the paper's "for each object o in the given object base
    /// ob there is defined a method exists: o.exists -> o".
    ///
    /// Runs as one bulk pass over the version shards: shards whose
    /// states all carry their `exists` fact already are left *shared*
    /// (a prepared working copy costs nothing to re-prepare), and the
    /// per-chain `(chain, exists)` index entries are batched. Canonical
    /// `exists` facts are not value-indexed (see
    /// [`ObjectBase::versions_with_result`]).
    pub fn ensure_exists(&mut self) {
        // Already prepared (the usual case for a working copy cloned
        // from a prepared base): O(1), nothing scanned, nothing CoW'd.
        if self.prepared_versions == self.versions.len() {
            return;
        }
        let exists = exists_sym();
        let mut added_by_chain: FastHashMap<Chain, Vec<Const>> = FastHashMap::default();
        let mut added = 0usize;
        for i in 0..SHARD_COUNT {
            let missing = |vid: &Vid, state: &VersionState| {
                !state.contains(exists, &MethodApp::new(Args::empty(), vid.base()))
            };
            // Peek through the shared shard first: only unshare it if
            // some state actually lacks its `exists` fact.
            if !self.versions.shard_at(i).iter().any(|(vid, s)| missing(vid, s)) {
                continue;
            }
            let shard = Arc::make_mut(self.versions.shard_slot(i));
            for (vid, state_arc) in shard.iter_mut() {
                if !missing(vid, state_arc) {
                    continue;
                }
                Arc::make_mut(state_arc).insert(exists, MethodApp::new(Args::empty(), vid.base()));
                added += 1;
                added_by_chain.entry(vid.chain()).or_default().push(vid.base());
            }
        }
        self.fact_count += added;
        self.prepared_versions += added;
        for (chain, bases) in added_by_chain {
            self.by_chain_method.get_or_default((chain, exists)).extend(bases);
        }
    }

    // ----- queries ---------------------------------------------------

    /// The state of a version, if it has any facts.
    pub fn version(&self, vid: Vid) -> Option<&VersionState> {
        self.versions.get(&vid).map(Arc::as_ref)
    }

    /// The shared handle to a version's state. Cloning the `Arc` and
    /// handing it back through
    /// [`ObjectBase::replace_version_tracked_shared`] (possibly after
    /// [`Arc::make_mut`] writes) is the allocation-free commit path
    /// the engine's `T_P` step 2 uses.
    pub fn version_shared(&self, vid: Vid) -> Option<&Arc<VersionState>> {
        self.versions.get(&vid)
    }

    /// Copy-on-write sharing diagnostics against another base —
    /// typically a clone of this one, before or after mutations. A
    /// fresh clone shares everything; each write unshares at most one
    /// shard per affected index.
    pub fn cow_stats(&self, other: &ObjectBase) -> CowStats {
        CowStats {
            indexes: 5,
            shards_per_index: SHARD_COUNT,
            shared_shards: self.versions.shards_shared_with(&other.versions)
                + self.by_chain_method.shards_shared_with(&other.by_chain_method)
                + self.by_base.shards_shared_with(&other.by_base)
                + self.by_result.map.shards_shared_with(&other.by_result.map)
                + self.by_arg0.map.shards_shared_with(&other.by_arg0.map),
        }
    }

    /// Membership of one ground version-term.
    pub fn contains(&self, vid: Vid, method: Symbol, args: &[Const], result: Const) -> bool {
        self.versions
            .get(&vid)
            .is_some_and(|s| s.contains(method, &MethodApp { args: Args::from(args), result }))
    }

    /// True if `vid.exists -> base(vid)` holds — the paper's criterion
    /// for "the version exists" used by `v*` and by step 2 of `T_P`.
    pub fn exists_fact(&self, vid: Vid) -> bool {
        self.contains(vid, exists_sym(), &[], vid.base())
    }

    /// §3's `v*`: "the largest subterm of `v`, such that
    /// `v*.exists -> o ∈ I`" — the deepest existing version at or below
    /// `v`. `None` when not even the bare object exists (a brand-new
    /// object being created by an `ins`, DESIGN.md D3).
    pub fn v_star(&self, vid: Vid) -> Option<Vid> {
        let mut candidates: Vec<Vid> = vid.subterms().collect();
        while let Some(v) = candidates.pop() {
            if self.exists_fact(v) {
                return Some(v);
            }
        }
        None
    }

    /// Results of `method@args` on `vid`.
    pub fn results<'a>(
        &'a self,
        vid: Vid,
        method: Symbol,
        args: &'a [Const],
    ) -> impl Iterator<Item = Const> + 'a {
        self.versions.get(&vid).into_iter().flat_map(move |s| s.results(method, args))
    }

    /// All applications of `method` on `vid`.
    pub fn apps(&self, vid: Vid, method: Symbol) -> impl Iterator<Item = &MethodApp> {
        self.versions.get(&vid).into_iter().flat_map(move |s| s.apps(method))
    }

    /// The versions with update-chain `chain` that define `method` —
    /// the scan index for a body literal with an unbound base variable.
    pub fn versions_with(&self, chain: Chain, method: Symbol) -> impl Iterator<Item = Vid> + '_ {
        self.by_chain_method
            .get(&(chain, method))
            .into_iter()
            .flatten()
            .map(move |&base| Vid::new(base, chain))
    }

    /// The versions with update-chain `chain` that have at least one
    /// `method` application whose **result** is `result` — the indexed
    /// scan for a body literal whose result position is bound (e.g.
    /// `E.isa -> empl` with `E` unbound enumerates only the versions
    /// that are `empl`s, not every version defining `isa`).
    ///
    /// For `exists` the canonical fact `v.exists -> base(v)` is
    /// answered *directly* — the only candidate is `result@chain`, so
    /// no index entry is kept for it; non-canonical `exists` facts
    /// (result ≠ base) still come from the index.
    pub fn versions_with_result(
        &self,
        chain: Chain,
        method: Symbol,
        result: Const,
    ) -> impl Iterator<Item = Vid> + '_ {
        let canonical = (method == exists_sym())
            .then(|| {
                let vid = Vid::new(result, chain);
                self.apps(vid, method).any(|a| a.result == result).then_some(vid)
            })
            .flatten();
        canonical.into_iter().chain(
            self.by_result.bases(chain, method, result).map(move |base| Vid::new(base, chain)),
        )
    }

    /// The versions with update-chain `chain` that have at least one
    /// `method` application whose **first argument** is `arg0` (the
    /// indexed scan for a bound first argument).
    pub fn versions_with_arg0(
        &self,
        chain: Chain,
        method: Symbol,
        arg0: Const,
    ) -> impl Iterator<Item = Vid> + '_ {
        self.by_arg0.bases(chain, method, arg0).map(move |base| Vid::new(base, chain))
    }

    /// True if `vid` has at least one application of `method`.
    pub fn defines(&self, vid: Vid, method: Symbol) -> bool {
        self.versions.get(&vid).is_some_and(|s| s.has_method(method))
    }

    /// Every version of an object, as VIDs.
    pub fn versions_of(&self, base: Const) -> impl Iterator<Item = Vid> + '_ {
        self.by_base.get(&base).into_iter().flatten().map(move |&chain| Vid::new(base, chain))
    }

    /// Every object (base OID) with at least one version in the store.
    pub fn objects(&self) -> impl Iterator<Item = Const> + '_ {
        self.by_base.keys().copied()
    }

    /// Every version in the store.
    pub fn versions(&self) -> impl Iterator<Item = Vid> + '_ {
        self.versions.keys().copied()
    }

    /// All facts (unordered).
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.versions.iter().flat_map(|(&vid, state)| {
            state.iter().map(move |(method, app)| Fact {
                vid,
                method,
                args: app.args.clone(),
                result: app.result,
            })
        })
    }

    /// All facts, sorted for deterministic output.
    pub fn facts_sorted(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.iter().collect();
        v.sort_by(fact_cmp);
        v
    }

    // ----- incremental-checkpoint surface ----------------------------

    /// The per-shard write generations of the version table. Clones
    /// inherit the counters, so comparing against generations captured
    /// at the last checkpoint yields the set of shards that *may* hold
    /// different versions — the dirty set a shard-delta checkpoint
    /// writes. Only the version table matters here: every join index
    /// is reconstructible from the facts, and the snapshot codec
    /// encodes facts straight out of the version states.
    pub fn version_generations(&self) -> [u64; SHARD_COUNT] {
        self.versions.generations()
    }

    /// Re-anchor this base's version-table generations onto `prev`'s
    /// lineage by *exact* per-shard content comparison: an equal
    /// shard inherits `prev`'s counter, a differing one advances it.
    /// Commit paths that extract a fresh base from an evaluation
    /// result (instead of mutating a clone of the committed one) must
    /// call this with the previously committed base, or generation
    /// comparison across the commit would be meaningless — two
    /// independently built tables can collide on counters. O(facts)
    /// worst case, the same bound as the extraction itself.
    pub fn rebase_generations(&mut self, prev: &ObjectBase) {
        self.versions.rebase_generations(&prev.versions);
    }

    /// The facts of every version routed to version-table shard `i`,
    /// in the same deterministic order [`ObjectBase::facts_sorted`]
    /// uses — the unit of a shard-delta checkpoint.
    pub fn shard_facts_sorted(&self, i: usize) -> Vec<Fact> {
        let mut v: Vec<Fact> = self
            .versions
            .shard_at(i)
            .iter()
            .flat_map(|(&vid, state)| {
                state.iter().map(move |(method, app)| Fact {
                    vid,
                    method,
                    args: app.args.clone(),
                    result: app.result,
                })
            })
            .collect();
        v.sort_by(fact_cmp);
        v
    }

    /// The version ids routed to version-table shard `i`, sorted.
    /// With [`ObjectBase::shard_facts_sorted`] this is the writer-side
    /// unit of a shard-delta: the encoder diffs a dirty shard's vid
    /// set against the previously checkpointed state to find the
    /// versions the delta must explicitly remove.
    pub fn shard_vids_sorted(&self, i: usize) -> Vec<Vid> {
        let mut v: Vec<Vid> = self.versions.shard_at(i).keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Remove every version routed to version-table shard `i`,
    /// keeping all indexes consistent.
    pub fn clear_versions_shard(&mut self, i: usize) {
        let vids: Vec<Vid> = self.versions.shard_at(i).keys().copied().collect();
        for vid in vids {
            self.discard_version(vid);
        }
    }

    /// Build a base from a decoded fact stream with the index
    /// maintenance spread over up to `workers` threads — the parallel
    /// reopen path. Equivalent to inserting every fact in order
    /// (duplicates collapse, as [`ObjectBase::insert`] does).
    pub fn from_facts(facts: Vec<Fact>, workers: usize) -> ObjectBase {
        let mut states: FastHashMap<Vid, VersionState> = FastHashMap::default();
        for f in facts {
            states.entry(f.vid).or_default().insert(f.method, MethodApp::new(f.args, f.result));
        }
        let edits: Vec<(Vid, Arc<VersionState>)> =
            states.into_iter().map(|(vid, s)| (vid, Arc::new(s))).collect();
        let mut ob = ObjectBase::new();
        let mut changed = ChangedSince::new();
        ob.replace_versions_tracked_shared(&edits, workers, &mut changed);
        ob
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.fact_count
    }

    /// True if the store has no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_count == 0
    }

    /// Convenience for tests and examples: the sorted results of a
    /// 0-ary method on the *initial* version of `base`.
    pub fn lookup1(&self, base: Const, method: &str) -> Vec<Const> {
        let mut v: Vec<Const> =
            self.results(Vid::object(base), ruvo_term::sym(method), &[]).collect();
        v.sort();
        v
    }

    /// A copy without any `exists` facts (for comparing evaluation
    /// results against hand-written expectations).
    pub fn without_exists(&self) -> ObjectBase {
        let exists = exists_sym();
        let mut out = ObjectBase::new();
        for f in self.iter() {
            if f.method != exists {
                out.insert(f.vid, f.method, f.args, f.result);
            }
        }
        out
    }

    /// Summary statistics.
    pub fn stats(&self) -> ObStats {
        let mut methods: FastHashSet<Symbol> = FastHashSet::default();
        let mut max_depth = 0;
        for (vid, state) in self.versions.iter() {
            max_depth = max_depth.max(vid.depth());
            methods.extend(state.methods());
        }
        ObStats {
            objects: self.by_base.len(),
            versions: self.versions.len(),
            facts: self.fact_count,
            distinct_methods: methods.len(),
            max_version_depth: max_depth,
        }
    }

    /// Exhaustive index consistency check (test helper; O(n)).
    pub fn check_invariants(&self) {
        let mut count = 0;
        for (vid, state) in self.versions.iter() {
            assert!(!state.is_empty(), "empty version state for {vid}");
            count += state.len();
            for method in state.methods() {
                assert!(
                    self.by_chain_method
                        .get(&(vid.chain(), method))
                        .is_some_and(|s| s.contains(&vid.base())),
                    "missing by_chain_method entry for {vid}.{method}"
                );
            }
            assert!(
                self.by_base.get(&vid.base()).is_some_and(|s| s.contains(&vid.chain())),
                "missing by_base entry for {vid}"
            );
        }
        assert_eq!(count, self.fact_count, "fact_count out of sync");
        let prepared = self
            .versions
            .iter()
            .filter(|(vid, s)| s.contains(exists_sym(), &MethodApp::new(Args::empty(), vid.base())))
            .count();
        assert_eq!(prepared, self.prepared_versions, "prepared_versions out of sync");
        for (&(chain, method), bases) in self.by_chain_method.iter() {
            for base in bases {
                let vid = Vid::new(*base, chain);
                assert!(
                    self.versions.get(&vid).is_some_and(|s| s.has_method(method)),
                    "stale by_chain_method entry {vid}.{method}"
                );
            }
        }
        for (&base, chains) in self.by_base.iter() {
            for &chain in chains {
                assert!(
                    self.versions.contains_key(&Vid::new(base, chain)),
                    "stale by_base entry {base} {chain}"
                );
            }
        }
        // The key indexes must agree exactly with the stored facts.
        let mut expect_result: FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>> =
            FastHashMap::default();
        let mut expect_arg0: FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>> =
            FastHashMap::default();
        for (&vid, state) in self.versions.iter() {
            for (method, app) in state.iter() {
                if result_indexed(method, app.result, vid.base()) {
                    *expect_result
                        .entry((vid.chain(), method, app.result))
                        .or_default()
                        .entry(vid.base())
                        .or_insert(0) += 1;
                }
                if let Some(&a0) = app.args.as_slice().first() {
                    *expect_arg0
                        .entry((vid.chain(), method, a0))
                        .or_default()
                        .entry(vid.base())
                        .or_insert(0) += 1;
                }
            }
        }
        let flatten =
            |idx: &KeyIndex| -> FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>> {
                idx.map.iter().map(|(k, v)| (*k, v.clone())).collect()
            };
        assert_eq!(flatten(&self.by_result), expect_result, "by_result index out of sync");
        assert_eq!(flatten(&self.by_arg0), expect_arg0, "by_arg0 index out of sync");
        // Every entry must live in the shard its key routes to —
        // otherwise lookups would miss it while iteration still sees it.
        self.versions.check_residency();
        self.by_chain_method.check_residency();
        self.by_base.check_residency();
        self.by_result.map.check_residency();
        self.by_arg0.map.check_residency();
    }
}

impl PartialEq for ObjectBase {
    fn eq(&self, other: &Self) -> bool {
        self.versions == other.versions
    }
}

impl Eq for ObjectBase {}

impl fmt::Display for ObjectBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.facts_sorted() {
            writeln!(f, "{fact}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ObjectBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectBase({} facts)\n{self}", self.fact_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid, sym, UpdateKind};

    fn mk() -> ObjectBase {
        ObjectBase::parse(
            "phil.isa -> empl / pos -> mgr / sal -> 4000.
             bob.isa -> empl / boss -> phil / sal -> 4200.",
        )
        .unwrap()
    }

    /// A broad base plus a batch of edits covering every commit shape:
    /// in-place modification, version creation (object and mod-chain),
    /// deletion, idempotent (pointer-equal) recommit and content-equal
    /// recommit under a fresh `Arc`, spread over many shards.
    fn shard_commit_fixture() -> (ObjectBase, Vec<(Vid, Arc<VersionState>)>) {
        let n = if cfg!(miri) { 40 } else { 120 };
        let mut ob = ObjectBase::new();
        for i in 0..n {
            let v = Vid::object(oid(&format!("o{i}")));
            ob.insert(v, sym("p"), Args::empty(), int(i));
            ob.insert(v, sym("q"), vec![int(1)], int(i * 2));
        }
        ob.ensure_exists();
        let mut edits: Vec<(Vid, Arc<VersionState>)> = Vec::new();
        for i in 0..n {
            let v = Vid::object(oid(&format!("o{i}")));
            let stored = ob.version_shared(v).unwrap();
            match i % 5 {
                0 => {
                    // Modify: new result for p, keep everything else.
                    let mut s = (**stored).clone();
                    s.remove(sym("p"), &MethodApp::new(Args::empty(), int(i)));
                    s.insert(sym("p"), MethodApp::new(Args::empty(), int(i + 1000)));
                    edits.push((v, Arc::new(s)));
                }
                1 => edits.push((v, Arc::new(VersionState::new()))), // delete
                2 => edits.push((v, Arc::clone(stored))),            // ptr-equal recommit
                3 => edits.push((v, Arc::new((**stored).clone()))),  // content-equal recommit
                _ => {
                    // Create a mod-chain version aliasing the stored
                    // state plus the modification — the shape step 2
                    // of T_P produces.
                    let mv = v.apply(UpdateKind::Mod).unwrap();
                    let mut s = (**stored).clone();
                    s.insert(exists_sym(), MethodApp::new(Args::empty(), mv.base()));
                    s.remove(sym("q"), &MethodApp::new(vec![int(1)], int(i * 2)));
                    s.insert(sym("q"), MethodApp::new(vec![int(1)], int(i * 3)));
                    edits.push((mv, Arc::new(s)));
                }
            }
        }
        // Brand-new objects too (no prior version at all).
        for i in 0..n / 4 {
            let v = Vid::object(oid(&format!("fresh{i}")));
            let mut s = VersionState::new();
            s.insert(exists_sym(), MethodApp::new(Args::empty(), v.base()));
            s.insert(sym("p"), MethodApp::new(Args::empty(), int(i)));
            edits.push((v, Arc::new(s)));
        }
        (ob, edits)
    }

    #[test]
    fn batch_commit_matches_serial_across_shards() {
        let (ob, edits) = shard_commit_fixture();
        let mut serial = ob.clone();
        let mut ch_serial = ChangedSince::new();
        for (vid, state) in &edits {
            serial.replace_version_tracked_shared(*vid, Arc::clone(state), &mut ch_serial);
        }
        serial.check_invariants();
        for workers in [1, 2, 4, 16] {
            let mut par = ob.clone();
            let mut ch_par = ChangedSince::new();
            par.replace_versions_tracked_shared(&edits, workers, &mut ch_par);
            assert_eq!(par, serial, "base diverged at workers={workers}");
            assert_eq!(ch_par, ch_serial, "delta diverged at workers={workers}");
            assert_eq!(par.len(), serial.len(), "fact_count diverged at workers={workers}");
            par.check_invariants();
        }
    }

    #[test]
    fn batch_commit_empty_and_noop_edits_across_shards() {
        let ob = mk();
        // Empty edit list: nothing changes, no recording.
        let mut a = ob.clone();
        let mut ch = ChangedSince::new();
        a.replace_versions_tracked_shared(&[], 4, &mut ch);
        assert_eq!(a, ob);
        assert!(ch.keys().next().is_none());
        // Removing a version that never existed is a no-op.
        let ghost = Vid::object(oid("nobody"));
        let edits = vec![
            (ghost, Arc::new(VersionState::new())),
            (ghost.apply(UpdateKind::Del).unwrap(), Arc::new(VersionState::new())),
        ];
        a.replace_versions_tracked_shared(&edits, 4, &mut ch);
        assert_eq!(a, ob);
        assert!(ch.keys().next().is_none());
        a.check_invariants();
    }

    #[test]
    fn parse_and_lookup() {
        let ob = mk();
        assert_eq!(ob.len(), 6);
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![int(4000)]);
        assert_eq!(ob.lookup1(oid("bob"), "boss"), vec![oid("phil")]);
        ob.check_invariants();
    }

    #[test]
    fn insert_is_idempotent() {
        let mut ob = mk();
        assert!(!ob.insert(Vid::object(oid("phil")), sym("sal"), Args::empty(), int(4000)));
        assert_eq!(ob.len(), 6);
        ob.check_invariants();
    }

    #[test]
    fn remove_updates_indexes() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        assert!(ob.remove(phil, sym("sal"), &Args::empty(), int(4000)));
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![]);
        // sal chain-index no longer lists phil.
        let sal_versions: Vec<Vid> = ob.versions_with(Chain::EMPTY, sym("sal")).collect();
        assert_eq!(sal_versions, vec![Vid::object(oid("bob"))]);
        ob.check_invariants();
    }

    #[test]
    fn removing_last_fact_drops_version() {
        let mut ob = ObjectBase::new();
        let v = Vid::object(oid("x"));
        ob.insert(v, sym("p"), Args::empty(), int(1));
        assert!(ob.version(v).is_some());
        ob.remove(v, sym("p"), &Args::empty(), int(1));
        assert!(ob.version(v).is_none());
        assert_eq!(ob.objects().count(), 0);
        ob.check_invariants();
    }

    #[test]
    fn versions_with_chain_index() {
        let mut ob = mk();
        let mod_phil = Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap();
        ob.insert(mod_phil, sym("sal"), Args::empty(), int(4600));
        let mod_chain = mod_phil.chain();
        let found: Vec<Vid> = ob.versions_with(mod_chain, sym("sal")).collect();
        assert_eq!(found, vec![mod_phil]);
        // The initial versions are still found under the empty chain.
        assert_eq!(ob.versions_with(Chain::EMPTY, sym("sal")).count(), 2);
        ob.check_invariants();
    }

    #[test]
    fn ensure_exists_and_v_star() {
        let mut ob = mk();
        ob.ensure_exists();
        let phil = Vid::object(oid("phil"));
        assert!(ob.exists_fact(phil));
        let mod_phil = phil.apply(UpdateKind::Mod).unwrap();
        // mod(phil) does not exist yet: v* falls back to phil.
        assert_eq!(ob.v_star(mod_phil), Some(phil));
        // After creating it, v* is mod(phil) itself.
        ob.insert(mod_phil, exists_sym(), Args::empty(), oid("phil"));
        assert_eq!(ob.v_star(mod_phil), Some(mod_phil));
        // A brand-new object has no v*.
        assert_eq!(ob.v_star(Vid::object(oid("nobody"))), None);
    }

    #[test]
    fn replace_version_overwrites() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut st = VersionState::new();
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(1)));
        ob.replace_version(phil, st);
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![int(1)]);
        assert_eq!(ob.lookup1(oid("phil"), "isa"), vec![]);
        ob.check_invariants();
        // Replacing with an empty state removes the version.
        ob.replace_version(phil, VersionState::new());
        assert!(ob.version(phil).is_none());
        ob.check_invariants();
    }

    #[test]
    fn display_parses_back() {
        let mut ob = mk();
        ob.insert(
            Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap(),
            sym("sal"),
            Args::empty(),
            int(4600),
        );
        let text = ob.to_string();
        let back = ObjectBase::parse(&text).unwrap();
        assert_eq!(ob, back, "text was:\n{text}");
    }

    #[test]
    fn without_exists_strips() {
        let mut ob = mk();
        ob.ensure_exists();
        assert_eq!(ob.without_exists(), mk());
    }

    #[test]
    fn stats_reflect_store() {
        let mut ob = mk();
        ob.insert(
            Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap(),
            sym("sal"),
            Args::empty(),
            int(4600),
        );
        let st = ob.stats();
        assert_eq!(st.objects, 2);
        assert_eq!(st.versions, 3);
        assert_eq!(st.facts, 7);
        assert_eq!(st.max_version_depth, 1);
        assert_eq!(st.distinct_methods, 4); // isa, pos, sal, boss
    }

    #[test]
    fn keyed_index_finds_versions_by_result() {
        let mut ob = mk();
        let empls: Vec<Vid> =
            ob.versions_with_result(Chain::EMPTY, sym("isa"), oid("empl")).collect();
        assert_eq!(empls.len(), 2);
        let mgrs: Vec<Vid> =
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).collect();
        assert_eq!(mgrs, vec![Vid::object(oid("phil"))]);
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("ceo")).count(), 0);
        // Removing the fact removes the entry; re-adding restores it.
        ob.remove(Vid::object(oid("phil")), sym("pos"), &Args::empty(), oid("mgr"));
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).count(), 0);
        ob.insert(Vid::object(oid("bob")), sym("pos"), Args::empty(), oid("mgr"));
        assert_eq!(
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).collect::<Vec<_>>(),
            vec![Vid::object(oid("bob"))]
        );
        ob.check_invariants();
    }

    #[test]
    fn keyed_index_finds_versions_by_first_arg() {
        let mut ob = ObjectBase::new();
        let g = Vid::object(oid("g"));
        ob.insert(g, sym("edge"), Args::new(vec![oid("a"), oid("b")]), int(1));
        ob.insert(g, sym("edge"), Args::new(vec![oid("a"), oid("c")]), int(2));
        ob.insert(Vid::object(oid("h")), sym("edge"), Args::new(vec![oid("b")]), int(3));
        let from_a: Vec<Vid> = ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).collect();
        assert_eq!(from_a, vec![g]);
        // Multiplicity: removing one of g's two `a`-keyed facts keeps g.
        ob.remove(g, sym("edge"), &Args::new(vec![oid("a"), oid("b")]), int(1));
        assert_eq!(ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).count(), 1);
        ob.remove(g, sym("edge"), &Args::new(vec![oid("a"), oid("c")]), int(2));
        assert_eq!(ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).count(), 0);
        ob.check_invariants();
    }

    #[test]
    fn keyed_index_survives_replace_version() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut st = VersionState::new();
        st.insert(sym("pos"), MethodApp::new(Args::empty(), oid("ceo")));
        ob.replace_version(phil, st);
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).count(), 0);
        assert_eq!(
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("ceo")).collect::<Vec<_>>(),
            vec![phil]
        );
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("isa"), oid("empl")).count(), 1);
        ob.check_invariants();
    }

    #[test]
    fn tracked_replace_records_exact_method_diff() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut changed = ChangedSince::new();

        // Same state back: no delta recorded.
        let same = ob.version(phil).unwrap().clone();
        ob.replace_version_tracked(phil, same, &mut changed);
        assert!(changed.is_empty(), "idempotent commit must record nothing");

        // Change sal, drop pos, keep isa.
        let mut st = ob.version(phil).unwrap().clone();
        st.remove(sym("pos"), &MethodApp::new(Args::empty(), oid("mgr")));
        st.remove(sym("sal"), &MethodApp::new(Args::empty(), int(4000)));
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(4600)));
        ob.replace_version_tracked(phil, st, &mut changed);
        assert!(changed.contains(&(Chain::EMPTY, sym("sal"))));
        assert!(changed.contains(&(Chain::EMPTY, sym("pos"))));
        assert!(!changed.contains(&(Chain::EMPTY, sym("isa"))));
        assert!(changed.bases(&(Chain::EMPTY, sym("sal"))).unwrap().contains(&oid("phil")));

        // A brand-new version records all of its methods.
        let mut changed = ChangedSince::new();
        let mod_phil = phil.apply(ruvo_term::UpdateKind::Mod).unwrap();
        let mut st = VersionState::new();
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(5000)));
        ob.replace_version_tracked(mod_phil, st, &mut changed);
        assert!(changed.contains(&(mod_phil.chain(), sym("sal"))));
        ob.check_invariants();
    }

    #[test]
    fn defines_checks_method_presence() {
        let ob = mk();
        assert!(ob.defines(Vid::object(oid("phil")), sym("pos")));
        assert!(!ob.defines(Vid::object(oid("bob")), sym("pos")));
        assert!(!ob.defines(Vid::object(oid("nobody")), sym("pos")));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = ObjectBase::parse("x.p -> 1. x.q -> 2.").unwrap();
        let b = ObjectBase::parse("x.q -> 2. x.p -> 1.").unwrap();
        assert_eq!(a, b);
    }

    // Armed even in `--release` test runs: `invariant_assert!` checks
    // `cfg!(test)` as well as `cfg!(debug_assertions)`.
    #[test]
    #[should_panic(expected = "KeyIndex multiplicity underflow")]
    fn key_index_remove_of_absent_entry_is_flagged() {
        let mut idx = KeyIndex::default();
        idx.add(Chain::EMPTY, sym("p"), int(1), oid("x"));
        // Removing under a key that was never added is an
        // index-consistency bug, not a silent no-op.
        idx.remove(Chain::EMPTY, sym("p"), int(2), oid("x"));
    }

    #[test]
    #[should_panic(expected = "KeyIndex multiplicity underflow")]
    fn key_index_double_remove_is_flagged() {
        let mut idx = KeyIndex::default();
        idx.add(Chain::EMPTY, sym("p"), int(1), oid("x"));
        idx.remove(Chain::EMPTY, sym("p"), int(1), oid("x"));
        idx.remove(Chain::EMPTY, sym("p"), int(1), oid("x"));
    }

    #[test]
    fn clone_is_fully_shared_until_written() {
        let original = mk();
        let mut copy = original.clone();
        assert!(copy.cow_stats(&original).fully_shared());
        assert_eq!(copy.cow_stats(&original).total(), 5 * SHARD_COUNT);
        // A no-op mutation (duplicate insert, miss remove) must not
        // unshare anything.
        copy.insert(Vid::object(oid("phil")), sym("sal"), Args::empty(), int(4000));
        assert!(!copy.remove(Vid::object(oid("phil")), sym("sal"), &Args::empty(), int(9)));
        assert!(copy.cow_stats(&original).fully_shared());
        // A real write dirties at most one shard per index.
        copy.insert(Vid::object(oid("newbie")), sym("sal"), Args::empty(), int(1));
        let stats = copy.cow_stats(&original);
        assert!(!stats.fully_shared());
        assert!(stats.unshared_shards() <= 4, "dirtied {} shards", stats.unshared_shards());
        copy.check_invariants();
        original.check_invariants();
        assert_eq!(original, mk(), "original must be untouched");
    }

    #[test]
    fn ensure_exists_on_prepared_clone_copies_nothing() {
        let mut prepared = mk();
        prepared.ensure_exists();
        let mut copy = prepared.clone();
        copy.ensure_exists();
        assert!(copy.cow_stats(&prepared).fully_shared());
    }

    #[test]
    fn tracked_shared_recommit_short_circuits_on_pointer_identity() {
        let mut ob = mk();
        ob.ensure_exists();
        let phil = Vid::object(oid("phil"));
        let shared = Arc::clone(ob.version_shared(phil).unwrap());
        let mut changed = ChangedSince::new();
        let snapshot = ob.clone();
        ob.replace_version_tracked_shared(phil, shared, &mut changed);
        assert!(changed.is_empty(), "pointer-identical recommit must record nothing");
        assert!(ob.cow_stats(&snapshot).fully_shared(), "recommit must not reindex");
        ob.check_invariants();
    }

    #[test]
    fn noop_commits_dirty_zero_version_shards() {
        let (mut ob, _) = shard_commit_fixture();
        let vids: Vec<Vid> = ob.versions().collect();
        let before = ob.version_generations();
        // Pointer-equal and content-equal recommits of every version,
        // serial and batched: no shard generation may move.
        for &vid in &vids {
            let shared = Arc::clone(ob.version_shared(vid).unwrap());
            let mut ch = ChangedSince::new();
            ob.replace_version_tracked_shared(vid, shared, &mut ch);
            let fresh = Arc::new((**ob.version_shared(vid).unwrap()).clone());
            ob.replace_version_tracked_shared(vid, fresh, &mut ch);
            assert!(ch.is_empty());
        }
        let edits: Vec<(Vid, Arc<VersionState>)> = vids
            .iter()
            .map(|&v| (v, Arc::new((**ob.version_shared(v).unwrap()).clone())))
            .collect();
        let mut ch = ChangedSince::new();
        ob.replace_versions_tracked_shared(&edits, 4, &mut ch);
        assert!(ch.is_empty());
        assert_eq!(ob.version_generations(), before, "no-op commits must dirty zero shards");
        ob.check_invariants();
    }

    #[test]
    fn real_commits_bump_only_routed_shards() {
        let mut ob = mk();
        let before = ob.version_generations();
        let phil = Vid::object(oid("phil"));
        ob.insert(phil, sym("note"), Args::empty(), int(1));
        let after = ob.version_generations();
        let s = vid_shard(phil);
        assert!(after[s] > before[s]);
        for i in 0..SHARD_COUNT {
            if i != s {
                assert_eq!(after[i], before[i], "unrelated shard {i} dirtied");
            }
        }
    }

    #[test]
    fn shard_facts_partition_the_base() {
        let (ob, _) = shard_commit_fixture();
        let mut all: Vec<Fact> = Vec::new();
        for i in 0..SHARD_COUNT {
            for f in ob.shard_facts_sorted(i) {
                assert_eq!(vid_shard(f.vid), i, "fact reported under wrong shard");
                all.push(f);
            }
        }
        all.sort_by(super::fact_cmp);
        assert_eq!(all, ob.facts_sorted());
    }

    #[test]
    fn clear_versions_shard_is_index_consistent() {
        let (mut ob, _) = shard_commit_fixture();
        let victims = ob.versions.shard_at(3).len();
        let before = ob.len();
        ob.clear_versions_shard(3);
        assert!(ob.shard_facts_sorted(3).is_empty());
        assert!(ob.versions().all(|v| vid_shard(v) != 3));
        assert!(victims == 0 || ob.len() < before);
        ob.check_invariants();
    }

    #[test]
    fn from_facts_matches_serial_inserts() {
        let (ob, _) = shard_commit_fixture();
        let facts = ob.facts_sorted();
        for workers in [1, 4] {
            let rebuilt = ObjectBase::from_facts(facts.clone(), workers);
            assert_eq!(rebuilt, ob, "workers={workers}");
            assert_eq!(rebuilt.len(), ob.len());
            rebuilt.check_invariants();
        }
        // Duplicate facts collapse exactly like ObjectBase::insert.
        let mut doubled = facts.clone();
        doubled.extend(facts);
        let rebuilt = ObjectBase::from_facts(doubled, 4);
        assert_eq!(rebuilt, ob);
        assert_eq!(rebuilt.len(), ob.len());
    }

    #[test]
    fn replace_version_shared_adopts_foreign_state() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let bob = Vid::object(oid("bob"));
        // Alias bob's state under a new version of phil.
        let state = Arc::clone(ob.version_shared(bob).unwrap());
        let mod_phil = phil.apply(UpdateKind::Mod).unwrap();
        ob.replace_version_shared(mod_phil, state);
        assert_eq!(ob.lookup1(oid("bob"), "boss"), vec![oid("phil")]);
        assert!(ob.contains(mod_phil, sym("boss"), &[], oid("phil")));
        ob.check_invariants();
    }
}
