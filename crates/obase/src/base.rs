//! The object base: a set of ground version-terms with join indexes.

use std::fmt;
use std::sync::Arc;

use ruvo_lang::{parse_facts, ParseError};
use ruvo_term::{Chain, Const, FastHashMap, FastHashSet, Symbol, Vid};

use crate::{exists_sym, Args, ChangedSince, MethodApp, ObStats, VersionState};

/// One ground version-term `vid.m@args -> r`, as stored.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fact {
    /// The version carrying the method-application.
    pub vid: Vid,
    /// Method name.
    pub method: Symbol,
    /// Ground arguments.
    pub args: Args,
    /// Ground result.
    pub result: Const,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let method = ruvo_lang::pretty::symbol_str(self.method);
        write!(f, "{}.{}", self.vid, method)?;
        if !self.args.is_empty() {
            write!(f, " @ {}", self.args)?;
        }
        write!(f, " -> {} .", ruvo_lang::pretty::const_str(self.result))
    }
}

/// The method index: `(chain, method, key) → {base → multiplicity}`,
/// where `key` is a fact's result value or its first argument.
///
/// This is the scan accelerator behind
/// [`ObjectBase::versions_with_result`] /
/// [`ObjectBase::versions_with_arg0`]: a body literal like
/// `E.isa -> empl` (base unbound, result bound) enumerates exactly the
/// versions whose `isa` set contains `empl` instead of every version
/// defining `isa`. Multiplicities are needed because several facts of
/// one version can share a key (same result under different
/// arguments, and vice versa).
#[derive(Clone, Default)]
struct KeyIndex {
    map: FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>>,
}

impl KeyIndex {
    fn add(&mut self, chain: Chain, method: Symbol, key: Const, base: Const) {
        *self.map.entry((chain, method, key)).or_default().entry(base).or_insert(0) += 1;
    }

    fn remove(&mut self, chain: Chain, method: Symbol, key: Const, base: Const) {
        let Some(bases) = self.map.get_mut(&(chain, method, key)) else { return };
        let Some(count) = bases.get_mut(&base) else { return };
        *count -= 1;
        if *count == 0 {
            bases.remove(&base);
            if bases.is_empty() {
                self.map.remove(&(chain, method, key));
            }
        }
    }

    fn bases(&self, chain: Chain, method: Symbol, key: Const) -> impl Iterator<Item = Const> + '_ {
        self.map.get(&(chain, method, key)).into_iter().flatten().map(|(&b, _)| b)
    }
}

/// A set of ground version-terms, indexed for bottom-up evaluation.
///
/// See the crate docs for the index structure. All mutating operations
/// keep the indexes consistent; `debug_assert`-level invariants are
/// checked in the test suite via [`ObjectBase::check_invariants`].
///
/// ## Copy-on-write clones
///
/// Version states are reference-counted: [`Clone`] copies the index
/// maps but *shares* every per-version fact set, and a subsequent
/// mutation copies only the one state it touches
/// ([`Arc::make_mut`]). Cloning is therefore O(#versions) regardless
/// of how many facts the base holds, which is what makes engine runs
/// (which evaluate on a working copy), session savepoints, and
/// [`crate::Snapshot`] read views cheap.
#[derive(Clone, Default)]
pub struct ObjectBase {
    versions: FastHashMap<Vid, Arc<VersionState>>,
    /// `(chain, method) → bases`: which objects have a version with this
    /// chain defining this method.
    by_chain_method: FastHashMap<(Chain, Symbol), FastHashSet<Const>>,
    /// `base → chains`: every version of an object.
    by_base: FastHashMap<Const, FastHashSet<Chain>>,
    /// `(chain, method, result) → bases`: the value-keyed scan index.
    by_result: KeyIndex,
    /// `(chain, method, first-arg) → bases`: ditto for argument keys.
    by_arg0: KeyIndex,
    fact_count: usize,
}

impl ObjectBase {
    /// An empty object base.
    pub fn new() -> ObjectBase {
        ObjectBase::default()
    }

    /// Parse the textual format (see [`ruvo_lang::parse_facts`]).
    ///
    /// Does *not* add `exists` facts; the engine does that when an
    /// update-program is run (§3's preparation step).
    pub fn parse(src: &str) -> Result<ObjectBase, ParseError> {
        let mut ob = ObjectBase::new();
        for f in parse_facts(src)? {
            ob.insert(f.vid, f.method, Args::new(f.args), f.result);
        }
        Ok(ob)
    }

    // ----- mutation --------------------------------------------------

    /// Insert one ground version-term. Returns true if it was new.
    pub fn insert(
        &mut self,
        vid: Vid,
        method: Symbol,
        args: impl Into<Args>,
        result: Const,
    ) -> bool {
        let app = MethodApp::new(args, result);
        let state = Arc::make_mut(self.versions.entry(vid).or_default());
        let was_empty_method = !state.has_method(method);
        let arg0 = app.args.as_slice().first().copied();
        let added = state.insert(method, app);
        if added {
            self.fact_count += 1;
            if was_empty_method {
                self.by_chain_method.entry((vid.chain(), method)).or_default().insert(vid.base());
            }
            self.by_base.entry(vid.base()).or_default().insert(vid.chain());
            self.by_result.add(vid.chain(), method, result, vid.base());
            if let Some(a0) = arg0 {
                self.by_arg0.add(vid.chain(), method, a0, vid.base());
            }
        }
        added
    }

    /// Remove one ground version-term. Returns true if it was present.
    pub fn remove(&mut self, vid: Vid, method: Symbol, args: &Args, result: Const) -> bool {
        let (removed, method_gone, version_gone) = {
            let Some(state) = self.versions.get_mut(&vid) else { return false };
            let app = MethodApp { args: args.clone(), result };
            // Peek before copying: a miss must not CoW-copy the state.
            if !state.contains(method, &app) {
                return false;
            }
            let state = Arc::make_mut(state);
            let removed = state.remove(method, &app);
            (removed, removed && !state.has_method(method), removed && state.is_empty())
        };
        if removed {
            self.fact_count -= 1;
            self.by_result.remove(vid.chain(), method, result, vid.base());
            if let Some(&a0) = args.as_slice().first() {
                self.by_arg0.remove(vid.chain(), method, a0, vid.base());
            }
            if method_gone {
                self.unindex_method(vid, method);
            }
            if version_gone {
                self.drop_version_entry(vid);
            }
        }
        removed
    }

    /// Remove a whole version and all its facts; returns the old state
    /// (unsharing it first if a clone still references it).
    pub fn remove_version(&mut self, vid: Vid) -> Option<VersionState> {
        let state = self.discard_version(vid)?;
        Some(Arc::try_unwrap(state).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Remove a whole version, unindexing its facts, without forcing
    /// the state out of its (possibly shared) allocation.
    fn discard_version(&mut self, vid: Vid) -> Option<Arc<VersionState>> {
        let state = self.versions.remove(&vid)?;
        self.fact_count -= state.len();
        for method in state.methods() {
            self.unindex_method(vid, method);
        }
        for (method, app) in state.iter() {
            self.by_result.remove(vid.chain(), method, app.result, vid.base());
            if let Some(&a0) = app.args.as_slice().first() {
                self.by_arg0.remove(vid.chain(), method, a0, vid.base());
            }
        }
        self.unindex_version(vid);
        Some(state)
    }

    /// Install `state` as the (complete) new state of `vid`, replacing
    /// whatever was there — the engine's per-stratum *overwrite* step
    /// (DESIGN.md D1). Empty states simply remove the version.
    pub fn replace_version(&mut self, vid: Vid, state: VersionState) {
        self.discard_version(vid);
        if state.is_empty() {
            return;
        }
        self.fact_count += state.len();
        for method in state.methods() {
            self.by_chain_method.entry((vid.chain(), method)).or_default().insert(vid.base());
        }
        for (method, app) in state.iter() {
            self.by_result.add(vid.chain(), method, app.result, vid.base());
            if let Some(&a0) = app.args.as_slice().first() {
                self.by_arg0.add(vid.chain(), method, a0, vid.base());
            }
        }
        self.by_base.entry(vid.base()).or_default().insert(vid.chain());
        self.versions.insert(vid, Arc::new(state));
    }

    /// [`ObjectBase::replace_version`] that also records the commit's
    /// semantic delta into `changed`: every method whose application
    /// set differs between the old and the new state of `vid` (all of
    /// the new state's methods when the version is new). Idempotent
    /// re-commits therefore record nothing — the property the
    /// semi-naive evaluator's seeding relies on.
    pub fn replace_version_tracked(
        &mut self,
        vid: Vid,
        state: VersionState,
        changed: &mut ChangedSince,
    ) {
        let methods = match self.versions.get(&vid) {
            Some(old) => old.changed_methods(&state),
            None => state.methods().collect(),
        };
        for method in methods {
            changed.record(vid.chain(), method, vid.base());
        }
        self.replace_version(vid, state);
    }

    fn unindex_method(&mut self, vid: Vid, method: Symbol) {
        if let Some(set) = self.by_chain_method.get_mut(&(vid.chain(), method)) {
            set.remove(&vid.base());
            if set.is_empty() {
                self.by_chain_method.remove(&(vid.chain(), method));
            }
        }
    }

    fn drop_version_entry(&mut self, vid: Vid) {
        self.versions.remove(&vid);
        self.unindex_version(vid);
    }

    fn unindex_version(&mut self, vid: Vid) {
        if let Some(chains) = self.by_base.get_mut(&vid.base()) {
            chains.remove(&vid.chain());
            if chains.is_empty() {
                self.by_base.remove(&vid.base());
            }
        }
    }

    /// §3: define the system method for every version currently present
    /// (`v.exists -> base`). For a freshly loaded object base this is
    /// exactly the paper's "for each object o in the given object base
    /// ob there is defined a method exists: o.exists -> o".
    pub fn ensure_exists(&mut self) {
        let exists = exists_sym();
        let vids: Vec<Vid> = self.versions.keys().copied().collect();
        for vid in vids {
            self.insert(vid, exists, Args::empty(), vid.base());
        }
    }

    // ----- queries ---------------------------------------------------

    /// The state of a version, if it has any facts.
    pub fn version(&self, vid: Vid) -> Option<&VersionState> {
        self.versions.get(&vid).map(Arc::as_ref)
    }

    /// Membership of one ground version-term.
    pub fn contains(&self, vid: Vid, method: Symbol, args: &[Const], result: Const) -> bool {
        self.versions
            .get(&vid)
            .is_some_and(|s| s.contains(method, &MethodApp { args: Args::from(args), result }))
    }

    /// True if `vid.exists -> base(vid)` holds — the paper's criterion
    /// for "the version exists" used by `v*` and by step 2 of `T_P`.
    pub fn exists_fact(&self, vid: Vid) -> bool {
        self.contains(vid, exists_sym(), &[], vid.base())
    }

    /// §3's `v*`: "the largest subterm of `v`, such that
    /// `v*.exists -> o ∈ I`" — the deepest existing version at or below
    /// `v`. `None` when not even the bare object exists (a brand-new
    /// object being created by an `ins`, DESIGN.md D3).
    pub fn v_star(&self, vid: Vid) -> Option<Vid> {
        let mut candidates: Vec<Vid> = vid.subterms().collect();
        while let Some(v) = candidates.pop() {
            if self.exists_fact(v) {
                return Some(v);
            }
        }
        None
    }

    /// Results of `method@args` on `vid`.
    pub fn results<'a>(
        &'a self,
        vid: Vid,
        method: Symbol,
        args: &'a [Const],
    ) -> impl Iterator<Item = Const> + 'a {
        self.versions.get(&vid).into_iter().flat_map(move |s| s.results(method, args))
    }

    /// All applications of `method` on `vid`.
    pub fn apps(&self, vid: Vid, method: Symbol) -> impl Iterator<Item = &MethodApp> {
        self.versions.get(&vid).into_iter().flat_map(move |s| s.apps(method))
    }

    /// The versions with update-chain `chain` that define `method` —
    /// the scan index for a body literal with an unbound base variable.
    pub fn versions_with(&self, chain: Chain, method: Symbol) -> impl Iterator<Item = Vid> + '_ {
        self.by_chain_method
            .get(&(chain, method))
            .into_iter()
            .flatten()
            .map(move |&base| Vid::new(base, chain))
    }

    /// The versions with update-chain `chain` that have at least one
    /// `method` application whose **result** is `result` — the indexed
    /// scan for a body literal whose result position is bound (e.g.
    /// `E.isa -> empl` with `E` unbound enumerates only the versions
    /// that are `empl`s, not every version defining `isa`).
    pub fn versions_with_result(
        &self,
        chain: Chain,
        method: Symbol,
        result: Const,
    ) -> impl Iterator<Item = Vid> + '_ {
        self.by_result.bases(chain, method, result).map(move |base| Vid::new(base, chain))
    }

    /// The versions with update-chain `chain` that have at least one
    /// `method` application whose **first argument** is `arg0` (the
    /// indexed scan for a bound first argument).
    pub fn versions_with_arg0(
        &self,
        chain: Chain,
        method: Symbol,
        arg0: Const,
    ) -> impl Iterator<Item = Vid> + '_ {
        self.by_arg0.bases(chain, method, arg0).map(move |base| Vid::new(base, chain))
    }

    /// True if `vid` has at least one application of `method`.
    pub fn defines(&self, vid: Vid, method: Symbol) -> bool {
        self.versions.get(&vid).is_some_and(|s| s.has_method(method))
    }

    /// Every version of an object, as VIDs.
    pub fn versions_of(&self, base: Const) -> impl Iterator<Item = Vid> + '_ {
        self.by_base.get(&base).into_iter().flatten().map(move |&chain| Vid::new(base, chain))
    }

    /// Every object (base OID) with at least one version in the store.
    pub fn objects(&self) -> impl Iterator<Item = Const> + '_ {
        self.by_base.keys().copied()
    }

    /// Every version in the store.
    pub fn versions(&self) -> impl Iterator<Item = Vid> + '_ {
        self.versions.keys().copied()
    }

    /// All facts (unordered).
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.versions.iter().flat_map(|(&vid, state)| {
            state.iter().map(move |(method, app)| Fact {
                vid,
                method,
                args: app.args.clone(),
                result: app.result,
            })
        })
    }

    /// All facts, sorted for deterministic output.
    pub fn facts_sorted(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.iter().collect();
        v.sort_by(|a, b| {
            (a.vid, a.method.as_str(), &a.args, a.result).cmp(&(
                b.vid,
                b.method.as_str(),
                &b.args,
                b.result,
            ))
        });
        v
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.fact_count
    }

    /// True if the store has no facts.
    pub fn is_empty(&self) -> bool {
        self.fact_count == 0
    }

    /// Convenience for tests and examples: the sorted results of a
    /// 0-ary method on the *initial* version of `base`.
    pub fn lookup1(&self, base: Const, method: &str) -> Vec<Const> {
        let mut v: Vec<Const> =
            self.results(Vid::object(base), ruvo_term::sym(method), &[]).collect();
        v.sort();
        v
    }

    /// A copy without any `exists` facts (for comparing evaluation
    /// results against hand-written expectations).
    pub fn without_exists(&self) -> ObjectBase {
        let exists = exists_sym();
        let mut out = ObjectBase::new();
        for f in self.iter() {
            if f.method != exists {
                out.insert(f.vid, f.method, f.args, f.result);
            }
        }
        out
    }

    /// Summary statistics.
    pub fn stats(&self) -> ObStats {
        let mut methods: FastHashSet<Symbol> = FastHashSet::default();
        let mut max_depth = 0;
        for (vid, state) in &self.versions {
            max_depth = max_depth.max(vid.depth());
            methods.extend(state.methods());
        }
        ObStats {
            objects: self.by_base.len(),
            versions: self.versions.len(),
            facts: self.fact_count,
            distinct_methods: methods.len(),
            max_version_depth: max_depth,
        }
    }

    /// Exhaustive index consistency check (test helper; O(n)).
    pub fn check_invariants(&self) {
        let mut count = 0;
        for (vid, state) in &self.versions {
            assert!(!state.is_empty(), "empty version state for {vid}");
            count += state.len();
            for method in state.methods() {
                assert!(
                    self.by_chain_method
                        .get(&(vid.chain(), method))
                        .is_some_and(|s| s.contains(&vid.base())),
                    "missing by_chain_method entry for {vid}.{method}"
                );
            }
            assert!(
                self.by_base.get(&vid.base()).is_some_and(|s| s.contains(&vid.chain())),
                "missing by_base entry for {vid}"
            );
        }
        assert_eq!(count, self.fact_count, "fact_count out of sync");
        for (&(chain, method), bases) in &self.by_chain_method {
            for base in bases {
                let vid = Vid::new(*base, chain);
                assert!(
                    self.versions.get(&vid).is_some_and(|s| s.has_method(method)),
                    "stale by_chain_method entry {vid}.{method}"
                );
            }
        }
        for (&base, chains) in &self.by_base {
            for &chain in chains {
                assert!(
                    self.versions.contains_key(&Vid::new(base, chain)),
                    "stale by_base entry {base} {chain}"
                );
            }
        }
        // The key indexes must agree exactly with the stored facts.
        let mut expect_result: FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>> =
            FastHashMap::default();
        let mut expect_arg0: FastHashMap<(Chain, Symbol, Const), FastHashMap<Const, u32>> =
            FastHashMap::default();
        for (&vid, state) in &self.versions {
            for (method, app) in state.iter() {
                *expect_result
                    .entry((vid.chain(), method, app.result))
                    .or_default()
                    .entry(vid.base())
                    .or_insert(0) += 1;
                if let Some(&a0) = app.args.as_slice().first() {
                    *expect_arg0
                        .entry((vid.chain(), method, a0))
                        .or_default()
                        .entry(vid.base())
                        .or_insert(0) += 1;
                }
            }
        }
        assert_eq!(self.by_result.map, expect_result, "by_result index out of sync");
        assert_eq!(self.by_arg0.map, expect_arg0, "by_arg0 index out of sync");
    }
}

impl PartialEq for ObjectBase {
    fn eq(&self, other: &Self) -> bool {
        self.versions == other.versions
    }
}

impl Eq for ObjectBase {}

impl fmt::Display for ObjectBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fact in self.facts_sorted() {
            writeln!(f, "{fact}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ObjectBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectBase({} facts)\n{self}", self.fact_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid, sym, UpdateKind};

    fn mk() -> ObjectBase {
        ObjectBase::parse(
            "phil.isa -> empl / pos -> mgr / sal -> 4000.
             bob.isa -> empl / boss -> phil / sal -> 4200.",
        )
        .unwrap()
    }

    #[test]
    fn parse_and_lookup() {
        let ob = mk();
        assert_eq!(ob.len(), 6);
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![int(4000)]);
        assert_eq!(ob.lookup1(oid("bob"), "boss"), vec![oid("phil")]);
        ob.check_invariants();
    }

    #[test]
    fn insert_is_idempotent() {
        let mut ob = mk();
        assert!(!ob.insert(Vid::object(oid("phil")), sym("sal"), Args::empty(), int(4000)));
        assert_eq!(ob.len(), 6);
        ob.check_invariants();
    }

    #[test]
    fn remove_updates_indexes() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        assert!(ob.remove(phil, sym("sal"), &Args::empty(), int(4000)));
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![]);
        // sal chain-index no longer lists phil.
        let sal_versions: Vec<Vid> = ob.versions_with(Chain::EMPTY, sym("sal")).collect();
        assert_eq!(sal_versions, vec![Vid::object(oid("bob"))]);
        ob.check_invariants();
    }

    #[test]
    fn removing_last_fact_drops_version() {
        let mut ob = ObjectBase::new();
        let v = Vid::object(oid("x"));
        ob.insert(v, sym("p"), Args::empty(), int(1));
        assert!(ob.version(v).is_some());
        ob.remove(v, sym("p"), &Args::empty(), int(1));
        assert!(ob.version(v).is_none());
        assert_eq!(ob.objects().count(), 0);
        ob.check_invariants();
    }

    #[test]
    fn versions_with_chain_index() {
        let mut ob = mk();
        let mod_phil = Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap();
        ob.insert(mod_phil, sym("sal"), Args::empty(), int(4600));
        let mod_chain = mod_phil.chain();
        let found: Vec<Vid> = ob.versions_with(mod_chain, sym("sal")).collect();
        assert_eq!(found, vec![mod_phil]);
        // The initial versions are still found under the empty chain.
        assert_eq!(ob.versions_with(Chain::EMPTY, sym("sal")).count(), 2);
        ob.check_invariants();
    }

    #[test]
    fn ensure_exists_and_v_star() {
        let mut ob = mk();
        ob.ensure_exists();
        let phil = Vid::object(oid("phil"));
        assert!(ob.exists_fact(phil));
        let mod_phil = phil.apply(UpdateKind::Mod).unwrap();
        // mod(phil) does not exist yet: v* falls back to phil.
        assert_eq!(ob.v_star(mod_phil), Some(phil));
        // After creating it, v* is mod(phil) itself.
        ob.insert(mod_phil, exists_sym(), Args::empty(), oid("phil"));
        assert_eq!(ob.v_star(mod_phil), Some(mod_phil));
        // A brand-new object has no v*.
        assert_eq!(ob.v_star(Vid::object(oid("nobody"))), None);
    }

    #[test]
    fn replace_version_overwrites() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut st = VersionState::new();
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(1)));
        ob.replace_version(phil, st);
        assert_eq!(ob.lookup1(oid("phil"), "sal"), vec![int(1)]);
        assert_eq!(ob.lookup1(oid("phil"), "isa"), vec![]);
        ob.check_invariants();
        // Replacing with an empty state removes the version.
        ob.replace_version(phil, VersionState::new());
        assert!(ob.version(phil).is_none());
        ob.check_invariants();
    }

    #[test]
    fn display_parses_back() {
        let mut ob = mk();
        ob.insert(
            Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap(),
            sym("sal"),
            Args::empty(),
            int(4600),
        );
        let text = ob.to_string();
        let back = ObjectBase::parse(&text).unwrap();
        assert_eq!(ob, back, "text was:\n{text}");
    }

    #[test]
    fn without_exists_strips() {
        let mut ob = mk();
        ob.ensure_exists();
        assert_eq!(ob.without_exists(), mk());
    }

    #[test]
    fn stats_reflect_store() {
        let mut ob = mk();
        ob.insert(
            Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap(),
            sym("sal"),
            Args::empty(),
            int(4600),
        );
        let st = ob.stats();
        assert_eq!(st.objects, 2);
        assert_eq!(st.versions, 3);
        assert_eq!(st.facts, 7);
        assert_eq!(st.max_version_depth, 1);
        assert_eq!(st.distinct_methods, 4); // isa, pos, sal, boss
    }

    #[test]
    fn keyed_index_finds_versions_by_result() {
        let mut ob = mk();
        let empls: Vec<Vid> =
            ob.versions_with_result(Chain::EMPTY, sym("isa"), oid("empl")).collect();
        assert_eq!(empls.len(), 2);
        let mgrs: Vec<Vid> =
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).collect();
        assert_eq!(mgrs, vec![Vid::object(oid("phil"))]);
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("ceo")).count(), 0);
        // Removing the fact removes the entry; re-adding restores it.
        ob.remove(Vid::object(oid("phil")), sym("pos"), &Args::empty(), oid("mgr"));
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).count(), 0);
        ob.insert(Vid::object(oid("bob")), sym("pos"), Args::empty(), oid("mgr"));
        assert_eq!(
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).collect::<Vec<_>>(),
            vec![Vid::object(oid("bob"))]
        );
        ob.check_invariants();
    }

    #[test]
    fn keyed_index_finds_versions_by_first_arg() {
        let mut ob = ObjectBase::new();
        let g = Vid::object(oid("g"));
        ob.insert(g, sym("edge"), Args::new(vec![oid("a"), oid("b")]), int(1));
        ob.insert(g, sym("edge"), Args::new(vec![oid("a"), oid("c")]), int(2));
        ob.insert(Vid::object(oid("h")), sym("edge"), Args::new(vec![oid("b")]), int(3));
        let from_a: Vec<Vid> = ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).collect();
        assert_eq!(from_a, vec![g]);
        // Multiplicity: removing one of g's two `a`-keyed facts keeps g.
        ob.remove(g, sym("edge"), &Args::new(vec![oid("a"), oid("b")]), int(1));
        assert_eq!(ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).count(), 1);
        ob.remove(g, sym("edge"), &Args::new(vec![oid("a"), oid("c")]), int(2));
        assert_eq!(ob.versions_with_arg0(Chain::EMPTY, sym("edge"), oid("a")).count(), 0);
        ob.check_invariants();
    }

    #[test]
    fn keyed_index_survives_replace_version() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut st = VersionState::new();
        st.insert(sym("pos"), MethodApp::new(Args::empty(), oid("ceo")));
        ob.replace_version(phil, st);
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("mgr")).count(), 0);
        assert_eq!(
            ob.versions_with_result(Chain::EMPTY, sym("pos"), oid("ceo")).collect::<Vec<_>>(),
            vec![phil]
        );
        assert_eq!(ob.versions_with_result(Chain::EMPTY, sym("isa"), oid("empl")).count(), 1);
        ob.check_invariants();
    }

    #[test]
    fn tracked_replace_records_exact_method_diff() {
        let mut ob = mk();
        let phil = Vid::object(oid("phil"));
        let mut changed = ChangedSince::new();

        // Same state back: no delta recorded.
        let same = ob.version(phil).unwrap().clone();
        ob.replace_version_tracked(phil, same, &mut changed);
        assert!(changed.is_empty(), "idempotent commit must record nothing");

        // Change sal, drop pos, keep isa.
        let mut st = ob.version(phil).unwrap().clone();
        st.remove(sym("pos"), &MethodApp::new(Args::empty(), oid("mgr")));
        st.remove(sym("sal"), &MethodApp::new(Args::empty(), int(4000)));
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(4600)));
        ob.replace_version_tracked(phil, st, &mut changed);
        assert!(changed.contains(&(Chain::EMPTY, sym("sal"))));
        assert!(changed.contains(&(Chain::EMPTY, sym("pos"))));
        assert!(!changed.contains(&(Chain::EMPTY, sym("isa"))));
        assert!(changed.bases(&(Chain::EMPTY, sym("sal"))).unwrap().contains(&oid("phil")));

        // A brand-new version records all of its methods.
        let mut changed = ChangedSince::new();
        let mod_phil = phil.apply(ruvo_term::UpdateKind::Mod).unwrap();
        let mut st = VersionState::new();
        st.insert(sym("sal"), MethodApp::new(Args::empty(), int(5000)));
        ob.replace_version_tracked(mod_phil, st, &mut changed);
        assert!(changed.contains(&(mod_phil.chain(), sym("sal"))));
        ob.check_invariants();
    }

    #[test]
    fn defines_checks_method_presence() {
        let ob = mk();
        assert!(ob.defines(Vid::object(oid("phil")), sym("pos")));
        assert!(!ob.defines(Vid::object(oid("bob")), sym("pos")));
        assert!(!ob.defines(Vid::object(oid("nobody")), sym("pos")));
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = ObjectBase::parse("x.p -> 1. x.q -> 2.").unwrap();
        let b = ObjectBase::parse("x.q -> 2. x.p -> 1.").unwrap();
        assert_eq!(a, b);
    }
}
