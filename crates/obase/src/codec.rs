//! Shared binary encode/decode primitives for ruvo's storage formats.
//!
//! Both on-disk formats — the binary snapshot ([`crate::snapshot`])
//! and the write-ahead log (`ruvo_core::store`) — are built from the
//! same small vocabulary:
//!
//! * a per-file [`SymbolTable`] interning symbols once (`u32` indices
//!   instead of repeated strings),
//! * tagged [`Const`] encoding ([`put_const`] / [`Reader::constant`]),
//! * a length-checked [`Reader`] that turns every malformed input into
//!   a typed [`DecodeError`] instead of a panic,
//! * the [`checksum`] everything is verified against, and
//! * length-prefixed, checksummed *frames* ([`append_frame`] /
//!   [`Frames`]) for append-only record streams, where a torn tail
//!   must be detectable and cleanly separable from the valid prefix.
//!
//! All integers are little-endian.

use bytes::{Buf, BufMut, BytesMut};
use ruvo_term::{Const, FastHashMap, Interner, OrderedF64, Symbol};
use std::hash::Hasher;

/// Why a binary input could not be decoded.
///
/// Shared by every consumer of this module; [`crate::SnapshotError`]
/// is an alias of this type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported by this build (most likely
    /// the file was written by a newer ruvo).
    BadVersion(u16),
    /// The byte stream ended prematurely.
    Truncated,
    /// A tag/length field had an invalid value.
    Corrupt(&'static str),
    /// Checksum mismatch: the data was damaged.
    ChecksumMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a ruvo file (bad magic)"),
            DecodeError::BadVersion(v) => {
                write!(f, "unsupported format version {v} (written by a newer ruvo?)")
            }
            DecodeError::Truncated => write!(f, "input is truncated"),
            DecodeError::Corrupt(what) => write!(f, "input is corrupt: {what}"),
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch (data was damaged)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The checksum every storage format appends: FxHash over the covered
/// bytes. Not cryptographic — it detects corruption, not tampering.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = ruvo_term::FastHasher::default();
    h.write(bytes);
    h.finish()
}

/// A file-local symbol table: interns every symbol once per file, so
/// occurrences encode as `u32` indices and decoded files are stable
/// across processes with differently-populated global interners.
#[derive(Debug, Default)]
pub struct SymbolTable {
    indices: FastHashMap<Symbol, u32>,
    ordered: Vec<Symbol>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// The index of `sym`, assigning the next free one on first use.
    pub fn intern(&mut self, sym: Symbol) -> u32 {
        *self.indices.entry(sym).or_insert_with(|| {
            let idx = u32::try_from(self.ordered.len()).expect("symbol table overflow");
            self.ordered.push(sym);
            idx
        })
    }

    /// Symbols in index order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.ordered
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// True if no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Append the table (count, then per symbol length + UTF-8 bytes).
    pub fn encode_into(&self, out: &mut BytesMut) {
        out.put_u32_le(self.ordered.len() as u32);
        for &sym in &self.ordered {
            let text = sym.as_str().as_bytes();
            out.put_u32_le(text.len() as u32);
            out.put_slice(text);
        }
    }
}

/// Decode a table written by [`SymbolTable::encode_into`], interning
/// into the global interner.
pub fn read_symbol_table(r: &mut Reader<'_>) -> Result<Vec<Symbol>, DecodeError> {
    let nsyms = r.u32()? as usize;
    let interner = Interner::global();
    let mut symbols = Vec::with_capacity(nsyms.min(r.remaining()));
    for _ in 0..nsyms {
        let len = r.u32()? as usize;
        let text =
            std::str::from_utf8(r.bytes(len)?).map_err(|_| DecodeError::Corrupt("symbol utf-8"))?;
        symbols.push(interner.intern(text));
    }
    Ok(symbols)
}

/// Append a tagged constant: `0` symbol (`u32` table index), `1` int
/// (`i64`), `2` num (`f64` bits).
pub fn put_const(buf: &mut BytesMut, c: Const, table: &mut SymbolTable) {
    match c {
        Const::Sym(s) => {
            buf.put_u8(0);
            buf.put_u32_le(table.intern(s));
        }
        Const::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(i);
        }
        Const::Num(n) => {
            buf.put_u8(2);
            buf.put_f64_le(n.get());
        }
    }
}

/// A length-checked cursor over a byte slice: every read either
/// succeeds or reports [`DecodeError::Truncated`] — malformed input
/// can never cause a panic or an out-of-bounds read.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.need(n)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a constant written by [`put_const`], resolving symbol
    /// indices against `symbols`.
    pub fn constant(&mut self, symbols: &[Symbol]) -> Result<Const, DecodeError> {
        match self.u8()? {
            0 => {
                let idx = self.u32()? as usize;
                let sym = symbols.get(idx).copied().ok_or(DecodeError::Corrupt("symbol index"))?;
                Ok(Const::Sym(sym))
            }
            1 => Ok(Const::Int(self.i64()?)),
            2 => OrderedF64::new(self.f64()?)
                .map(Const::Num)
                .ok_or(DecodeError::Corrupt("NaN constant")),
            _ => Err(DecodeError::Corrupt("constant tag")),
        }
    }
}

// ----- record frames -------------------------------------------------

/// Bytes a frame adds around its payload (`u32` length prefix plus
/// `u64` trailing checksum).
pub const FRAME_OVERHEAD: usize = 4 + 8;

/// Append one frame: `[len: u32][payload][checksum: u64]`. The
/// checksum covers the length prefix *and* the payload, so a damaged
/// length field is detected rather than trusted.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let start = out.len();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum(&out[start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

/// Iterate the frames of an append-only stream written by
/// [`append_frame`].
///
/// Yields each valid payload in order. The first damaged frame —
/// truncated mid-record or failing its checksum — yields one `Err`
/// and ends the iteration; [`Frames::good_offset`] then reports how
/// many bytes of valid prefix precede the damage, which is exactly
/// the offset a writer should truncate to before appending again.
pub struct Frames<'a> {
    buf: &'a [u8],
    pos: usize,
    done: bool,
}

impl<'a> Frames<'a> {
    /// Iterate over `buf`.
    pub fn new(buf: &'a [u8]) -> Frames<'a> {
        Frames { buf, pos: 0, done: false }
    }

    /// Byte offset just past the last frame that decoded cleanly.
    pub fn good_offset(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for Frames<'a> {
    type Item = Result<&'a [u8], DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            self.done = true;
            return None;
        }
        self.done = true; // cleared again only on a fully valid frame
        if rest.len() < 4 {
            return Some(Err(DecodeError::Truncated));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let total = match len.checked_add(FRAME_OVERHEAD) {
            Some(t) if t <= rest.len() => t,
            _ => return Some(Err(DecodeError::Truncated)),
        };
        let stored = u64::from_le_bytes(rest[total - 8..total].try_into().expect("8 bytes"));
        if checksum(&rest[..4 + len]) != stored {
            return Some(Err(DecodeError::ChecksumMismatch));
        }
        self.pos += total;
        self.done = false;
        Some(Ok(&rest[4..4 + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, num, sym};

    #[test]
    fn const_roundtrip() {
        let mut table = SymbolTable::new();
        let mut buf = BytesMut::new();
        let values = [Const::Sym(sym("alpha")), int(-7), num(2.5), Const::Sym(sym("alpha"))];
        for &v in &values {
            put_const(&mut buf, v, &mut table);
        }
        assert_eq!(table.len(), 1, "repeated symbols intern once");
        let mut header = BytesMut::new();
        table.encode_into(&mut header);
        header.put_slice(&buf);

        let mut r = Reader::new(&header);
        let symbols = read_symbol_table(&mut r).unwrap();
        for &v in &values {
            assert_eq!(r.constant(&symbols).unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn reader_never_reads_out_of_bounds() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), Err(DecodeError::Truncated));
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert_eq!(r.bytes(2), Err(DecodeError::Truncated));
        assert_eq!(r.bytes(1).unwrap(), &[3]);
        assert_eq!(r.u8(), Err(DecodeError::Truncated));
    }

    #[test]
    fn frames_roundtrip_and_report_torn_tail() {
        let mut out = Vec::new();
        append_frame(&mut out, b"first");
        append_frame(&mut out, b"");
        append_frame(&mut out, b"third record");
        let clean_len = out.len();
        out.extend_from_slice(&[0xAB; 5]); // torn in-flight append

        let mut frames = Frames::new(&out);
        assert_eq!(frames.next().unwrap().unwrap(), b"first");
        assert_eq!(frames.next().unwrap().unwrap(), b"");
        assert_eq!(frames.next().unwrap().unwrap(), b"third record");
        assert!(frames.next().unwrap().is_err(), "torn tail must surface as an error");
        assert_eq!(frames.next(), None, "iteration ends after the first error");
        assert_eq!(frames.good_offset(), clean_len);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut out = Vec::new();
        append_frame(&mut out, b"payload under test");
        for byte in 0..out.len() {
            for bit in 0..8 {
                let mut damaged = out.clone();
                damaged[byte] ^= 1 << bit;
                let mut frames = Frames::new(&damaged);
                let first = frames.next().expect("stream is non-empty");
                // A flipped length byte may leave a "valid-looking"
                // longer frame; the checksum covering the length
                // prefix catches exactly that.
                assert!(first.is_err(), "flip of bit {bit} in byte {byte} went undetected");
            }
        }
    }

    #[test]
    fn empty_stream_has_no_frames() {
        let mut frames = Frames::new(&[]);
        assert_eq!(frames.next(), None);
        assert_eq!(frames.good_offset(), 0);
    }
}
