//! Fixed-fan-out copy-on-write shard maps — the representation behind
//! every [`crate::ObjectBase`] index.
//!
//! A `ShardedMap` splits its entries over [`SHARD_COUNT`] fixed
//! shards, each an `Arc`-wrapped hash map. Cloning the whole map
//! clones [`SHARD_COUNT`] `Arc`s — O(shards), independent of the
//! number of entries — and the first write to a shard *unshares* just
//! that shard ([`Arc::make_mut`]), so a mutated clone pays only for
//! the shards it actually dirties. This is the same structural-sharing
//! discipline the per-version `Arc<VersionState>` states already use,
//! lifted to the index level: an engine run that touches 100 objects
//! in a 50k-object base copies ~nothing up front and at most a few
//! shards' worth of index entries while it works.
//!
//! Shard routing is a pure function of the key (the crate-private
//! `ShardKey` trait), so two
//! maps with equal entries always have shard-wise equal layouts —
//! equality, iteration and serialization never observe the sharding.
//! Keys route by [`FastHasher`]'s *upper* bits (the Fx multiply mixes
//! upward, leaving the low bits weak).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ruvo_term::{FastHashMap, FastHasher};

/// Number of copy-on-write shards per index (a fixed power of two).
///
/// 16 keeps a clone at 5 × 16 `Arc` bumps for the whole object base
/// while still isolating writes: a commit that touches one
/// `(chain, method)` relation dirties one shard of each index, leaving
/// the other 15 shared with every outstanding clone.
pub const SHARD_COUNT: usize = 16;

/// Route a hashable shard discriminant to a shard index using the
/// upper bits of its [`FastHasher`] hash.
pub(crate) fn route(key: impl Hash) -> usize {
    let mut hasher = FastHasher::default();
    key.hash(&mut hasher);
    (hasher.finish() >> (64 - SHARD_COUNT.trailing_zeros())) as usize
}

/// How a key type chooses its shard. The discriminant may be a prefix
/// of the key (the key indexes route `(chain, method, value)` by
/// `(chain, method)` only), which keeps one relation's entries — the
/// unit a commit dirties — together in one shard.
pub(crate) trait ShardKey {
    /// The shard this key lives in (must be `< SHARD_COUNT`).
    fn shard(&self) -> usize;
}

/// A hash map split into [`SHARD_COUNT`] copy-on-write shards.
///
/// `Clone` is O([`SHARD_COUNT`]); all read operations are as cheap as
/// on a flat map plus one route computation; mutating operations
/// unshare (deep-copy) the one target shard on first write. Lookup
/// misses never unshare: every mutating entry point peeks through the
/// shared reference first.
pub(crate) struct ShardedMap<K, V> {
    shards: [Arc<FastHashMap<K, V>>; SHARD_COUNT],
    /// Per-shard write generations: bumped every time the shard is
    /// unshared for writing (any mutating entry point that reaches
    /// [`Arc::make_mut`]). Clones inherit the counters, so comparing a
    /// map's generations against a snapshot of them taken earlier in
    /// the same lineage tells exactly which shards *may* have changed
    /// since — the dirty-set oracle behind incremental checkpoints.
    /// Over-approximation is fine (a bumped-but-equal shard is merely
    /// re-written); missing a write would be a correctness bug.
    gens: [u64; SHARD_COUNT],
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for ShardedMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.shards.iter().flat_map(|s| s.iter())).finish()
    }
}

impl<K, V> Clone for ShardedMap<K, V> {
    fn clone(&self) -> Self {
        ShardedMap { shards: std::array::from_fn(|i| Arc::clone(&self.shards[i])), gens: self.gens }
    }
}

impl<K, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap {
            shards: std::array::from_fn(|_| Arc::new(FastHashMap::default())),
            gens: [0; SHARD_COUNT],
        }
    }
}

impl<K, V> ShardedMap<K, V>
where
    K: ShardKey + Eq + Hash,
{
    pub(crate) fn get(&self, key: &K) -> Option<&V> {
        self.shards[key.shard()].get(key)
    }

    pub(crate) fn contains_key(&self, key: &K) -> bool {
        self.shards[key.shard()].contains_key(key)
    }

    /// Total entries (O(shards), not O(entries)).
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    pub(crate) fn keys(&self) -> impl Iterator<Item = &K> {
        self.shards.iter().flat_map(|s| s.keys())
    }

    /// Shards of `self` still sharing their allocation with the
    /// corresponding shard of `other` (copy-on-write diagnostics).
    pub(crate) fn shards_shared_with(&self, other: &Self) -> usize {
        self.shards.iter().zip(&other.shards).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Read access to one physical shard (bulk-pass helper).
    pub(crate) fn shard_at(&self, i: usize) -> &FastHashMap<K, V> {
        &self.shards[i]
    }

    /// The current per-shard write generations (see the field docs).
    pub(crate) fn generations(&self) -> [u64; SHARD_COUNT] {
        self.gens
    }

    /// Record a write to shard `i` that bypassed the tracked entry
    /// points — used by bulk passes that take `shard_slots_mut` and
    /// know afterwards which slots they actually mutated.
    pub(crate) fn note_written(&mut self, i: usize) {
        self.gens[i] = self.gens[i].wrapping_add(1);
    }

    /// Re-anchor this map's write generations onto `prev`'s lineage:
    /// a shard whose *contents* equal the corresponding shard of
    /// `prev` inherits its generation, a differing shard advances it.
    /// Commit paths that rebuild the map from scratch (rather than
    /// mutating a clone) call this so that generation comparison
    /// stays a valid dirty-shard oracle across them — and, because
    /// the comparison is against actual contents, an *exact* one.
    /// O(entries) worst case, but so is the rebuild that precedes it.
    pub(crate) fn rebase_generations(&mut self, prev: &Self)
    where
        V: PartialEq,
    {
        for i in 0..SHARD_COUNT {
            let same = Arc::ptr_eq(&self.shards[i], &prev.shards[i])
                || self.shards[i].as_ref() == prev.shards[i].as_ref();
            self.gens[i] = if same { prev.gens[i] } else { prev.gens[i].wrapping_add(1) };
        }
    }

    /// The `Arc` slot of one physical shard, for bulk passes that
    /// decide per shard whether to unshare ([`Arc::make_mut`]) at all.
    /// Counts as a write for generation tracking — callers peek
    /// through [`ShardedMap::shard_at`] first and only take the slot
    /// when they intend to mutate.
    pub(crate) fn shard_slot(&mut self, i: usize) -> &mut Arc<FastHashMap<K, V>> {
        self.gens[i] = self.gens[i].wrapping_add(1);
        &mut self.shards[i]
    }

    /// Disjoint mutable access to every shard slot at once: one
    /// `(shard index, slot)` pair per physical shard, all four borrows
    /// alive simultaneously. This is the access path for parallel bulk
    /// commits — each worker thread takes ownership of the slots whose
    /// indices it was assigned and may unshare ([`Arc::make_mut`]) and
    /// mutate them without synchronization, because routing guarantees
    /// no key it handles lives in another worker's slot. Borrow
    /// disjointness is enforced by the compiler (`iter_mut`), so the
    /// API is safe: no two workers can ever receive the same slot.
    pub(crate) fn shard_slots_mut(
        &mut self,
    ) -> impl Iterator<Item = (usize, &mut Arc<FastHashMap<K, V>>)> {
        self.shards.iter_mut().enumerate()
    }

    /// Assert that every entry lives in the shard its key routes to
    /// (invariant-check helper; O(entries)).
    pub(crate) fn check_residency(&self) {
        for (i, shard) in self.shards.iter().enumerate() {
            for key in shard.keys() {
                assert_eq!(key.shard(), i, "entry stored in shard {i} routes to {}", key.shard());
            }
        }
    }
}

impl<K, V> ShardedMap<K, V>
where
    K: ShardKey + Eq + Hash + Clone,
    V: Clone,
{
    /// Mutable access to an entry's value. Unshares the shard — but
    /// only on a hit; a miss returns `None` without copying anything.
    pub(crate) fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = key.shard();
        if !self.shards[i].contains_key(key) {
            return None;
        }
        self.gens[i] = self.gens[i].wrapping_add(1);
        Arc::make_mut(&mut self.shards[i]).get_mut(key)
    }

    /// The value under `key`, inserting `V::default()` first if absent
    /// (the `entry(key).or_default()` shape). Always unshares the
    /// shard: callers want the reference to write through.
    pub(crate) fn get_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = key.shard();
        self.gens[i] = self.gens[i].wrapping_add(1);
        Arc::make_mut(&mut self.shards[i]).entry(key).or_default()
    }

    pub(crate) fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = key.shard();
        self.gens[i] = self.gens[i].wrapping_add(1);
        Arc::make_mut(&mut self.shards[i]).insert(key, value)
    }

    /// Remove an entry. A miss does not unshare the shard.
    pub(crate) fn remove(&mut self, key: &K) -> Option<V> {
        let i = key.shard();
        if !self.shards[i].contains_key(key) {
            return None;
        }
        self.gens[i] = self.gens[i].wrapping_add(1);
        Arc::make_mut(&mut self.shards[i]).remove(key)
    }
}

impl<K, V> PartialEq for ShardedMap<K, V>
where
    K: ShardKey + Eq + Hash,
    V: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        // Routing is deterministic, so equal contents imply shard-wise
        // equal maps; shards still sharing one allocation skip the
        // entry-wise comparison entirely.
        self.shards
            .iter()
            .zip(&other.shards)
            .all(|(a, b)| Arc::ptr_eq(a, b) || a.as_ref() == b.as_ref())
    }
}

impl<K, V> Eq for ShardedMap<K, V>
where
    K: ShardKey + Eq + Hash,
    V: Eq,
{
}

#[cfg(test)]
mod tests {
    use super::*;

    impl ShardKey for u64 {
        fn shard(&self) -> usize {
            route(self)
        }
    }

    fn filled(n: u64) -> ShardedMap<u64, u64> {
        let mut m = ShardedMap::default();
        for i in 0..n {
            m.insert(i, i * 10);
        }
        m
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = filled(100);
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&42), Some(&420));
        assert_eq!(m.remove(&42), Some(420));
        assert_eq!(m.get(&42), None);
        assert_eq!(m.len(), 99);
        assert_eq!(m.iter().count(), 99);
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let m = filled(256);
        let used: std::collections::HashSet<usize> = m.keys().map(|k| k.shard()).collect();
        assert!(used.len() > SHARD_COUNT / 2, "only {} shards used", used.len());
        assert!(used.iter().all(|&s| s < SHARD_COUNT));
    }

    #[test]
    fn clone_shares_all_shards_until_written() {
        let original = filled(64);
        let mut copy = original.clone();
        assert_eq!(copy.shards_shared_with(&original), SHARD_COUNT);
        copy.insert(1000, 1);
        assert_eq!(copy.shards_shared_with(&original), SHARD_COUNT - 1);
        // The original is untouched.
        assert_eq!(original.get(&1000), None);
        assert_eq!(original.len(), 64);
    }

    #[test]
    fn misses_do_not_unshare() {
        let original = filled(64);
        let mut copy = original.clone();
        assert_eq!(copy.remove(&99_999), None);
        assert_eq!(copy.get_mut(&99_999), None);
        assert_eq!(copy.shards_shared_with(&original), SHARD_COUNT);
    }

    #[test]
    fn equality_ignores_sharing_state() {
        let original = filled(64);
        let mut copy = original.clone();
        assert_eq!(copy, original);
        copy.insert(3, 30); // same value: unshared but still equal
        assert_eq!(copy, original);
        copy.insert(3, 31);
        assert_ne!(copy, original);
    }

    #[test]
    fn shard_slots_mut_covers_every_shard_once() {
        let mut m = filled(64);
        let indices: Vec<usize> = m.shard_slots_mut().map(|(i, _)| i).collect();
        assert_eq!(indices, (0..SHARD_COUNT).collect::<Vec<_>>());
    }

    #[test]
    fn shard_slots_mut_parallel_disjoint_writes() {
        // The disjoint-&mut contract under real threads: each worker
        // owns a distinct subset of slots, unshares and writes them
        // concurrently; all writes land and untouched shards stay
        // shared with the pre-clone original.
        let original = filled(256);
        let mut m = original.clone();
        let mut slots: Vec<(usize, &mut Arc<FastHashMap<u64, u64>>)> =
            m.shard_slots_mut().collect();
        std::thread::scope(|scope| {
            while !slots.is_empty() {
                let chunk = slots.split_off(slots.len().saturating_sub(SHARD_COUNT / 4));
                scope.spawn(move || {
                    for (i, slot) in chunk {
                        if i % 2 == 0 {
                            let map = Arc::make_mut(slot);
                            let keys: Vec<u64> = map.keys().copied().collect();
                            for k in keys {
                                *map.get_mut(&k).unwrap() += 1;
                            }
                        }
                    }
                });
            }
        });
        for i in 0..256u64 {
            let expected = if i.shard() % 2 == 0 { i * 10 + 1 } else { i * 10 };
            assert_eq!(m.get(&i), Some(&expected), "key {i}");
        }
        // Odd shards were never unshared.
        assert_eq!(m.shards_shared_with(&original), SHARD_COUNT / 2);
        m.check_residency();
    }

    #[test]
    fn shard_slots_mut_parallel_inserts_by_route() {
        // Workers may also insert, as long as every key they touch
        // routes to a slot they own — the invariant the parallel
        // commit path relies on.
        let mut m: ShardedMap<u64, u64> = ShardedMap::default();
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); SHARD_COUNT];
        for k in 0..512u64 {
            buckets[k.shard()].push(k);
        }
        type Job<'a> = (Vec<u64>, &'a mut Arc<FastHashMap<u64, u64>>);
        let jobs: Vec<Job<'_>> =
            m.shard_slots_mut().map(|(i, slot)| (std::mem::take(&mut buckets[i]), slot)).collect();
        std::thread::scope(|scope| {
            for (keys, slot) in jobs {
                scope.spawn(move || {
                    let map = Arc::make_mut(slot);
                    for k in keys {
                        map.insert(k, k * 2);
                    }
                });
            }
        });
        assert_eq!(m.len(), 512);
        assert_eq!(m.get(&300), Some(&600));
        m.check_residency();
    }

    #[test]
    fn generations_track_writes_not_reads() {
        let mut m = filled(64);
        let before = m.generations();
        // Reads and misses never bump a generation.
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get_mut(&99_999), None);
        assert_eq!(m.remove(&99_999), None);
        assert_eq!(m.iter().count(), 64);
        assert_eq!(m.generations(), before);
        // A hit through any mutating entry point bumps exactly the
        // target shard's generation.
        let s = 1u64.shard();
        m.insert(1, 11);
        let after = m.generations();
        assert_eq!(after[s], before[s] + 1);
        for i in 0..SHARD_COUNT {
            if i != s {
                assert_eq!(after[i], before[i], "shard {i} spuriously dirtied");
            }
        }
        *m.get_mut(&1).unwrap() += 1;
        m.remove(&1);
        assert_eq!(m.generations()[s], before[s] + 3);
    }

    #[test]
    fn clones_inherit_generations() {
        let mut m = filled(32);
        m.insert(7, 70);
        let copy = m.clone();
        assert_eq!(copy.generations(), m.generations());
        // Divergence after the clone is per-lineage.
        let mut copy = copy;
        copy.insert(8, 80);
        let s = 8u64.shard();
        assert_eq!(copy.generations()[s], m.generations()[s] + 1);
    }

    #[test]
    fn get_or_default_inserts_once() {
        let mut m: ShardedMap<u64, Vec<u64>> = ShardedMap::default();
        m.get_or_default(7).push(1);
        m.get_or_default(7).push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }
}
