//! Snapshots of object bases: in-memory read views and the binary
//! storage format.
//!
//! ## Read views
//!
//! A [`Snapshot`] is a cheap, immutable view of an object base at a
//! point in time: it holds an `Arc` to shared storage, so taking one
//! is O(1) in the size of the base and never blocks or copies.
//! Writers evolve the store copy-on-write (see [`ObjectBase`]'s clone
//! semantics), so outstanding snapshots keep observing exactly the
//! state they captured.
//!
//! ## Binary format
//!
//! The textual format ([`ObjectBase::parse`]/`Display`) is the
//! interchange format; binary snapshots are the *storage* format —
//! compact, checksummed, and fast to load because symbols are interned
//! once per file instead of per occurrence. The encode/decode
//! primitives (symbol table, tagged constants, length-checked reader,
//! checksum) live in [`crate::codec`] and are shared with the
//! write-ahead log (`ruvo_core::store`).
//!
//! ## Layout (little-endian)
//!
//! ```text
//! magic   "RUVO"            4 bytes
//! version u16               current: 1
//! symbols u32 count, then per symbol: u32 byte-length + UTF-8 bytes
//! facts   u64 count, then per fact:
//!           base   Const
//!           chain  u64 bits + u8 length
//!           method u32 symbol index
//!           args   u8 count, then Consts
//!           result Const
//! checksum u64 (FxHash of everything before it)
//!
//! Const:  tag u8 — 0 symbol (u32 index), 1 int (i64), 2 num (f64 bits)
//! ```
//!
//! Symbol indices refer to the file-local table, so snapshots are
//! stable across processes with differently-populated interners.

use bytes::{BufMut, Bytes, BytesMut};
use ruvo_term::{Chain, Symbol, UpdateKind, Vid};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::codec::{self, put_const, DecodeError, Reader, SymbolTable};
use crate::shard::SHARD_COUNT;
use crate::{Args, Fact, ObjectBase};

const MAGIC: &[u8; 4] = b"RUVO";
/// Magic of a shard-delta payload (see [`write_delta`]).
const DELTA_MAGIC: &[u8; 4] = b"RUVD";
const VERSION: u16 = 1;

/// An immutable point-in-time view of an object base.
///
/// Taking a snapshot is O(1): it clones an `Arc`, never the store.
/// The view dereferences to [`ObjectBase`], so every read-side query
/// (`lookup1`, `version`, `iter`, …) works directly on it. Snapshots
/// are `Send + Sync` and can be handed to reader threads while the
/// owning database keeps committing transactions.
///
/// ```
/// use ruvo_obase::{ObjectBase, Snapshot};
/// use ruvo_term::{int, oid};
///
/// let ob = ObjectBase::parse("henry.sal -> 250.").unwrap();
/// let snap = Snapshot::from_object_base(ob);
///
/// // Deref gives the full read-side API; clones are O(1) handles.
/// assert_eq!(snap.lookup1(oid("henry"), "sal"), vec![int(250)]);
/// let reader = snap.clone();
/// let join = std::thread::spawn(move || reader.len());
/// assert_eq!(join.join().unwrap(), 1);
///
/// // Round-trip through the binary storage format.
/// let restored = ruvo_obase::snapshot::read(&snap.to_bytes()).unwrap();
/// assert_eq!(&restored, snap.object_base());
/// ```
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<ObjectBase>,
}

impl Snapshot {
    /// View an already-shared object base.
    pub fn new(inner: Arc<ObjectBase>) -> Snapshot {
        Snapshot { inner }
    }

    /// Take ownership of `ob` and view it.
    pub fn from_object_base(ob: ObjectBase) -> Snapshot {
        Snapshot { inner: Arc::new(ob) }
    }

    /// The underlying object base.
    pub fn object_base(&self) -> &ObjectBase {
        &self.inner
    }

    /// The shared handle (O(1) to clone further).
    pub fn shared(&self) -> Arc<ObjectBase> {
        Arc::clone(&self.inner)
    }

    /// A mutable copy of the viewed state. Cheap: version states stay
    /// shared until written to (see [`ObjectBase`]'s clone docs).
    pub fn to_object_base(&self) -> ObjectBase {
        (*self.inner).clone()
    }

    /// Serialize the viewed state to the binary snapshot format.
    pub fn to_bytes(&self) -> Bytes {
        write(&self.inner)
    }
}

impl Deref for Snapshot {
    type Target = ObjectBase;
    fn deref(&self) -> &ObjectBase {
        &self.inner
    }
}

impl std::fmt::Display for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Eq for Snapshot {}

impl From<ObjectBase> for Snapshot {
    fn from(ob: ObjectBase) -> Snapshot {
        Snapshot::from_object_base(ob)
    }
}

/// Why a snapshot could not be decoded (an alias of the shared
/// [`DecodeError`] — snapshots and the WAL use the same primitives).
pub type SnapshotError = DecodeError;

/// Why a snapshot file operation failed: either the I/O itself, or
/// decoding what was read. Unlike a stringly `io::Error`, both the
/// operation context and the typed decode detail survive (the facade
/// maps this into `ruvo::Error` under `ErrorKind::Storage`).
#[derive(Debug)]
pub enum SnapshotFileError {
    /// Reading or writing the file failed.
    Io {
        /// What was being attempted (`"read"` / `"write"`).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's bytes are not a valid snapshot.
    Decode {
        /// The file involved.
        path: PathBuf,
        /// The typed decode failure.
        source: SnapshotError,
    },
}

impl SnapshotFileError {
    /// The file the operation was about.
    pub fn path(&self) -> &Path {
        match self {
            SnapshotFileError::Io { path, .. } | SnapshotFileError::Decode { path, .. } => path,
        }
    }
}

impl std::fmt::Display for SnapshotFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotFileError::Io { op, path, source } => {
                write!(f, "cannot {op} snapshot {}: {source}", path.display())
            }
            SnapshotFileError::Decode { path, source } => {
                write!(f, "snapshot {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for SnapshotFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotFileError::Io { source, .. } => Some(source),
            SnapshotFileError::Decode { source, .. } => Some(source),
        }
    }
}

/// Encode one version id (shared by facts and a delta's removed-vid
/// lists).
fn put_vid(body: &mut BytesMut, vid: Vid, table: &mut SymbolTable) {
    put_const(body, vid.base(), table);
    let chain = vid.chain();
    let mut bits = 0u64;
    for (i, kind) in chain.iter().enumerate() {
        bits |= (kind as u64) << (2 * i);
    }
    body.put_u64_le(bits);
    body.put_u8(chain.len() as u8);
}

/// Decode one version id written by [`put_vid`].
fn read_vid(r: &mut Reader<'_>, symbols: &[Symbol]) -> Result<Vid, SnapshotError> {
    let base = r.constant(symbols)?;
    let bits = r.u64()?;
    let len = r.u8()? as usize;
    if len > Chain::MAX_LEN {
        return Err(SnapshotError::Corrupt("chain length"));
    }
    let mut chain = Chain::EMPTY;
    for i in 0..len {
        let kind = match (bits >> (2 * i)) & 0b11 {
            1 => UpdateKind::Ins,
            2 => UpdateKind::Del,
            3 => UpdateKind::Mod,
            _ => return Err(SnapshotError::Corrupt("chain bits")),
        };
        chain = chain.push(kind).expect("len checked above");
    }
    Ok(Vid::new(base, chain))
}

/// Encode one fact (the unit both the full snapshot and the
/// shard-delta format share).
fn put_fact(body: &mut BytesMut, fact: &Fact, table: &mut SymbolTable) {
    put_vid(body, fact.vid, table);
    body.put_u32_le(table.intern(fact.method));
    body.put_u8(u8::try_from(fact.args.len()).expect("arity fits in u8"));
    for &a in fact.args.iter() {
        put_const(body, a, table);
    }
    put_const(body, fact.result, table);
}

/// Decode one fact written by [`put_fact`].
fn read_fact(r: &mut Reader<'_>, symbols: &[Symbol]) -> Result<Fact, SnapshotError> {
    let vid = read_vid(r, symbols)?;
    let method = read_symbol(r, symbols)?;
    let nargs = r.u8()? as usize;
    let mut args = Vec::with_capacity(nargs);
    for _ in 0..nargs {
        args.push(r.constant(symbols)?);
    }
    let result = r.constant(symbols)?;
    Ok(Fact { vid, method, args: Args::new(args), result })
}

/// Serialize an object base to a checksummed snapshot.
pub fn write(ob: &ObjectBase) -> Bytes {
    // Two passes: body first (which populates the symbol table), then
    // splice the table between header and body.
    let mut table = SymbolTable::new();
    let mut body = BytesMut::with_capacity(ob.len() * 24);
    let facts = ob.facts_sorted();
    body.put_u64_le(facts.len() as u64);
    for fact in &facts {
        put_fact(&mut body, fact, &mut table);
    }

    let mut out = BytesMut::with_capacity(body.len() + 256);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    table.encode_into(&mut out);
    out.put_slice(&body);
    let sum = codec::checksum(&out);
    out.put_u64_le(sum);
    out.freeze()
}

/// Split off and verify the trailing checksum, returning the covered
/// payload.
fn checked_payload(data: &[u8]) -> Result<&[u8], SnapshotError> {
    if data.len() < MAGIC.len() + 2 + 8 {
        return Err(SnapshotError::Truncated);
    }
    let (payload, sum_bytes) = data.split_at(data.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if codec::checksum(payload) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Deserialize a snapshot produced by [`fn@write`] into its fact
/// stream (checksum-verified; in encoding order).
pub fn read_facts(data: &[u8]) -> Result<Vec<Fact>, SnapshotError> {
    let payload = checked_payload(data)?;
    let mut r = Reader::new(payload);
    if r.bytes(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }

    let symbols = codec::read_symbol_table(&mut r)?;

    let nfacts = r.u64()? as usize;
    let mut facts = Vec::with_capacity(nfacts.min(r.remaining() / 8));
    for _ in 0..nfacts {
        facts.push(read_fact(&mut r, &symbols)?);
    }
    if !r.is_empty() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(facts)
}

/// Deserialize a snapshot produced by [`fn@write`].
pub fn read(data: &[u8]) -> Result<ObjectBase, SnapshotError> {
    read_with_workers(data, 1)
}

/// [`read`], with the index rebuild spread over up to `workers`
/// threads ([`ObjectBase::from_facts`]) — the reopen path, where
/// decode time would otherwise scale with base size on one core.
pub fn read_with_workers(data: &[u8], workers: usize) -> Result<ObjectBase, SnapshotError> {
    Ok(ObjectBase::from_facts(read_facts(data)?, workers))
}

fn read_symbol(r: &mut Reader<'_>, symbols: &[Symbol]) -> Result<Symbol, SnapshotError> {
    symbols.get(r.u32()? as usize).copied().ok_or(SnapshotError::Corrupt("method index"))
}

// ----- shard deltas --------------------------------------------------

/// What a decoded shard-delta says about itself (header only — see
/// [`apply_delta`] for the application).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaInfo {
    /// The `seq` of the chain generation this delta was computed
    /// against; applying it to any other state is refused upstream.
    pub base_seq: u64,
    /// Bit `i` set ⇔ the *writer's* version-table shard `i`
    /// contributed to this delta. Diagnostic only: symbol hashes (and
    /// therefore shard routes) differ between processes, so replay
    /// never trusts these indexes — see [`apply_delta`].
    pub dirty_mask: u32,
    /// Number of upserted facts carried (across all dirty shards).
    pub facts: usize,
    /// Number of explicitly removed versions carried.
    pub removed: usize,
}

impl DeltaInfo {
    /// Number of writer-side shards this delta was diffed from.
    pub fn dirty_shards(&self) -> usize {
        self.dirty_mask.count_ones() as usize
    }
}

/// Serialize the dirtied shards of `ob` as a delta against `prev`,
/// the state checkpointed at `base_seq`.
///
/// ## Layout (little-endian, after the shared header vocabulary)
///
/// ```text
/// magic    "RUVD"          4 bytes
/// version  u16             current: 1
/// symbols  (as snapshots)
/// base_seq u64             seq of the generation this builds on
/// shards   u16             SHARD_COUNT of the writer (must match)
/// mask     u32             bit i = shard i present
/// per present shard, ascending:
///   u64 removed-vid count, then vids (Const base + chain)
///   u64 fact count, then facts
/// checksum u64             (FxHash of everything before it)
/// ```
///
/// The delta is **interning-portable**: shard routing hashes interned
/// symbol ids, which are process-local, so a reader would bucket the
/// same versions differently and wholesale shard replacement would
/// delete the wrong facts. Instead each dirty shard carries explicit
/// per-*version* operations — the complete current facts of every
/// version still in the shard (an upsert replacing that version
/// wholesale) plus the vids `prev` held there that are now gone (the
/// removals a contents-only encoding cannot express). Replay applies
/// them per vid and never consults the reader's routing.
pub fn write_delta(
    ob: &ObjectBase,
    prev: &ObjectBase,
    dirty: &[bool; SHARD_COUNT],
    base_seq: u64,
) -> Bytes {
    let mut table = SymbolTable::new();
    let mut body = BytesMut::new();
    body.put_u64_le(base_seq);
    body.put_u16_le(SHARD_COUNT as u16);
    let mut mask = 0u32;
    for (i, &d) in dirty.iter().enumerate() {
        if d {
            mask |= 1 << i;
        }
    }
    body.put_u32_le(mask);
    for (i, &d) in dirty.iter().enumerate() {
        if !d {
            continue;
        }
        let kept = ob.shard_vids_sorted(i);
        let removed: Vec<Vid> = prev
            .shard_vids_sorted(i)
            .into_iter()
            .filter(|v| kept.binary_search(v).is_err())
            .collect();
        body.put_u64_le(removed.len() as u64);
        for &vid in &removed {
            put_vid(&mut body, vid, &mut table);
        }
        let facts = ob.shard_facts_sorted(i);
        body.put_u64_le(facts.len() as u64);
        for fact in &facts {
            put_fact(&mut body, fact, &mut table);
        }
    }

    let mut out = BytesMut::with_capacity(body.len() + 256);
    out.put_slice(DELTA_MAGIC);
    out.put_u16_le(VERSION);
    table.encode_into(&mut out);
    out.put_slice(&body);
    let sum = codec::checksum(&out);
    out.put_u64_le(sum);
    out.freeze()
}

/// True if `data` carries a shard-delta payload (vs a full snapshot).
pub fn is_delta(data: &[u8]) -> bool {
    data.get(..4) == Some(DELTA_MAGIC.as_slice())
}

/// One dirty shard's decoded operations.
struct DeltaShard {
    /// Versions `prev` held in this writer-shard that are now gone.
    removed: Vec<Vid>,
    /// Complete current facts of the shard, sorted by vid first.
    facts: Vec<Fact>,
}

fn read_delta(data: &[u8]) -> Result<(DeltaInfo, Vec<DeltaShard>), SnapshotError> {
    let payload = checked_payload(data)?;
    let mut r = Reader::new(payload);
    if r.bytes(4)? != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let symbols = codec::read_symbol_table(&mut r)?;
    let base_seq = r.u64()?;
    if r.u16()? as usize != SHARD_COUNT {
        return Err(SnapshotError::Corrupt("shard count"));
    }
    let mask = r.u32()?;
    if mask >> SHARD_COUNT != 0 {
        return Err(SnapshotError::Corrupt("dirty mask"));
    }
    let mut shards = Vec::with_capacity(mask.count_ones() as usize);
    let mut total = 0usize;
    let mut total_removed = 0usize;
    for i in 0..SHARD_COUNT {
        if mask & (1 << i) == 0 {
            continue;
        }
        let nremoved = r.u64()? as usize;
        let mut removed = Vec::with_capacity(nremoved.min(r.remaining() / 8));
        for _ in 0..nremoved {
            removed.push(read_vid(&mut r, &symbols)?);
        }
        let nfacts = r.u64()? as usize;
        let mut facts = Vec::with_capacity(nfacts.min(r.remaining() / 8));
        for _ in 0..nfacts {
            facts.push(read_fact(&mut r, &symbols)?);
        }
        total += facts.len();
        total_removed += removed.len();
        shards.push(DeltaShard { removed, facts });
    }
    if !r.is_empty() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok((DeltaInfo { base_seq, dirty_mask: mask, facts: total, removed: total_removed }, shards))
}

/// Decode a delta's header without applying it (chain inspection).
pub fn delta_info(data: &[u8]) -> Result<DeltaInfo, SnapshotError> {
    read_delta(data).map(|(info, _)| info)
}

/// Replay a delta produced by [`write_delta`] onto `ob`: removed
/// versions are dropped, and every version the delta carries facts
/// for is replaced wholesale by those facts. All placement is per
/// vid in `ob`'s own routing — the writer's shard indexes are never
/// trusted, so a delta written by a process with a differently
/// populated interner replays identically. The caller is responsible
/// for checking [`DeltaInfo::base_seq`] against the chain before
/// applying.
pub fn apply_delta(ob: &mut ObjectBase, data: &[u8]) -> Result<DeltaInfo, SnapshotError> {
    let (info, shards) = read_delta(data)?;
    for shard in shards {
        for vid in shard.removed {
            ob.discard_version(vid);
        }
        // Facts arrive sorted by vid, so each version's run is
        // contiguous: clear it once at the head of its run.
        let mut current = None;
        for fact in shard.facts {
            if current != Some(fact.vid) {
                ob.discard_version(fact.vid);
                current = Some(fact.vid);
            }
            ob.insert(fact.vid, fact.method, fact.args, fact.result);
        }
    }
    Ok(info)
}

/// Write a snapshot to a file.
pub fn save_file(ob: &ObjectBase, path: impl AsRef<Path>) -> Result<(), SnapshotFileError> {
    let path = path.as_ref();
    std::fs::write(path, write(ob)).map_err(|source| SnapshotFileError::Io {
        op: "write",
        path: path.to_path_buf(),
        source,
    })
}

/// Load a snapshot from a file.
pub fn load_file(path: impl AsRef<Path>) -> Result<ObjectBase, SnapshotFileError> {
    let path = path.as_ref();
    let data = std::fs::read(path).map_err(|source| SnapshotFileError::Io {
        op: "read",
        path: path.to_path_buf(),
        source,
    })?;
    read(&data).map_err(|source| SnapshotFileError::Decode { path: path.to_path_buf(), source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, num, oid, sym};

    fn sample() -> ObjectBase {
        let mut ob = ObjectBase::parse(
            "phil.isa -> empl. phil.sal -> 4000. g.edge @ a, b -> 1.5.
             'weird name'.p -> -3.",
        )
        .unwrap();
        let v = Vid::object(oid("phil"))
            .apply(UpdateKind::Mod)
            .unwrap()
            .apply(UpdateKind::Del)
            .unwrap();
        ob.insert(v, sym("sal"), Args::empty(), num(0.25));
        ob
    }

    #[test]
    fn read_view_is_isolated_from_writers() {
        let ob = sample();
        let snap = Snapshot::from_object_base(ob.clone());
        assert_eq!(snap.object_base(), &ob);
        // A writer's CoW copy does not disturb the view.
        let mut writer = snap.to_object_base();
        let newbie = Vid::object(oid("newbie"));
        writer.insert(newbie, sym("p"), Args::empty(), int(1));
        writer.remove(Vid::object(oid("phil")), sym("sal"), &Args::empty(), int(4000));
        assert!(snap.version(newbie).is_none());
        assert_eq!(snap.lookup1(oid("phil"), "sal"), vec![int(4000)]);
        assert!(writer.version(newbie).is_some());
    }

    #[test]
    fn read_view_shares_untouched_states() {
        let ob = sample();
        let snap = Snapshot::from_object_base(ob);
        let copy = snap.to_object_base();
        let phil = Vid::object(oid("phil"));
        // The copy's states (and index shards) alias the snapshot's
        // until written to: cloning is O(shards), not O(#facts).
        assert!(std::ptr::eq(snap.version(phil).unwrap(), copy.version(phil).unwrap()));
        assert!(copy.cow_stats(snap.object_base()).fully_shared());
        let mut touched = copy.clone();
        touched.insert(phil, sym("note"), Args::empty(), int(1));
        assert!(!std::ptr::eq(snap.version(phil).unwrap(), touched.version(phil).unwrap()));
        assert!(!touched.cow_stats(snap.object_base()).fully_shared());
    }

    #[test]
    fn serialization_is_independent_of_cow_sharing_state() {
        let ob = sample();
        let bytes = write(&ob);
        // Mutating a copy leaves the original's bytes bit-identical...
        let mut copy = ob.clone();
        copy.insert(Vid::object(oid("extra")), sym("p"), Args::empty(), int(1));
        copy.remove(Vid::object(oid("phil")), sym("sal"), &Args::empty(), int(4000));
        assert_eq!(write(&ob), bytes);
        // ...and undoing the mutations restores byte-identical output
        // even though the copy's shards are now partially unshared.
        copy.remove(Vid::object(oid("extra")), sym("p"), &Args::empty(), int(1));
        copy.insert(Vid::object(oid("phil")), sym("sal"), Args::empty(), int(4000));
        assert_eq!(write(&copy), bytes);
        assert!(!copy.cow_stats(&ob).fully_shared());
    }

    #[test]
    fn snapshot_serializes_like_its_base() {
        let ob = sample();
        let snap = Snapshot::from_object_base(ob.clone());
        assert_eq!(snap.to_bytes(), write(&ob));
        assert_eq!(read(&snap.to_bytes()).unwrap(), ob);
    }

    #[test]
    fn roundtrip() {
        let ob = sample();
        let bytes = write(&ob);
        let back = read(&bytes).unwrap();
        assert_eq!(ob, back);
        back.check_invariants();
    }

    #[test]
    fn empty_roundtrip() {
        let ob = ObjectBase::new();
        assert_eq!(read(&write(&ob)).unwrap(), ob);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = write(&sample());
        for i in 0..bytes.len() {
            let mut corrupted = bytes.to_vec();
            corrupted[i] ^= 0xFF;
            assert!(
                read(&corrupted).is_err(),
                "flip at byte {i} of {} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = write(&sample());
        for cut in [0, 1, 4, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(read(&bytes[..cut]).is_err(), "truncation to {cut} bytes");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let bytes = write(&sample()).to_vec();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Checksum catches it first — either way it must error.
        assert!(read(&wrong_magic).is_err());

        // Rebuild with a bumped version and a valid checksum.
        let mut bumped = bytes[..bytes.len() - 8].to_vec();
        bumped[4] = 9;
        let sum = codec::checksum(&bumped);
        bumped.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(read(&bumped).unwrap_err(), SnapshotError::BadVersion(9));
    }

    #[test]
    fn file_helpers() {
        let dir = std::env::temp_dir().join("ruvo-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ob.ruvosnap");
        let ob = sample();
        save_file(&ob, &path).unwrap();
        let back = load_file(&path).unwrap();
        assert_eq!(ob, back);
    }

    #[test]
    fn file_errors_are_typed_not_stringly() {
        let dir = std::env::temp_dir().join("ruvo-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();

        // Missing file: the I/O context (op + path) survives.
        let missing = dir.join("does-not-exist.snap");
        let err = load_file(&missing).unwrap_err();
        match &err {
            SnapshotFileError::Io { op, path, source } => {
                assert_eq!(*op, "read");
                assert_eq!(path, &missing);
                assert_eq!(source.kind(), std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        assert!(err.to_string().contains("does-not-exist.snap"));

        // Damaged file: the typed decode detail survives.
        let damaged = dir.join("damaged.snap");
        let mut bytes = write(&sample()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&damaged, &bytes).unwrap();
        let err = load_file(&damaged).unwrap_err();
        match &err {
            SnapshotFileError::Decode { path, source } => {
                assert_eq!(path, &damaged);
                assert_eq!(*source, SnapshotError::ChecksumMismatch);
            }
            other => panic!("expected Decode error, got {other:?}"),
        }
        assert!(std::error::Error::source(&err).is_some());
    }

    fn broad_base(n: i64) -> ObjectBase {
        let mut ob = ObjectBase::new();
        for i in 0..n {
            ob.insert(
                Vid::object(oid(&format!("o{i}"))),
                sym(&format!("m{}", i % 7)),
                Args::new(vec![int(i)]),
                int(i * 2),
            );
        }
        ob
    }

    fn dirty_since(
        live: &ObjectBase,
        gens: &[u64; crate::SHARD_COUNT],
    ) -> [bool; crate::SHARD_COUNT] {
        let now = live.version_generations();
        std::array::from_fn(|i| now[i] != gens[i])
    }

    #[test]
    fn delta_roundtrip_is_bit_identical() {
        let mut live = broad_base(300);
        let prev = live.clone();
        let full = write(&live);
        let gens = live.version_generations();

        // Mutate a handful of objects: updates, a delete of a whole
        // version, a fact-level delete, a new object.
        live.insert(Vid::object(oid("o3")), sym("extra"), Args::empty(), int(1));
        live.remove(Vid::object(oid("o5")), sym("m5"), &Args::new(vec![int(5)]), int(10));
        live.remove_version(Vid::object(oid("o7")));
        live.insert(Vid::object(oid("brand-new")), sym("p"), Args::empty(), num(0.5));

        let dirty = dirty_since(&live, &gens);
        assert!(dirty.iter().any(|&d| d), "mutations must dirty at least one shard");
        assert!(!dirty.iter().all(|&d| d), "a small edit must not dirty every shard");
        let delta = write_delta(&live, &prev, &dirty, 42);
        assert!(is_delta(&delta) && !is_delta(&full));

        let mut recovered = read(&full).unwrap();
        let info = apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(info.base_seq, 42);
        assert_eq!(info.dirty_shards(), dirty.iter().filter(|&&d| d).count());
        assert!(info.removed >= 1, "the dropped version must be carried explicitly");
        assert_eq!(recovered, live);
        assert_eq!(write(&recovered), write(&live), "recovered state must be bit-identical");
        recovered.check_invariants();
        assert_eq!(delta_info(&delta).unwrap(), info);
    }

    #[test]
    fn delta_replay_never_trusts_the_writers_shard_routing() {
        // Shard routes hash interned symbol ids, which differ between
        // processes. Simulate a foreign writer by replaying a delta
        // whose dirty shards, by construction, cannot all agree with
        // this process's routing: mark *every* shard dirty so each
        // version's operations sit in some writer bucket, then check
        // the replay lands every fact correctly anyway.
        let mut live = broad_base(60);
        let prev = live.clone();
        live.remove_version(Vid::object(oid("o2")));
        live.insert(Vid::object(oid("o4")), sym("q"), Args::empty(), int(8));
        let delta = write_delta(&live, &prev, &[true; crate::SHARD_COUNT], 9);
        let mut recovered = read(&write(&prev)).unwrap();
        apply_delta(&mut recovered, &delta).unwrap();
        assert_eq!(recovered, live);
        recovered.check_invariants();
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let live = broad_base(50);
        let delta = write_delta(&live, &live, &[false; crate::SHARD_COUNT], 7);
        let mut ob = read(&write(&live)).unwrap();
        let info = apply_delta(&mut ob, &delta).unwrap();
        assert_eq!(info.dirty_shards(), 0);
        assert_eq!(info.facts, 0);
        assert_eq!(info.removed, 0);
        assert_eq!(ob, live);
    }

    #[test]
    fn delta_detects_every_flipped_byte() {
        let mut live = broad_base(40);
        let prev = live.clone();
        let gens = live.version_generations();
        live.insert(Vid::object(oid("o1")), sym("x"), Args::empty(), int(9));
        let delta = write_delta(&live, &prev, &dirty_since(&live, &gens), 3);
        for i in 0..delta.len() {
            let mut corrupted = delta.to_vec();
            corrupted[i] ^= 0xFF;
            let mut ob = ObjectBase::new();
            assert!(
                apply_delta(&mut ob, &corrupted).is_err(),
                "flip at byte {i} of {} went undetected",
                delta.len()
            );
        }
    }

    #[test]
    fn delta_with_out_of_range_mask_bit_is_rejected() {
        let live = broad_base(10);
        let delta = write_delta(&live, &live, &[false; crate::SHARD_COUNT], 1).to_vec();
        // The mask sits right after base_seq (u64) + shard count (u16)
        // in the body; find it by scanning for the encoded zero mask
        // preceded by the shard count — instead, rebuild: flip a high
        // mask bit and restore the checksum.
        let mut bytes = delta[..delta.len() - 8].to_vec();
        let n = bytes.len();
        // body tail is [.. base_seq(8) shards(2) mask(4)]; mask is the
        // final 4 bytes of the payload for an all-clean delta.
        bytes[n - 2] |= 0x20; // set bit 21 of the mask
        let sum = codec::checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        let mut ob = ObjectBase::new();
        assert_eq!(apply_delta(&mut ob, &bytes).unwrap_err(), SnapshotError::Corrupt("dirty mask"));
    }

    #[test]
    fn read_with_workers_matches_serial_read() {
        let ob = broad_base(200);
        let bytes = write(&ob);
        for workers in [1, 4] {
            let back = read_with_workers(&bytes, workers).unwrap();
            assert_eq!(back, ob, "workers={workers}");
            back.check_invariants();
        }
    }

    #[test]
    fn large_base_roundtrip() {
        let mut ob = ObjectBase::new();
        for i in 0..2_000i64 {
            ob.insert(
                Vid::object(oid(&format!("o{}", i % 97))),
                sym(&format!("m{}", i % 13)),
                Args::new(vec![int(i)]),
                if i % 2 == 0 { int(i * 3) } else { num(i as f64 + 0.5) },
            );
        }
        let bytes = write(&ob);
        assert_eq!(read(&bytes).unwrap(), ob);
    }
}
