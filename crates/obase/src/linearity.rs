//! Version-linearity (§5).
//!
//! "We call result(P) *version-linear*, if for any two VIDs v, v' of the
//! same object o it holds, that either v is a subterm of v', or vice
//! versa. … Version-linearity can be easily checked during evaluation:
//! At any point of time, keep the VID of the most recent version of each
//! object and check whether the VID of any new version of the same
//! object contains the previous VID as subterm."
//!
//! [`LinearityTracker`] implements exactly that incremental check;
//! [`check_all_linear`] is the quadratic reference implementation used
//! to cross-validate it in property tests.

use std::fmt;

use ruvo_term::{Chain, Const, FastHashMap, Vid};

/// Two incomparable versions of the same object were created — the
/// program is rejected (§5: "to exclude such programs … a run-time
/// check during the computation of result(P) is appropriate").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearityViolation {
    /// The object with conflicting versions.
    pub object: Const,
    /// The previously recorded most-recent version.
    pub existing: Vid,
    /// The incomparable newly created version.
    pub conflicting: Vid,
}

impl fmt::Display for LinearityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "version-linearity violated for object {}: versions {} and {} are incomparable \
             (neither is a subterm of the other)",
            self.object, self.existing, self.conflicting
        )
    }
}

impl std::error::Error for LinearityViolation {}

/// Incremental version-linearity checker and final-version registry.
#[derive(Clone, Debug, Default)]
pub struct LinearityTracker {
    latest: FastHashMap<Const, Chain>,
}

impl LinearityTracker {
    /// A tracker with no recorded versions.
    pub fn new() -> LinearityTracker {
        LinearityTracker::default()
    }

    /// Record a newly created (or pre-existing) version of an object.
    ///
    /// Keeps the *deepest* version per object; errors if the new version
    /// is incomparable with the recorded one.
    pub fn record(&mut self, vid: Vid) -> Result<(), LinearityViolation> {
        let entry = self.latest.entry(vid.base()).or_insert(Chain::EMPTY);
        let chain = vid.chain();
        if entry.is_prefix_of(chain) {
            *entry = chain;
            Ok(())
        } else if chain.is_prefix_of(*entry) {
            Ok(())
        } else {
            Err(LinearityViolation {
                object: vid.base(),
                existing: Vid::new(vid.base(), *entry),
                conflicting: vid,
            })
        }
    }

    /// §5's *final version* of an object: "that version of o … whose VID
    /// contains all VIDs of the other versions of o as a subterm".
    /// Objects never recorded yield the initial version.
    pub fn final_version(&self, base: Const) -> Vid {
        Vid::new(base, self.latest.get(&base).copied().unwrap_or(Chain::EMPTY))
    }

    /// Iterate `(object, final version)` pairs for all recorded objects.
    pub fn iter(&self) -> impl Iterator<Item = (Const, Vid)> + '_ {
        self.latest.iter().map(|(&b, &c)| (b, Vid::new(b, c)))
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

/// Quadratic reference check: are all versions of each object pairwise
/// comparable? Returns the first violation found (in unspecified order).
pub fn check_all_linear(vids: impl IntoIterator<Item = Vid>) -> Result<(), LinearityViolation> {
    let mut per_object: FastHashMap<Const, Vec<Vid>> = FastHashMap::default();
    for v in vids {
        per_object.entry(v.base()).or_default().push(v);
    }
    for (object, versions) in per_object {
        for i in 0..versions.len() {
            for j in (i + 1)..versions.len() {
                if !versions[i].comparable(versions[j]) {
                    return Err(LinearityViolation {
                        object,
                        existing: versions[i],
                        conflicting: versions[j],
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{
        oid,
        UpdateKind::{Del, Ins, Mod},
    };

    fn v(name: &str, kinds: &[ruvo_term::UpdateKind]) -> Vid {
        Vid::new(oid(name), Chain::from_kinds(kinds).unwrap())
    }

    #[test]
    fn linear_chain_is_accepted() {
        let mut t = LinearityTracker::new();
        t.record(v("o", &[])).unwrap();
        t.record(v("o", &[Mod])).unwrap();
        t.record(v("o", &[Mod, Del])).unwrap();
        t.record(v("o", &[Mod, Del, Ins])).unwrap();
        assert_eq!(t.final_version(oid("o")), v("o", &[Mod, Del, Ins]));
    }

    #[test]
    fn out_of_order_recording_is_fine() {
        // Versions may be *recorded* deepest-first (e.g. del(mod(o))
        // created from v* = o without mod(o) ever existing).
        let mut t = LinearityTracker::new();
        t.record(v("o", &[Mod, Del])).unwrap();
        t.record(v("o", &[Mod])).unwrap();
        t.record(v("o", &[])).unwrap();
        assert_eq!(t.final_version(oid("o")), v("o", &[Mod, Del]));
    }

    #[test]
    fn incomparable_versions_rejected() {
        // The paper's §5 example: mod[o].m -> (a,b) and del[o].m -> a
        // both firing creates mod(o) and del(o).
        let mut t = LinearityTracker::new();
        t.record(v("o", &[Mod])).unwrap();
        let err = t.record(v("o", &[Del])).unwrap_err();
        assert_eq!(err.object, oid("o"));
        assert_eq!(err.existing, v("o", &[Mod]));
        assert_eq!(err.conflicting, v("o", &[Del]));
        let msg = err.to_string();
        assert!(msg.contains("mod(o)") && msg.contains("del(o)"), "got: {msg}");
    }

    #[test]
    fn different_objects_are_independent() {
        let mut t = LinearityTracker::new();
        t.record(v("a", &[Mod])).unwrap();
        t.record(v("b", &[Del])).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.final_version(oid("a")), v("a", &[Mod]));
        assert_eq!(t.final_version(oid("b")), v("b", &[Del]));
    }

    #[test]
    fn untracked_object_finalizes_to_initial() {
        let t = LinearityTracker::new();
        assert_eq!(t.final_version(oid("z")), v("z", &[]));
    }

    #[test]
    fn brute_force_agrees_on_examples() {
        assert!(check_all_linear([v("o", &[]), v("o", &[Mod]), v("o", &[Mod, Del])]).is_ok());
        assert!(check_all_linear([v("o", &[Mod]), v("o", &[Del])]).is_err());
        assert!(check_all_linear([v("a", &[Mod]), v("b", &[Del])]).is_ok());
        // Incomparable deep versions sharing a prefix.
        assert!(check_all_linear([v("o", &[Mod, Del]), v("o", &[Mod, Ins])]).is_err());
    }
}
