//! Model-based testing of the object-base store: arbitrary operation
//! sequences against a trivial reference model (a sorted set of fact
//! tuples), with the index invariants checked after every step.

use proptest::prelude::*;
use ruvo_obase::{Args, MethodApp, ObjectBase, VersionState};
use ruvo_term::{int, oid, sym, Chain, Const, Symbol, UpdateKind, Vid};
use std::collections::BTreeSet;

type ModelFact = (String, String, Vec<Const>, Const);

#[derive(Clone, Debug)]
enum Op {
    Insert { obj: u8, chain: Vec<UpdateKind>, method: u8, arg: Option<u8>, result: u8 },
    Remove { obj: u8, chain: Vec<UpdateKind>, method: u8, arg: Option<u8>, result: u8 },
    RemoveVersion { obj: u8, chain: Vec<UpdateKind> },
    Replace { obj: u8, chain: Vec<UpdateKind>, method: u8, result: u8 },
    EnsureExists,
}

fn arb_kind() -> impl Strategy<Value = UpdateKind> {
    prop_oneof![Just(UpdateKind::Ins), Just(UpdateKind::Del), Just(UpdateKind::Mod)]
}

fn arb_chain_kinds() -> impl Strategy<Value = Vec<UpdateKind>> {
    proptest::collection::vec(arb_kind(), 0..3)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, arb_chain_kinds(), 0u8..3, proptest::option::of(0u8..2), 0u8..5).prop_map(
            |(obj, chain, method, arg, result)| Op::Insert { obj, chain, method, arg, result }
        ),
        (0u8..4, arb_chain_kinds(), 0u8..3, proptest::option::of(0u8..2), 0u8..5).prop_map(
            |(obj, chain, method, arg, result)| Op::Remove { obj, chain, method, arg, result }
        ),
        (0u8..4, arb_chain_kinds()).prop_map(|(obj, chain)| Op::RemoveVersion { obj, chain }),
        (0u8..4, arb_chain_kinds(), 0u8..3, 0u8..5)
            .prop_map(|(obj, chain, method, result)| Op::Replace { obj, chain, method, result }),
        Just(Op::EnsureExists),
    ]
}

fn vid(obj: u8, chain: &[UpdateKind]) -> Vid {
    Vid::new(oid(&format!("o{obj}")), Chain::from_kinds(chain).unwrap())
}

fn method_sym(m: u8) -> Symbol {
    sym(&format!("m{m}"))
}

fn args_of(arg: Option<u8>) -> Vec<Const> {
    arg.map(|a| vec![int(a as i64)]).unwrap_or_default()
}

fn model_key(v: Vid, m: Symbol, args: &[Const], r: Const) -> ModelFact {
    (v.to_string(), m.as_str().to_string(), args.to_vec(), r)
}

fn ob_to_model(ob: &ObjectBase) -> BTreeSet<ModelFact> {
    ob.iter().map(|f| model_key(f.vid, f.method, f.args.as_slice(), f.result)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut ob = ObjectBase::new();
        let mut model: BTreeSet<ModelFact> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert { obj, chain, method, arg, result } => {
                    let v = vid(obj, &chain);
                    let m = method_sym(method);
                    let args = args_of(arg);
                    let r = int(result as i64);
                    let added = ob.insert(v, m, Args::new(args.clone()), r);
                    let model_added = model.insert(model_key(v, m, &args, r));
                    prop_assert_eq!(added, model_added);
                }
                Op::Remove { obj, chain, method, arg, result } => {
                    let v = vid(obj, &chain);
                    let m = method_sym(method);
                    let args = args_of(arg);
                    let r = int(result as i64);
                    let removed = ob.remove(v, m, &Args::new(args.clone()), r);
                    let model_removed = model.remove(&model_key(v, m, &args, r));
                    prop_assert_eq!(removed, model_removed);
                }
                Op::RemoveVersion { obj, chain } => {
                    let v = vid(obj, &chain);
                    ob.remove_version(v);
                    model.retain(|(mv, ..)| *mv != v.to_string());
                }
                Op::Replace { obj, chain, method, result } => {
                    let v = vid(obj, &chain);
                    let m = method_sym(method);
                    let r = int(result as i64);
                    let mut state = VersionState::new();
                    state.insert(m, MethodApp::new(Args::empty(), r));
                    ob.replace_version(v, state);
                    model.retain(|(mv, ..)| *mv != v.to_string());
                    model.insert(model_key(v, m, &[], r));
                }
                Op::EnsureExists => {
                    // Mirror: every version present gains exists -> base.
                    let versions: Vec<Vid> = ob.versions().collect();
                    ob.ensure_exists();
                    for v in versions {
                        model.insert(model_key(v, sym("exists"), &[], v.base()));
                    }
                }
            }
            ob.check_invariants();
            prop_assert_eq!(ob_to_model(&ob), model.clone());
            prop_assert_eq!(ob.len(), model.len());
        }

        // Index queries agree with the model at the end.
        for (mv, mm, margs, mr) in &model {
            let found = ob.iter().any(|f| {
                f.vid.to_string() == *mv
                    && f.method.as_str() == mm
                    && f.args.as_slice() == margs.as_slice()
                    && f.result == *mr
            });
            prop_assert!(found);
        }

        // Text round-trip preserves equality.
        let text = ob.to_string();
        let back = ObjectBase::parse(&text).unwrap();
        prop_assert_eq!(&ob, &back);
    }
}
