//! E3 — §2.3 hypothetical reasoning, scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ruvo_workload::{hypothetical_program, Enterprise, EnterpriseConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_hypothetical");
    group.sample_size(10);
    for n in [100usize, 1_000, 5_000] {
        let e = Enterprise::generate(EnterpriseConfig {
            employees: n,
            with_factor: true,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &e, |b, e| {
            b.iter(|| ruvo_bench::run(hypothetical_program("e0"), &e.ob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
