//! Component microbenchmarks: parser, pretty-printer, stratifier,
//! object-base operations, binary snapshots.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ruvo_lang::Program;
use ruvo_obase::{snapshot, ObjectBase};
use ruvo_workload::{enterprise_program, Enterprise, EnterpriseConfig};

const ENTERPRISE_SRC: &str = "
rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.
";

fn bench_lang(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_lang");
    group.throughput(Throughput::Bytes(ENTERPRISE_SRC.len() as u64));
    group
        .bench_function("parse_enterprise", |b| b.iter(|| Program::parse(ENTERPRISE_SRC).unwrap()));
    let program = enterprise_program();
    group.bench_function("pretty_print", |b| b.iter(|| program.to_string()));
    group.bench_function("stratify_enterprise", |b| {
        b.iter(|| ruvo_core::stratify::stratify(&program).unwrap())
    });
    group.finish();
}

fn bench_obase(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_obase");
    let e = Enterprise::generate(EnterpriseConfig { employees: 5_000, ..Default::default() });
    group.bench_function("clone_5k", |b| b.iter(|| e.ob.clone()));
    group.bench_function("ensure_exists_5k", |b| {
        b.iter_batched(
            || e.ob.clone(),
            |mut ob| {
                ob.ensure_exists();
                ob
            },
            BatchSize::SmallInput,
        )
    });
    let text = e.ob.to_string();
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_text_5k", |b| b.iter(|| ObjectBase::parse(&text).unwrap()));
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_snapshot");
    let e = Enterprise::generate(EnterpriseConfig { employees: 5_000, ..Default::default() });
    let bytes = snapshot::write(&e.ob);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("write_5k", |b| b.iter(|| snapshot::write(&e.ob)));
    group.bench_function("read_5k", |b| b.iter(|| snapshot::read(&bytes).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_lang, bench_obase, bench_snapshot);
criterion_main!(benches);
