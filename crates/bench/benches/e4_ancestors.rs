//! E4 — §2.3 recursive ancestors: ruvo vs the semi-naive Datalog
//! baseline on the same family databases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_datalog::{evaluate, parse_program, Semantics};
use ruvo_workload::{ancestors_program, Family, FamilyConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_ancestors");
    group.sample_size(10);
    for (g, w) in [(4usize, 10usize), (6, 20), (8, 30)] {
        let f = Family::generate(FamilyConfig {
            generations: g,
            per_generation: w,
            parents_per_person: 2,
            seed: 7,
        });
        group.bench_with_input(BenchmarkId::new("ruvo", format!("{g}x{w}")), &f, |b, f| {
            b.iter(|| ruvo_bench::run(ancestors_program(), &f.ob));
        });
        let baseline = parse_program(
            "anc(X, P) <= parents(X, P).
             anc(X, P) <= anc(X, A) & parents(A, P).",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("datalog_semi_naive", format!("{g}x{w}")),
            &f,
            |b, f| {
                b.iter(|| {
                    let mut db = f.as_datalog();
                    evaluate(&mut db, &baseline, Semantics::Modules, 100_000);
                    db
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
