//! E6/A2 — the §5 runtime linearity check: on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_core::EngineConfig;
use ruvo_workload::{enterprise_program, Enterprise, EnterpriseConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_linearity");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("check_on", n), &e, |b, e| {
            b.iter(|| ruvo_bench::run(enterprise_program(), &e.ob));
        });
        group.bench_with_input(BenchmarkId::new("check_off", n), &e, |b, e| {
            b.iter(|| {
                ruvo_bench::run_with(
                    enterprise_program(),
                    &e.ob,
                    EngineConfig { check_linearity: false, ..Default::default() },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
