//! A4 — amortized compilation: one-shot parse+stratify+run per
//! application vs. `Database::prepare` once + `apply` many times.
//!
//! Two workloads: the §2.1 salary-raise rule (1 rule, cheap to
//! compile) and the §2.3 enterprise update (4 rules, 3 strata — the
//! stratification is real work). The base size sweeps from "compile
//! cost dominates" (10 employees) to "evaluation dominates" (1000).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use ruvo_core::Database;
use ruvo_lang::Program;
use ruvo_obase::ObjectBase;
use ruvo_workload::{salary_raise_program, Enterprise, EnterpriseConfig};

const RAISE: &str = "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.";

const ENTERPRISE: &str = "
    rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
    rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
    rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
    rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.
";

fn base(n: usize) -> ObjectBase {
    Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() }).ob
}

/// Apply `src` `reps` times by re-parsing and re-stratifying each
/// time — the old `UpdateEngine::new(Program::parse(..)).run(..)` shape.
fn oneshot(src: &str, ob: &ObjectBase, reps: usize) -> usize {
    let mut db = Database::open(ob.clone());
    let mut total = 0;
    for _ in 0..reps {
        let program = Program::parse(src).expect("parses");
        let txn = db.apply_program(program).expect("applies");
        total += txn.facts_after;
    }
    total
}

/// Compile once, apply `reps` times.
fn prepared(src: &str, ob: &ObjectBase, reps: usize) -> usize {
    let mut db = Database::open(ob.clone());
    let prep = db.prepare(src).expect("compiles");
    let mut total = 0;
    for _ in 0..reps {
        total += db.apply(&prep).expect("applies").facts_after;
    }
    total
}

fn bench(c: &mut Criterion) {
    // Sanity: the workload crate's program is the same §2.1 rule.
    assert_eq!(salary_raise_program().len(), 1);
    const REPS: usize = 20;
    for (name, src) in [("raise", RAISE), ("enterprise", ENTERPRISE)] {
        let mut group = c.benchmark_group(format!("a4_prepared_vs_oneshot/{name}"));
        group.sample_size(10);
        for n in [10usize, 100, 1_000] {
            let ob = base(n);
            group.throughput(Throughput::Elements((n * REPS) as u64));
            group.bench_with_input(BenchmarkId::new("oneshot", n), &ob, |b, ob| {
                b.iter_batched(|| ob.clone(), |ob| oneshot(src, &ob, REPS), BatchSize::SmallInput);
            });
            group.bench_with_input(BenchmarkId::new("prepared", n), &ob, |b, ob| {
                b.iter_batched(|| ob.clone(), |ob| prepared(src, &ob, REPS), BatchSize::SmallInput);
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
