//! A1 — ablation: rule-level delta filtering on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_core::EngineConfig;
use ruvo_workload::{
    ancestors_program, enterprise_program, Enterprise, EnterpriseConfig, Family, FamilyConfig,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_delta_filter");
    group.sample_size(10);
    let fam = Family::generate(FamilyConfig {
        generations: 7,
        per_generation: 25,
        parents_per_person: 2,
        seed: 3,
    });
    let ent = Enterprise::generate(EnterpriseConfig { employees: 3_000, ..Default::default() });
    // Both sides run the full-scan matcher (naive_eval) so this
    // ablation isolates *rule-level filtering*; the indexed semi-naive
    // machinery is ablated separately in a5_seminaive.
    let filtered = EngineConfig::default().naive_eval(true);
    let naive = EngineConfig { delta_filtering: false, ..Default::default() }.naive_eval(true);
    group.bench_function(BenchmarkId::new("ancestors", "filtered"), |b| {
        b.iter(|| ruvo_bench::run_with(ancestors_program(), &fam.ob, filtered.clone()));
    });
    group.bench_function(BenchmarkId::new("ancestors", "naive"), |b| {
        b.iter(|| ruvo_bench::run_with(ancestors_program(), &fam.ob, naive.clone()));
    });
    group.bench_function(BenchmarkId::new("enterprise", "filtered"), |b| {
        b.iter(|| ruvo_bench::run_with(enterprise_program(), &ent.ob, filtered.clone()));
    });
    group.bench_function(BenchmarkId::new("enterprise", "naive"), |b| {
        b.iter(|| ruvo_bench::run_with(enterprise_program(), &ent.ob, naive.clone()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
