//! E7 — §3 frame-copy overhead: fixed update count, growing base,
//! plus a hot/cold ratio axis over a fixed base.
//!
//! The stored base is prepared once (`ensure_exists`), as a serving
//! database would keep it; each measured run then pays the engine's
//! actual frame-copy path — an O(shards) copy-on-write working-copy
//! clone, O(1) re-preparation, and per-touched-object update work —
//! instead of re-materializing 5·n `exists` facts per iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_lang::Program;
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Vid};

fn make_base(n: usize, hot: usize) -> ObjectBase {
    let mut ob = ObjectBase::new();
    for i in 0..n {
        let v = Vid::object(oid(&format!("x{i}")));
        ob.insert(v, sym("v"), Args::empty(), int(i as i64));
        for m in 0..3 {
            ob.insert(v, sym(&format!("pad{m}")), Args::empty(), int((i * m) as i64));
        }
        let marker = if i < hot { "hot" } else { "cold" };
        ob.insert(v, sym(marker), Args::empty(), int(1));
    }
    ob.ensure_exists();
    ob
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_copy_overhead");
    group.sample_size(10);
    let program =
        Program::parse("touch: mod[E].v -> (X, X2) <= E.hot -> 1 & E.v -> X & X2 = X + 1.")
            .unwrap();
    // Growing base, fixed hot set: time must track the hot set.
    for n in [1_000usize, 10_000, 50_000] {
        let ob = make_base(n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ob, |b, ob| {
            b.iter(|| ruvo_bench::run(program.clone(), ob));
        });
    }
    // Fixed base, growing hot set: time must scale with the ratio.
    for hot in [10usize, 100, 1_000, 10_000] {
        let ob = make_base(50_000, hot);
        group.bench_with_input(BenchmarkId::new("hot", hot), &ob, |b, ob| {
            b.iter(|| ruvo_bench::run(program.clone(), ob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
