//! F1 — Figure 1: k consecutive update groups on one object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_workload::{chain_object_base, chain_program};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_chain_depth");
    for k in [1usize, 4, 8, 16, 28] {
        let ob = chain_object_base();
        let all_ins = chain_program(k, false);
        group.bench_with_input(BenchmarkId::new("all_ins", k), &k, |b, _| {
            b.iter(|| ruvo_bench::run(all_ins.clone(), &ob));
        });
        let mixed = chain_program(k, true);
        group.bench_with_input(BenchmarkId::new("mixed", k), &k, |b, _| {
            b.iter(|| ruvo_bench::run(mixed.clone(), &ob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
