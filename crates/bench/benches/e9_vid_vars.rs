//! E9 — §6 VID variables: wildcard version scan vs chain-indexed audit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_lang::Program;
use ruvo_workload::{Enterprise, EnterpriseConfig};

fn programs() -> (Program, Program) {
    let wildcard = Program::parse(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.
         audit: ins[audit].flagged -> O <= $V.sal -> S & $V.exists -> O & S > 5000.",
    )
    .unwrap();
    let indexed = Program::parse(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.
         audit0: ins[audit].flagged -> O <= O.sal -> S & S > 5000.
         audit1: ins[audit].flagged -> O <= mod(O).sal -> S & S > 5000.",
    )
    .unwrap();
    (wildcard, indexed)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_vid_vars");
    group.sample_size(10);
    let (wildcard, indexed) = programs();
    for n in [500usize, 2_000] {
        let ent = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        group.bench_function(BenchmarkId::new("wildcard", n), |b| {
            b.iter(|| ruvo_bench::run(wildcard.clone(), &ent.ob));
        });
        group.bench_function(BenchmarkId::new("indexed", n), |b| {
            b.iter(|| ruvo_bench::run(indexed.clone(), &ent.ob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
