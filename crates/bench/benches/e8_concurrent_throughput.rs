//! E8C — concurrent serving throughput micro-costs.
//!
//! The experiment binary (`experiments E8C`) measures sustained
//! reader/writer throughput over wall-clock windows; this bench pins
//! the per-operation costs the serving layer promises: a snapshot off
//! the head ring is a few atomic operations regardless of write
//! traffic, and an uncontended group-commit apply adds only the
//! queue/ticket overhead on top of the underlying transaction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_core::ServingDatabase;
use ruvo_workload::{serving_scenario, ServingConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_concurrent_throughput");
    for objects in [100usize, 1_000] {
        let scenario =
            serving_scenario(ServingConfig { objects, writers: 1, ..Default::default() });
        let db = ServingDatabase::open(scenario.ob.clone());
        let credit = db
            .prepare("w: mod[A].balance -> (B, B2) <= A.grp -> 0 & A.balance -> B & B2 = B + 1.")
            .unwrap();

        group.bench_with_input(BenchmarkId::new("snapshot", objects), &db, |b, db| {
            b.iter(|| black_box(db.snapshot()));
        });
        group.bench_with_input(
            BenchmarkId::new("snapshot_lookup", objects),
            &(&db, &scenario),
            |b, (db, scenario)| {
                let mut i = 0usize;
                b.iter(|| {
                    let snap = db.snapshot();
                    let acct = scenario.read_objects[i % scenario.read_objects.len()];
                    i += 1;
                    black_box(snap.lookup1(acct, "balance"))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("apply_group_commit", objects),
            &(&db, &credit),
            |b, (db, credit)| {
                b.iter(|| black_box(db.apply(credit).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
