//! E8 — §2.4: ruvo vs the Logres-style module baseline on the same
//! enterprise update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_datalog::{evaluate, Semantics};
use ruvo_workload::{
    enterprise_baseline_datalog, enterprise_program, Enterprise, EnterpriseConfig,
};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_vs_datalog");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("ruvo", n), &e, |b, e| {
            b.iter(|| ruvo_bench::run(enterprise_program(), &e.ob));
        });
        let baseline = enterprise_baseline_datalog();
        group.bench_with_input(BenchmarkId::new("datalog_modules", n), &e, |b, e| {
            b.iter(|| {
                let mut db = e.as_datalog();
                evaluate(&mut db, &baseline, Semantics::Modules, 1_000);
                db
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
