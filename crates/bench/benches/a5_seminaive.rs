//! A5 — ablation: indexed semi-naive evaluation vs the naive
//! full-scan fixpoint, on a large enterprise base with sparse deltas.
//!
//! Two workloads over a 10k-employee (≥10k-version) enterprise:
//!
//! * `reachability` — a recursive propagation through the manager
//!   hierarchy. Each fixpoint round flags a handful of managers, so
//!   the naive path re-scans the full `boss` relation per flagged
//!   version per round, while the semi-naive path joins from the
//!   previous round's delta through the value-keyed `boss` index.
//! * `targeted_raise` — a single-pass update touching only one
//!   manager's direct reports. The bound result position
//!   (`E.boss -> e0`) drives the scan through the key index instead
//!   of enumerating all 10k employees.
//!
//! Besides the per-path medians, the bench prints the measured
//! speedup ratios (the ISSUE-2 acceptance target is ≥5× on
//! `reachability`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_core::EngineConfig;
use ruvo_lang::Program;
use ruvo_workload::{Enterprise, EnterpriseConfig};

/// Recursive reachability through the manager hierarchy: e0 is the
/// hierarchy root; a manager is reached once their boss is reached.
const REACHABILITY: &str = "
    seed: ins[e0].reach -> 1 <= e0.isa -> empl.
    prop: ins[E].reach -> 1 <= ins(B).reach -> 1 & E.boss -> B & E.pos -> mgr.
";

/// A sparse single-pass update: raise only e0's direct reports.
const TARGETED_RAISE: &str = "
    mod[E].sal -> (S, S2) <= E.boss -> e0 & E.sal -> S & S2 = S * 1.1.
";

fn ten_k_enterprise() -> Enterprise {
    Enterprise::generate(EnterpriseConfig {
        employees: 10_000,
        manager_ratio: 0.1,
        ..Default::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a5_seminaive");
    group.sample_size(10);
    let ent = ten_k_enterprise();
    let naive = EngineConfig::default().naive_eval(true);

    let program = |src: &str| Program::parse(src).unwrap();
    for (name, src) in [("reachability", REACHABILITY), ("targeted_raise", TARGETED_RAISE)] {
        group.bench_function(BenchmarkId::new(name, "seminaive"), |b| {
            b.iter(|| ruvo_bench::run(program(src), &ent.ob));
        });
        group.bench_function(BenchmarkId::new(name, "naive"), |b| {
            b.iter(|| ruvo_bench::run_with(program(src), &ent.ob, naive.clone()));
        });
    }
    group.finish();

    // Headline ratio (median-of-5), printed for the report: both paths
    // must agree on the result, and the semi-naive path must win.
    for (name, src, samples) in
        [("reachability", REACHABILITY, 5), ("targeted_raise", TARGETED_RAISE, 5)]
    {
        let fast_out = ruvo_bench::run(program(src), &ent.ob);
        let slow_out = ruvo_bench::run_with(program(src), &ent.ob, naive.clone());
        assert_eq!(fast_out.result(), slow_out.result(), "paths diverged on {name}");
        let fast = ruvo_bench::median_time(samples, || {
            ruvo_bench::run(program(src), &ent.ob);
        });
        let slow = ruvo_bench::median_time(samples, || {
            ruvo_bench::run_with(program(src), &ent.ob, naive.clone());
        });
        println!(
            "a5_seminaive/{name}: naive {} ms / seminaive {} ms  →  {:.1}× speedup",
            ruvo_bench::ms(slow),
            ruvo_bench::ms(fast),
            slow.as_secs_f64() / fast.as_secs_f64(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
