//! E5 — stratification cost on the paper's programs and generated ones.

use criterion::{criterion_group, criterion_main, Criterion};
use ruvo_core::stratify::stratify;
use ruvo_lang::Program;
use ruvo_workload::{chain_program, enterprise_program, hypothetical_program};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_stratify");
    let mut wide = String::new();
    for i in 0..400 {
        wide.push_str(&format!("w{i}: ins[X].m{i} -> 1 <= X.k{} -> 1.\n", i % 7));
    }
    let programs = vec![
        ("enterprise", enterprise_program()),
        ("hypothetical", hypothetical_program("peter")),
        ("chain28", chain_program(28, false)),
        ("wide400", Program::parse(&wide).unwrap()),
    ];
    for (name, program) in programs {
        group.bench_function(name, |b| b.iter(|| stratify(&program).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
