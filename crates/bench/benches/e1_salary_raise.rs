//! E1 — §2.1 salary raise, scaling in the number of employees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ruvo_workload::{salary_raise_program, Enterprise, EnterpriseConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_salary_raise");
    group.sample_size(10);
    for n in [100usize, 1_000, 10_000] {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &e, |b, e| {
            b.iter(|| ruvo_bench::run(salary_raise_program(), &e.ob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
