//! A6 — copy-on-write clone and first-write micro-costs.
//!
//! `ObjectBase::clone` must be O(shards): 5 × 16 `Arc` bumps however
//! many facts the base holds. Clone + one write additionally unshares
//! at most one shard per affected index (plus the one touched version
//! state), and `Database::snapshot` is a single `Arc` bump. The
//! benchmark runs each operation at 1k → 50k facts; the times must
//! stay flat for clone/snapshot and grow only with per-shard entry
//! counts for the first write.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ruvo_core::Database;
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Vid};

fn make_base(facts: usize) -> ObjectBase {
    // 5 data facts per object plus the `exists` fact added below.
    let objects = (facts / 6).max(1);
    let mut ob = ObjectBase::new();
    for i in 0..objects {
        let v = Vid::object(oid(&format!("x{i}")));
        ob.insert(v, sym("v"), Args::empty(), int(i as i64));
        for m in 0..3 {
            ob.insert(v, sym(&format!("pad{m}")), Args::empty(), int((i * m) as i64));
        }
        ob.insert(v, sym("marker"), Args::empty(), int(1));
    }
    ob.ensure_exists();
    ob
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a6_cow_clone");
    for facts in [1_000usize, 10_000, 50_000] {
        let ob = make_base(facts);
        group.bench_with_input(BenchmarkId::new("clone", facts), &ob, |b, ob| {
            b.iter(|| black_box(ob.clone()));
        });
        group.bench_with_input(BenchmarkId::new("clone_first_write", facts), &ob, |b, ob| {
            b.iter_batched(
                || ob.clone(),
                |mut copy| {
                    copy.insert(Vid::object(oid("fresh")), sym("w"), Args::empty(), int(7));
                    black_box(copy)
                },
                BatchSize::SmallInput,
            );
        });
        let db = Database::open(ob.clone());
        group.bench_with_input(BenchmarkId::new("snapshot", facts), &db, |b, db| {
            b.iter(|| black_box(db.snapshot()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
