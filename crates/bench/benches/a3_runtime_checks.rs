//! A3 — ablation: runtime stability checking (§6 extension) overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ruvo_core::{CyclePolicy, EngineConfig};
use ruvo_lang::Program;
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Vid};
use ruvo_workload::{enterprise_program, Enterprise, EnterpriseConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("a3_runtime_checks");
    group.sample_size(10);
    let ent = Enterprise::generate(EnterpriseConfig { employees: 3_000, ..Default::default() });
    let configs: [(&str, EngineConfig); 3] = [
        ("static", EngineConfig::default()),
        (
            "dynamic-policy",
            EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() },
        ),
        ("verify-stability", EngineConfig { verify_stability: true, ..Default::default() }),
    ];
    for (name, cfg) in configs {
        group.bench_function(BenchmarkId::new("enterprise", name), |b| {
            b.iter(|| ruvo_bench::run_with(enterprise_program(), &ent.ob, cfg.clone()));
        });
    }

    // The cyclic-but-stable program only the dynamic criterion accepts.
    let cyclic = Program::parse(
        "r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
         r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 9.",
    )
    .unwrap();
    let mut ob = ObjectBase::new();
    for i in 0..2_000 {
        let v = Vid::object(oid(&format!("a{i}")));
        ob.insert(v, sym("m"), Args::empty(), int(1));
        ob.insert(v, sym("trigger"), Args::empty(), int(1));
    }
    let dynamic = EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() };
    group.bench_function(BenchmarkId::new("cyclic_stable", "dynamic-policy"), |b| {
        b.iter(|| ruvo_bench::run_with(cyclic.clone(), &ob, dynamic.clone()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
