//! Minimal Markdown table builder for experiment reports.

use std::fmt::Write as _;

/// A Markdown table with a header row.
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render as aligned Markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for i in 0..cols {
                let _ = write!(out, " {:width$} |", cells[i], width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["n", "time"]);
        t.row(&["10".into(), "1.5".into()]);
        t.row(&["10000".into(), "200.0".into()]);
        let s = t.render();
        assert!(s.starts_with("| n     | time  |\n|-------|-------|\n"), "got:\n{s}");
        assert!(s.contains("| 10000 | 200.0 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(&["a", "b"]).row(&["x".into()]);
    }
}
