//! Print every experiment table from EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ruvo-bench --bin experiments            # full sweep
//! cargo run --release -p ruvo-bench --bin experiments -- --quick # small sizes
//! cargo run --release -p ruvo-bench --bin experiments -- E4 E8   # selected
//! cargo run --release -p ruvo-bench --bin experiments -- --json  # BENCH_pr10.json
//! ```
//!
//! `--json[=PATH]` skips the Markdown report and instead writes the
//! machine-readable E14 incremental-checkpoint record (dirty-set,
//! reopen, and commit-p99 axes) plus the E10 durability and E8C
//! concurrency records and the E7 + A6 medians
//! (the perf trajectory record) to `PATH`, default `BENCH_pr10.json`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(json_arg) = args.iter().find(|a| *a == "--json" || a.starts_with("--json=")) {
        let path = json_arg.strip_prefix("--json=").unwrap_or("BENCH_pr10.json");
        let json = ruvo_bench::experiments::bench_json(quick);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        println!("wrote {path}");
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    let experiments = ruvo_bench::experiments::all();
    if let Some(unknown) =
        selected.iter().find(|s| !experiments.iter().any(|(id, _, _)| id.eq_ignore_ascii_case(s)))
    {
        eprintln!("unknown experiment id: {unknown}");
        eprintln!(
            "available: {}",
            experiments.iter().map(|(id, _, _)| *id).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::from(2);
    }

    for (id, title, runner) in experiments {
        if !selected.is_empty() && !selected.iter().any(|s| s.eq_ignore_ascii_case(id)) {
            continue;
        }
        println!("## {id} — {title}\n");
        let (report, elapsed) = ruvo_bench::time(|| runner(quick));
        println!("{report}");
        println!("_({id} completed in {:.2}s)_\n", elapsed.as_secs_f64());
    }
    ExitCode::SUCCESS
}
