//! # ruvo-bench — the experiment harness
//!
//! One module per experiment in EXPERIMENTS.md. Each experiment
//! function returns a Markdown report fragment; the `experiments`
//! binary concatenates them, and the Criterion benches (in `benches/`)
//! time the same workloads statistically.
//!
//! The paper (VLDB'92) has no empirical tables — its "evaluation" is
//! worked examples and two figures — so the experiment set reproduces
//! every example/figure exactly and adds the scaling/ablation studies
//! a systems reader expects (see DESIGN.md §5 and EXPERIMENTS.md).

pub mod experiments;
pub mod table;

use std::time::{Duration, Instant};

use ruvo_core::{EngineConfig, Outcome, UpdateEngine};
use ruvo_lang::Program;
use ruvo_obase::ObjectBase;

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Run a program with the default engine; panics on evaluation errors
/// (experiment workloads are known-good).
pub fn run(program: Program, ob: &ObjectBase) -> Outcome {
    UpdateEngine::new(program).run(ob).expect("experiment workload evaluates")
}

/// Run with an explicit configuration.
pub fn run_with(program: Program, ob: &ObjectBase, config: EngineConfig) -> Outcome {
    UpdateEngine::with_config(program, config).run(ob).expect("experiment workload evaluates")
}

/// Format a duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Median-of-`n` timing for the experiments binary (cheap alternative
/// to Criterion for the printed tables).
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    assert!(n >= 1);
    let mut samples: Vec<Duration> = (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_time_is_positive() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
    }
}
