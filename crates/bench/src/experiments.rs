//! The experiment implementations (EXPERIMENTS.md index).
//!
//! Each function returns a Markdown fragment; assertions inside encode
//! the paper's stated outcomes, so running the experiments doubles as
//! an acceptance test of the reproduction.

use ruvo_core::{
    CyclePolicy, Database, EngineConfig, EvalError, QueryMode, ServingDatabase, UpdateEngine,
};
use ruvo_datalog::{evaluate, parse_program as parse_dl, Semantics};
use ruvo_lang::{Goal, Program};
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Vid};
use ruvo_workload::{
    ancestors_program, chain_object_base, chain_program, enterprise_baseline_datalog,
    enterprise_program, hypothetical_program, query_workload, random_insert_program,
    random_object_base, salary_raise_program, serving_scenario, Enterprise, EnterpriseConfig,
    Family, FamilyConfig, QueryConfig, RandomConfig, ServingConfig, ServingScenario,
    PAPER_ENTERPRISE_OB,
};

use crate::table::Table;
use crate::{median_time, ms, run, run_with};

/// An experiment entry: `(id, title, runner)`; the runner takes a
/// `quick` flag.
pub type Experiment = (&'static str, &'static str, fn(bool) -> String);

/// All experiments in index order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("F2", "§2.3 enterprise update — Figure 2 trace", f2_enterprise_trace),
        ("E1", "§2.1 salary raise — scaling", e1_salary_raise),
        ("E2", "§2.3 enterprise update — scaling", e2_enterprise),
        ("E3", "§2.3 hypothetical reasoning — scaling", e3_hypothetical),
        ("E4", "§2.3 recursive ancestors vs Datalog baseline", e4_ancestors),
        ("E5", "§4 stratification conditions (a)–(d)", e5_stratify),
        ("E6", "§5 version-linearity runtime check (ablation A2)", e6_linearity),
        ("E7", "§3 frame-copy overhead", e7_copy_overhead),
        ("E8", "§2.4 comparison vs Logres-style baseline", e8_vs_datalog),
        (
            "E8C",
            "concurrent serving — reader scaling × coarse-lock baseline",
            e8_concurrent_throughput,
        ),
        ("F1", "Figure 1 — k consecutive update groups", f1_chain_depth),
        ("A1", "ablation — rule-level delta filtering", a1_delta_filter),
        ("E9", "§6 VID variables — wildcard vs indexed audit", e9_vid_vars),
        ("A3", "ablation — §6 runtime stability checking", a3_runtime_checks),
        ("A6", "ablation — copy-on-write clone and snapshot micro-costs", a6_cow_clone),
        ("E10", "durable storage — append vs fsync, recovery, checkpoint cost", e10_durability),
        ("E11", "demand-driven queries — magic-set point query vs full evaluation", e11_demand),
        ("E12", "shard-parallel fixpoint — thread sweep and scaling", e12_parallel),
        ("E13", "rule-parallel fixpoint — dependency components and thread sweep", e13_parallel),
        (
            "E14",
            "incremental checkpoints — dirty-set sweep, chain reopen, commit p99",
            e14_incremental,
        ),
    ]
}

const REPS: usize = 5;

/// One timing sample in quick mode (tests), median-of-5 otherwise.
fn reps(quick: bool) -> usize {
    if quick {
        1
    } else {
        REPS
    }
}

fn enterprise_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![50, 200]
    } else {
        vec![100, 1_000, 10_000, 30_000]
    }
}

/// F2 — the paper's phil/bob object base through the 4-rule update,
/// printing every version state (Figure 2) and asserting the stated
/// outcome.
pub fn f2_enterprise_trace(_quick: bool) -> String {
    let ob = ObjectBase::parse(PAPER_ENTERPRISE_OB).unwrap();
    let outcome = run(enterprise_program(), &ob);
    let mut out = String::new();
    out.push_str(&format!(
        "stratification: {}  (paper: {{rule1, rule2}} < {{rule3}} < {{rule4}})\n\n",
        outcome.stratification()
    ));
    let mut t = Table::new(&["version", "state (method-applications, `exists` omitted)"]);
    for name in ["phil", "bob"] {
        let mut versions: Vec<Vid> = outcome.result().versions_of(oid(name)).collect();
        versions.sort_by_key(|v| v.depth());
        for v in versions {
            let state = outcome.result().version(v).unwrap();
            let mut apps: Vec<String> = state
                .iter()
                .filter(|(m, _)| *m != sym("exists"))
                .map(|(m, app)| format!("{m} {app:?}"))
                .collect();
            apps.sort();
            t.row(&[v.to_string(), apps.join("; ")]);
        }
    }
    out.push_str(&t.render());

    let ob2 = outcome.new_object_base();
    assert_eq!(ob2.lookup1(oid("phil"), "sal"), vec![int(4600)]);
    assert!(ob2.lookup1(oid("phil"), "isa").contains(&oid("hpe")));
    assert!(!ob2.objects().any(|o| o == oid("bob")));
    out.push_str("\noutcome: phil ∈ hpe at $4600; bob fired — matches the paper ✓\n");
    out
}

/// E1 — salary-raise scaling: every employee modified exactly once;
/// time should scale linearly in n.
pub fn e1_salary_raise(quick: bool) -> String {
    let mut t = Table::new(&["employees", "time (ms)", "µs/employee", "fired", "versions created"]);
    for n in enterprise_sizes(quick) {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let d = median_time(reps(quick), || {
            run(salary_raise_program(), &e.ob);
        });
        let outcome = run(salary_raise_program(), &e.ob);
        assert_eq!(outcome.stats().fired_updates, n, "one mod per employee");
        assert_eq!(outcome.stats().versions_created, n);
        t.row(&[
            n.to_string(),
            ms(d),
            format!("{:.2}", d.as_secs_f64() * 1e6 / n as f64),
            outcome.stats().fired_updates.to_string(),
            outcome.stats().versions_created.to_string(),
        ]);
    }
    t.render()
}

/// E2 — the full 4-rule enterprise update over generated hierarchies.
pub fn e2_enterprise(quick: bool) -> String {
    let mut t = Table::new(&[
        "employees",
        "time (ms)",
        "strata",
        "fired",
        "fired employees",
        "hpe members",
    ]);
    for n in enterprise_sizes(quick) {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let d = median_time(reps(quick), || {
            run(enterprise_program(), &e.ob);
        });
        let outcome = run(enterprise_program(), &e.ob);
        let ob2 = outcome.new_object_base();
        let survivors = ob2.objects().count();
        let hpe: usize = e
            .employees
            .iter()
            .filter(|&&emp| ob2.lookup1(emp, "isa").contains(&oid("hpe")))
            .count();
        t.row(&[
            n.to_string(),
            ms(d),
            outcome.stratification().len().to_string(),
            outcome.stats().fired_updates.to_string(),
            (n - survivors).to_string(),
            hpe.to_string(),
        ]);
    }
    t.render()
}

/// E3 — hypothetical reasoning (raise, revert, record answer) over
/// employees with per-object factors.
pub fn e3_hypothetical(quick: bool) -> String {
    let mut t = Table::new(&["employees", "time (ms)", "strata", "fired", "answer for e0"]);
    for n in enterprise_sizes(quick) {
        let e = Enterprise::generate(EnterpriseConfig {
            employees: n,
            with_factor: true,
            ..Default::default()
        });
        let program = hypothetical_program("e0");
        let d = median_time(reps(quick), || {
            run(program.clone(), &e.ob);
        });
        let outcome = run(program, &e.ob);
        let ob2 = outcome.new_object_base();
        let answer = ob2.lookup1(oid("e0"), "richest");
        // Salaries were reverted for every employee.
        for (i, &emp) in e.employees.iter().enumerate().take(50) {
            assert_eq!(ob2.lookup1(emp, "sal"), vec![int(e.salaries[i])], "revert {emp}");
        }
        t.row(&[
            n.to_string(),
            ms(d),
            outcome.stratification().len().to_string(),
            outcome.stats().fired_updates.to_string(),
            answer.first().map_or("-".into(), |c| c.to_string()),
        ]);
    }
    t.render()
}

/// E4 — recursive ancestors: versioned formulation vs the semi-naive
/// Datalog baseline; identical pair counts, comparable round counts.
pub fn e4_ancestors(quick: bool) -> String {
    let configs: Vec<(usize, usize)> =
        if quick { vec![(3, 8), (4, 8)] } else { vec![(3, 10), (5, 20), (7, 30), (9, 40)] };
    let mut t = Table::new(&[
        "generations × width",
        "persons",
        "anc pairs",
        "ruvo (ms)",
        "ruvo rounds",
        "datalog (ms)",
        "datalog rounds",
    ]);
    for (g, w) in configs {
        let f = Family::generate(FamilyConfig {
            generations: g,
            per_generation: w,
            parents_per_person: 2,
            seed: 7,
        });
        let d_ruvo = median_time(reps(quick), || {
            run(ancestors_program(), &f.ob);
        });
        let outcome = run(ancestors_program(), &f.ob);
        let ob2 = outcome.new_object_base();
        let ruvo_pairs: usize =
            f.generations.iter().flatten().map(|&p| ob2.lookup1(p, "anc").len()).sum();

        let baseline = parse_dl(
            "anc(X, P) <= parents(X, P).
             anc(X, P) <= anc(X, A) & parents(A, P).",
        )
        .unwrap();
        let d_dl = median_time(reps(quick), || {
            let mut db = f.as_datalog();
            evaluate(&mut db, &baseline, Semantics::Modules, 100_000);
        });
        let mut db = f.as_datalog();
        let report = evaluate(&mut db, &baseline, Semantics::Modules, 100_000);
        assert_eq!(db.arity_count(sym("anc")), ruvo_pairs, "pair counts agree");

        t.row(&[
            format!("{g} × {w}"),
            f.population().to_string(),
            ruvo_pairs.to_string(),
            ms(d_ruvo),
            outcome.stats().rounds.to_string(),
            ms(d_dl),
            report.rounds.to_string(),
        ]);
    }
    t.render()
}

/// E5 — the stratifier over the paper's programs, generated chains and
/// a wide synthetic program, plus the reject cases.
pub fn e5_stratify(quick: bool) -> String {
    let wide_n = if quick { 30 } else { 400 };
    let mut wide = String::new();
    for i in 0..wide_n {
        wide.push_str(&format!("w{i}: ins[X].m{i} -> 1 <= X.k{} -> 1.\n", i % 7));
    }
    let named: Vec<(&str, Program)> = vec![
        ("enterprise (4 rules)", enterprise_program()),
        ("hypothetical (4 rules)", hypothetical_program("peter")),
        ("ancestors (2 rules)", ancestors_program()),
        ("chain k=12 (12 rules)", chain_program(12, true)),
        ("chain k=28 (28 rules)", chain_program(28, false)),
        ("wide independent", Program::parse(&wide).unwrap()),
    ];
    let mut t = Table::new(&["program", "rules", "constraints", "strata", "time (ms)"]);
    for (name, program) in named {
        let engine = UpdateEngine::new(program.clone());
        let d = median_time(reps(quick), || {
            engine.stratify().unwrap();
        });
        let s = engine.stratify().unwrap();
        t.row(&[
            name.to_string(),
            program.len().to_string(),
            s.edges.len().to_string(),
            s.len().to_string(),
            ms(d),
        ]);
    }
    let mut out = t.render();

    out.push_str("\nreject cases (expected: not stratifiable):\n");
    let rejects = [
        ("self-negation", "r: ins[X].p -> 1 <= X.q -> 1 & not ins(X).p -> 1."),
        (
            "mutual negation",
            "r1: ins[X].p -> 1 <= X.o -> 1 & not del(X).q -> 1.
             r2: del[X].q -> 1 <= X.o -> 1 & not ins(X).p -> 1.",
        ),
        ("read-while-deleting", "r: del[mod(E)].p -> 1 <= del(mod(E)).q -> 1."),
    ];
    for (name, src) in rejects {
        let err = UpdateEngine::new(Program::parse(src).unwrap())
            .stratify()
            .expect_err("must be rejected");
        out.push_str(&format!("- {name}: rejected via condition {} ✓\n", err.condition));
    }
    out
}

/// E6 — the §5 runtime check: overhead on clean workloads (ablation
/// A2) and detection on the paper's conflicting program.
pub fn e6_linearity(quick: bool) -> String {
    let mut t = Table::new(&["employees", "check on (ms)", "check off (ms)", "overhead"]);
    for n in enterprise_sizes(quick) {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let on = median_time(reps(quick), || {
            run(enterprise_program(), &e.ob);
        });
        let off = median_time(reps(quick), || {
            run_with(
                enterprise_program(),
                &e.ob,
                EngineConfig { check_linearity: false, ..Default::default() },
            );
        });
        let overhead = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
        t.row(&[n.to_string(), ms(on), ms(off), format!("{overhead:+.1}%")]);
    }
    let mut out = t.render();

    let bad = Program::parse(
        "mod[o].m -> (a, b) <= o.m -> a.
         del[o].m -> a <= o.m -> a.",
    )
    .unwrap();
    let err = UpdateEngine::new(bad)
        .run(&ObjectBase::parse("o.m -> a.").unwrap())
        .expect_err("§5 conflict must be detected");
    match err {
        EvalError::Linearity(v) => {
            out.push_str(&format!("\ndetection: {v} ✓\n"));
        }
        other => panic!("expected linearity violation, got {other}"),
    }
    out
}

/// One E7 measurement: the `touch` update over a base of `objects`
/// versions (5 facts each) of which `hot` are touched.
pub struct E7Row {
    /// Objects in the base (5 facts each).
    pub objects: usize,
    /// Objects the update touches.
    pub hot: usize,
    /// One-shot run on a raw base: CoW clone + first `exists`
    /// materialization + evaluation (paid once per loaded base).
    pub cold_ms: f64,
    /// Run on a prepared base: O(shards) clone + O(1) re-preparation +
    /// evaluation — the steady-state cost of the serving path.
    pub steady_ms: f64,
    /// Frame-copy volume (`T_P` step 2).
    pub facts_copied: usize,
    /// Versions created by the run.
    pub versions_created: usize,
}

/// The E7 workload base: `n` objects with 5 facts each, the first
/// `hot` of them carrying the `hot` marker the update rule matches.
fn e7_base(n: usize, hot: usize) -> ObjectBase {
    let mut ob = ObjectBase::new();
    for i in 0..n {
        let v = Vid::object(oid(&format!("x{i}")));
        ob.insert(v, sym("v"), Args::empty(), int(i as i64));
        for m in 0..3 {
            ob.insert(v, sym(&format!("pad{m}")), Args::empty(), int((i * m) as i64));
        }
        let marker = if i < hot { "hot" } else { "cold" };
        ob.insert(v, sym(marker), Args::empty(), int(1));
    }
    ob
}

fn e7_program() -> Program {
    Program::parse("touch: mod[E].v -> (X, X2) <= E.hot -> 1 & E.v -> X & X2 = X + 1.").unwrap()
}

/// Measure one E7 configuration (shared by the report and
/// [`bench_json`]).
pub fn e7_measure(quick: bool, n: usize, hot: usize) -> E7Row {
    let program = e7_program();
    let raw = e7_base(n, hot);
    // Cold: every iteration re-pays the first-time preparation (the
    // working copy is discarded, so the caller's base stays raw).
    let cold = median_time(reps(quick), || {
        run(program.clone(), &raw);
    });
    // Steady state: the stored base is prepared once; each run is an
    // O(shards) clone + O(1) re-preparation + the actual update work.
    let mut prepared = raw;
    prepared.ensure_exists();
    let steady = median_time(reps(quick), || {
        run(program.clone(), &prepared);
    });
    let outcome = run(program.clone(), &prepared);
    assert_eq!(outcome.stats().versions_created, hot);
    E7Row {
        objects: n,
        hot,
        cold_ms: cold.as_secs_f64() * 1e3,
        steady_ms: steady.as_secs_f64() * 1e3,
        facts_copied: outcome.stats().facts_copied,
        versions_created: outcome.stats().versions_created,
    }
}

/// The E7 size sweep (fixed hot set, growing base).
pub fn e7_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![500, 2_000]
    } else {
        vec![1_000, 10_000, 50_000, 100_000]
    }
}

/// The E7 hot/cold ratio sweep (fixed base, growing hot set).
pub fn e7_ratio_axis(quick: bool) -> (usize, Vec<usize>) {
    if quick {
        (2_000, vec![10, 100])
    } else {
        (50_000, vec![10, 100, 1_000, 10_000])
    }
}

/// E7 — the frame-problem note of §3: "By copying old states only for
/// the objects being updated (and not the whole object-base), we keep
/// the unavoidable overhead low." Fixed update count over a growing
/// base, then a hot/cold ratio sweep over a fixed base.
pub fn e7_copy_overhead(quick: bool) -> String {
    let hot = 100usize;
    let mut t = Table::new(&[
        "objects (5 facts each)",
        "hot objects",
        "cold start (ms)",
        "steady state (ms)",
        "facts copied",
        "versions created",
    ]);
    for n in e7_sizes(quick) {
        let row = e7_measure(quick, n, hot.min(n));
        t.row(&[
            row.objects.to_string(),
            row.hot.to_string(),
            format!("{:.3}", row.cold_ms),
            format!("{:.3}", row.steady_ms),
            row.facts_copied.to_string(),
            row.versions_created.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\ncopies and created versions stay proportional to the updated (hot) objects — the\n\
         frame-problem note of §3. Cold start pays the one-time `exists` materialization of\n\
         a raw base; steady state runs against a prepared base, where the working copy is an\n\
         O(shards) copy-on-write clone and re-preparation is O(1).\n\n",
    );

    let (ratio_n, hots) = e7_ratio_axis(quick);
    let mut rt = Table::new(&[
        "hot objects",
        "hot ratio",
        "steady state (ms)",
        "facts copied",
        "µs/hot object",
    ]);
    for hot in hots {
        let row = e7_measure(quick, ratio_n, hot);
        rt.row(&[
            row.hot.to_string(),
            format!("{:.2}%", 100.0 * row.hot as f64 / ratio_n as f64),
            format!("{:.3}", row.steady_ms),
            row.facts_copied.to_string(),
            format!("{:.2}", row.steady_ms * 1e3 / row.hot as f64),
        ]);
    }
    out.push_str(&format!("hot/cold ratio sweep at {ratio_n} objects:\n\n"));
    out.push_str(&rt.render());
    out.push_str(
        "\nsteady-state time tracks the hot set, not the base: cloning is O(shards) and\n\
         mutation unshares only the index shards the touched objects route to.\n",
    );
    out
}

/// One A6 measurement: clone / first-write / snapshot micro-costs at a
/// given base size.
pub struct A6Row {
    /// Facts in the base.
    pub facts: usize,
    /// `ObjectBase::clone` (O(shards) Arc bumps).
    pub clone_us: f64,
    /// Clone + one inserted fact (unshares ≤ 1 shard per index).
    pub clone_first_write_us: f64,
    /// `Database::snapshot` (one Arc bump).
    pub snapshot_us: f64,
    /// Index shards the single write unshared.
    pub unshared_after_write: usize,
    /// Total index shards per base.
    pub total_shards: usize,
}

/// Average microseconds per call over enough iterations to be stable
/// at sub-microsecond scales (median of 5 samples).
fn tight_us(quick: bool, mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    // Calibrate an inner iteration count targeting ~5ms per sample.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(std::time::Duration::from_nanos(40));
    let inner = ((5_000_000 / once.as_nanos().max(1)) as usize).clamp(1, 100_000);
    let samples = if quick { 2 } else { 5 };
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_secs_f64() * 1e6 / inner as f64
        })
        .collect();
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

/// Measure one A6 base size (shared by the report and [`bench_json`]).
pub fn a6_measure(quick: bool, facts: usize) -> A6Row {
    // 5 data facts per object plus the `exists` fact `ensure_exists`
    // materializes ⇒ 6 stored facts per object.
    let objects = (facts / 6).max(1);
    let mut ob = e7_base(objects, 100.min(objects));
    ob.ensure_exists();
    let clone_us = tight_us(quick, || {
        std::hint::black_box(ob.clone());
    });
    let mut i = 0u64;
    let clone_first_write_us = tight_us(quick, || {
        let mut copy = ob.clone();
        copy.insert(Vid::object(oid("fresh")), sym("w"), Args::empty(), int(i as i64));
        i += 1;
        std::hint::black_box(copy);
    });
    let db = ruvo_core::Database::open(ob.clone());
    let snapshot_us = tight_us(quick, || {
        std::hint::black_box(db.snapshot());
    });
    let mut copy = ob.clone();
    copy.insert(Vid::object(oid("fresh")), sym("w"), Args::empty(), int(1));
    let stats = copy.cow_stats(&ob);
    A6Row {
        facts: ob.len(),
        clone_us,
        clone_first_write_us,
        snapshot_us,
        unshared_after_write: stats.unshared_shards(),
        total_shards: stats.total(),
    }
}

/// The A6 size sweep, in facts.
pub fn a6_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1_000, 5_000]
    } else {
        vec![1_000, 10_000, 50_000]
    }
}

/// A6 — copy-on-write clone cost in isolation: `ObjectBase::clone`
/// must be O(shards) (flat across base sizes), a clone + first write
/// must pay at most a few shards, and `Database::snapshot` must stay
/// O(1).
pub fn a6_cow_clone(quick: bool) -> String {
    let rows: Vec<A6Row> = a6_sizes(quick).into_iter().map(|f| a6_measure(quick, f)).collect();
    let mut t = Table::new(&[
        "facts",
        "clone (µs)",
        "clone + 1 write (µs)",
        "snapshot (µs)",
        "shards unshared by write",
    ]);
    for row in &rows {
        t.row(&[
            row.facts.to_string(),
            format!("{:.3}", row.clone_us),
            format!("{:.3}", row.clone_first_write_us),
            format!("{:.3}", row.snapshot_us),
            format!("{}/{}", row.unshared_after_write, row.total_shards),
        ]);
    }
    let mut out = t.render();
    let (first, last) = (&rows[0], &rows[rows.len() - 1]);
    let ratio = last.clone_us / first.clone_us;
    out.push_str(&format!(
        "\nclone cost ratio {} → {} facts: {ratio:.2}× (flat ⇒ O(shards), not O(facts));\n\
         a single write unshares at most a few of the {} index shards.\n",
        first.facts, last.facts, last.total_shards,
    ));
    // Report a flatness regression instead of panicking mid-sweep: a
    // noisy host can blow a wall-clock ratio past any fixed bound.
    if ratio >= 2.0 {
        out.push_str(&format!(
            "⚠ REGRESSION: clone cost grew {ratio:.2}× across base sizes — expected flat \
             (O(shards)).\n"
        ));
    }
    out
}

/// Machine-readable medians for the perf trajectory: the E14
/// incremental-checkpoint axes, the E13 rule-parallel and E12
/// shard-parallel thread sweeps, the E11 / E10 / E8C axes, the E7
/// size and ratio sweeps, and the A6 micro-costs, as one JSON
/// document (written to `BENCH_pr10.json` by `experiments --json`).
pub fn bench_json(quick: bool) -> String {
    let hot = 100usize;
    let sizes: Vec<String> = e7_sizes(quick)
        .into_iter()
        .map(|n| {
            let r = e7_measure(quick, n, hot.min(n));
            format!(
                "    {{\"objects\": {}, \"hot\": {}, \"cold_ms\": {:.3}, \"steady_ms\": {:.3}, \
                 \"facts_copied\": {}}}",
                r.objects, r.hot, r.cold_ms, r.steady_ms, r.facts_copied
            )
        })
        .collect();
    let (ratio_n, hots) = e7_ratio_axis(quick);
    let ratios: Vec<String> = hots
        .into_iter()
        .map(|h| {
            let r = e7_measure(quick, ratio_n, h);
            format!(
                "    {{\"hot\": {}, \"steady_ms\": {:.3}, \"facts_copied\": {}}}",
                r.hot, r.steady_ms, r.facts_copied
            )
        })
        .collect();
    let a6: Vec<String> = a6_sizes(quick)
        .into_iter()
        .map(|f| {
            let r = a6_measure(quick, f);
            format!(
                "    {{\"facts\": {}, \"clone_us\": {:.3}, \"clone_first_write_us\": {:.3}, \
                 \"snapshot_us\": {:.3}, \"unshared_after_write\": {}, \"total_shards\": {}}}",
                r.facts,
                r.clone_us,
                r.clone_first_write_us,
                r.snapshot_us,
                r.unshared_after_write,
                r.total_shards
            )
        })
        .collect();
    // The PR-4 axis: concurrent serving throughput. Reader scaling is
    // hardware-dependent, so the visible CPU count is part of the
    // record; the serving-vs-coarse-lock ratio is meaningful even on
    // one core (it measures reader stalls behind commits, not
    // parallelism).
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let serving_rows: Vec<E8cRow> =
        e8c_reader_counts().into_iter().map(|r| e8c_measure_serving(quick, r, 1)).collect();
    let locked = e8c_measure_locked(quick, 8, 1);
    let scaling = serving_rows.last().expect("sweep").reads_per_sec
        / serving_rows.first().expect("sweep").reads_per_sec;
    let vs_locked = serving_rows.last().expect("sweep").reads_per_sec / locked.reads_per_sec;
    let row_json = |r: &E8cRow| {
        format!(
            "{{\"readers\": {}, \"writers\": {}, \"reads_per_sec\": {:.0}, \
             \"commits_per_sec\": {:.1}, \"read_batch_mean_us\": {:.1}, \
             \"read_batch_max_us\": {:.0}}}",
            r.readers,
            r.writers,
            r.reads_per_sec,
            r.commits_per_sec,
            r.mean_read_batch_us,
            r.max_read_batch_us
        )
    };
    let stall_ratio = locked.max_read_batch_us
        / serving_rows.last().expect("sweep").max_read_batch_us.max(f64::EPSILON);
    let serving_json: Vec<String> =
        serving_rows.iter().map(|r| format!("    {}", row_json(r))).collect();

    // The PR-5 axis: durability costs (fsync policies vs the volatile
    // baseline, recovery scaling, checkpoint cost).
    let fsync_rows: Vec<String> = e10_fsync_policies()
        .into_iter()
        .map(|(name, policy)| {
            let r = e10_measure_fsync(quick, name, policy);
            format!(
                "    {{\"policy\": \"{}\", \"commits\": {}, \"wall_ms\": {:.1}, \
                 \"commits_per_sec\": {:.0}}}",
                r.policy, r.commits, r.wall_ms, r.commits_per_sec
            )
        })
        .collect();
    let recovery_rows: Vec<String> = e10_recovery_sizes(quick)
        .into_iter()
        .map(|commits| {
            let r = e10_measure_recovery(commits);
            format!(
                "    {{\"wal_records\": {}, \"wal_bytes\": {}, \"recover_ms\": {:.1}, \
                 \"us_per_commit\": {:.1}}}",
                r.commits,
                r.wal_bytes,
                r.recover_ms,
                r.recover_ms * 1e3 / r.commits.max(1) as f64
            )
        })
        .collect();
    let checkpoint_rows: Vec<String> = e10_checkpoint_sizes(quick)
        .into_iter()
        .map(|objects| {
            let r = e10_measure_checkpoint(objects);
            format!(
                "    {{\"facts\": {}, \"checkpoint_ms\": {:.1}, \"reopen_ms\": {:.1}}}",
                r.facts, r.checkpoint_ms, r.reopen_ms
            )
        })
        .collect();

    // The PR-7 axis: demand-driven queries (magic-set point query vs
    // the full-evaluation escape hatch).
    let e11_rows: Vec<String> = e11_sizes(quick)
        .into_iter()
        .map(|n| {
            let r = e11_measure(quick, n);
            format!(
                "    {{\"employees\": {}, \"facts\": {}, \"full_ms\": {:.3}, \
                 \"demand_ms\": {:.3}, \"speedup\": {:.1}}}",
                r.employees, r.facts, r.full_ms, r.demand_ms, r.speedup
            )
        })
        .collect();

    // The PR-8 axis: shard-parallel fixpoint thread sweep. The
    // bit-identity assertion runs on every host; the speedup gate only
    // where it can mean anything (≥4 CPUs, full mode) — and the record
    // says which happened.
    let mut e12_delta_rows: Vec<String> = Vec::new();
    let mut e12_bulk_rows: Vec<String> = Vec::new();
    let mut e12_sp4 = 0.0f64;
    for (name, (program, ob)) in e12_workloads(quick) {
        let (serial, reference) = e12_measure(quick, &program, &ob, 0);
        let delta_heavy = name.starts_with("delta-heavy");
        let dest = if delta_heavy { &mut e12_delta_rows } else { &mut e12_bulk_rows };
        dest.push(format!("     {{\"threads\": 0, \"wall_ms\": {:.3}}}", serial.wall_ms));
        for threads in e12_threads(quick) {
            let (row, ob2) = e12_measure(quick, &program, &ob, threads);
            assert_eq!(ob2, reference, "{name}: parallel ob' diverged at {threads} threads");
            let speedup = serial.wall_ms / row.wall_ms.max(f64::EPSILON);
            if threads == 4 && delta_heavy {
                e12_sp4 = speedup;
            }
            dest.push(format!(
                "     {{\"threads\": {}, \"wall_ms\": {:.3}, \"scan_wall_ms\": {:.3}, \
                 \"apply_wall_ms\": {:.3}, \"scan_subtasks\": {}, \"seed_splits\": {}, \
                 \"speedup\": {speedup:.2}}}",
                row.threads,
                row.wall_ms,
                row.scan_wall_ms,
                row.apply_wall_ms,
                row.scan_subtasks,
                row.seed_splits
            ));
        }
    }
    let e12_gate = match e12_speedup_gate(quick, cpus) {
        Ok(()) => {
            assert!(e12_sp4 >= 2.0, "delta-heavy speedup at 4 threads below 2x: {e12_sp4:.2}");
            "\"pass\"".to_string()
        }
        Err(why) => format!("\"skipped: {why}\""),
    };
    let e12_stall_serial = e8c_measure_serving_config(quick, 2, 1, None);
    let e12_stall_parallel = e8c_measure_serving_config(quick, 2, 1, Some(e12_config(2)));

    // The PR-9 axis: rule-parallel fixpoint via dependency components.
    let (e13_program, e13_ob) = e13_workload(quick);
    let e13_compiled =
        ruvo_core::CompiledProgram::compile(e13_program.clone(), CyclePolicy::Reject)
            .expect("E13 workload compiles");
    let e13_components = e13_compiled.deps().components().len();
    let (e13_serial, e13_reference) = e12_measure(quick, &e13_program, &e13_ob, 0);
    let mut e13_rows: Vec<String> =
        vec![format!("     {{\"threads\": 0, \"wall_ms\": {:.3}}}", e13_serial.wall_ms)];
    let mut e13_sp4 = 0.0f64;
    let mut e13_component_jobs = 0usize;
    for threads in e12_threads(quick) {
        let (row, ob2) = e12_measure(quick, &e13_program, &e13_ob, threads);
        assert_eq!(ob2, e13_reference, "E13: rule-parallel ob' diverged at {threads} threads");
        let outcome = run_with(e13_program.clone(), &e13_ob, e12_config(threads));
        let par = outcome.stats().parallel;
        if threads == 2 {
            e13_component_jobs = par.component_jobs;
        }
        let speedup = e13_serial.wall_ms / row.wall_ms.max(f64::EPSILON);
        if threads == 4 {
            e13_sp4 = speedup;
        }
        e13_rows.push(format!(
            "     {{\"threads\": {}, \"wall_ms\": {:.3}, \"scan_wall_ms\": {:.3}, \
             \"component_jobs\": {}, \"speedup\": {speedup:.2}}}",
            row.threads, row.wall_ms, row.scan_wall_ms, par.component_jobs
        ));
    }
    let e13_gate = match e12_speedup_gate(quick, cpus) {
        Ok(()) => {
            assert!(e13_sp4 >= 2.0, "rule-parallel speedup at 4 threads below 2x: {e13_sp4:.2}");
            "\"pass\"".to_string()
        }
        Err(why) => format!("\"skipped: {why}\""),
    };

    // The PR-10 axis: incremental checkpoints — the dirty-set sweep,
    // chain-vs-compacted reopen, and commit p99 under a background
    // checkpoint. Payload incrementality is asserted on every host;
    // the wall-clock gates follow the experiment's own rules.
    let e14_objects = e14_dirty_objects(quick);
    let mut e14_gate_speedup = 0.0f64;
    let e14_dirty_rows: Vec<String> = e14_dirty_cells(quick)
        .into_iter()
        .map(|(dirty, clustered)| {
            let r = e14_measure_dirty(e14_objects, dirty, clustered);
            if clustered && dirty == e14_objects / 100 {
                assert!(r.delta_bytes * 4 <= r.full_bytes, "1% clustered delta not incremental");
                e14_gate_speedup = r.speedup;
            }
            format!(
                "    {{\"facts\": {}, \"dirty\": {}, \"layout\": \"{}\", \"dirty_shards\": {}, \
                 \"delta_ms\": {:.2}, \"delta_bytes\": {}, \"full_ms\": {:.2}, \
                 \"full_bytes\": {}, \"speedup\": {:.1}}}",
                r.facts,
                r.dirty,
                r.layout,
                r.dirty_shards,
                r.delta_ms,
                r.delta_bytes,
                r.full_ms,
                r.full_bytes,
                r.speedup
            )
        })
        .collect();
    let e14_gate = if quick {
        "\"skipped: quick mode\"".to_string()
    } else {
        assert!(
            e14_gate_speedup >= 10.0,
            "steady-state delta checkpoint below 10x: {e14_gate_speedup:.1}x"
        );
        "\"pass\"".to_string()
    };
    let e14_reopen_rows: Vec<String> = e14_reopen_sizes(quick)
        .into_iter()
        .map(|objects| {
            let r = e14_measure_reopen(objects);
            format!(
                "    {{\"facts\": {}, \"generations\": {}, \"chain_reopen_ms\": {:.1}, \
                 \"compacted_reopen_ms\": {:.1}}}",
                r.facts, r.generations, r.chain_reopen_ms, r.full_reopen_ms
            )
        })
        .collect();
    let _ = e14_measure_serve(quick, false); // discard: process warmup
    let e14_baseline = e14_measure_serve(quick, false);
    let e14_concurrent = e14_measure_serve(quick, true);
    let e14_serve_json = |r: &E14ServeRow| {
        format!(
            "{{\"commits\": {}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"max_us\": {:.0}, \
             \"checkpoints_completed\": {}}}",
            r.commits, r.p50_us, r.p99_us, r.max_us, r.checkpoints
        )
    };
    let e14_ratio = e14_concurrent.p99_us / e14_baseline.p99_us.max(f64::EPSILON);
    let e14_p99 = match e14_p99_gate(quick, cpus) {
        Ok(()) => {
            assert!(e14_ratio <= 1.5, "background checkpoint inflated p99 {e14_ratio:.2}x");
            "\"pass\"".to_string()
        }
        Err(why) => format!("\"skipped: {why}\""),
    };

    format!(
        "{{\n  \"pr\": 10,\n  \"quick\": {quick},\n  \"cpus\": {cpus},\n  \
         \"e14_incremental_checkpoints\": {{\n   \
         \"dirty_sweep\": [\n{}\n   ],\n   \
         \"incremental_gate\": {e14_gate},\n   \
         \"reopen\": [\n{}\n   ],\n   \
         \"serve_p99\": {{\n    \"baseline\": {},\n    \"background_16\": {},\n    \
         \"p99_ratio\": {e14_ratio:.2},\n    \"p99_gate\": {e14_p99}\n   }},\n   \
         \"recovered_bit_identical\": true\n  }},\n  \
         \"e13_rule_parallel\": {{\n   \
         \"rules\": {},\n   \
         \"components\": {e13_components},\n   \
         \"component_jobs_2t\": {e13_component_jobs},\n   \
         \"rows\": [\n{}\n   ],\n   \
         \"identical_results\": true,\n   \
         \"speedup_4t\": {e13_sp4:.2},\n   \
         \"speedup_gate\": {e13_gate}\n  }},\n  \
         \"e12_parallel_fixpoint\": {{\n   \
         \"delta_heavy\": [\n{}\n   ],\n   \
         \"bulk_load\": [\n{}\n   ],\n   \
         \"identical_results\": true,\n   \
         \"speedup_4t_delta_heavy\": {e12_sp4:.2},\n   \
         \"speedup_gate\": {e12_gate},\n   \
         \"read_stall_serial_writer\": {},\n   \
         \"read_stall_parallel_writer\": {}\n  }},\n  \
         \"e11_demand_queries\": [\n{}\n  ],\n  \
         \"e10_durability\": {{\n   \"fsync\": [\n{}\n   ],\n   \
         \"recovery\": [\n{}\n   ],\n   \"checkpoint\": [\n{}\n   ]\n  }},\n  \
         \"e8_concurrent_throughput\": {{\n   \"objects\": {},\n   \
         \"reads_per_snapshot\": {E8C_READS_PER_SNAPSHOT},\n   \"serving\": [\n{}\n   ],\n   \
         \"locked_8r_1w\": {},\n   \
         \"reader_scaling_1_to_8\": {scaling:.2},\n   \
         \"serving_vs_locked_8r\": {vs_locked:.2},\n   \
         \"locked_vs_serving_max_read_stall\": {stall_ratio:.1}\n  }},\n  \
         \"e7\": {{\n   \"hot\": {hot},\n   \
         \"sizes\": [\n{}\n   ],\n   \"ratio_objects\": {ratio_n},\n   \"ratio\": [\n{}\n   ]\n  \
         }},\n  \"a6\": [\n{}\n  ]\n}}\n",
        e14_dirty_rows.join(",\n"),
        e14_reopen_rows.join(",\n"),
        e14_serve_json(&e14_baseline),
        e14_serve_json(&e14_concurrent),
        e13_program.len(),
        e13_rows.join(",\n"),
        e12_delta_rows.join(",\n"),
        e12_bulk_rows.join(",\n"),
        row_json(&e12_stall_serial),
        row_json(&e12_stall_parallel),
        e11_rows.join(",\n"),
        fsync_rows.join(",\n"),
        recovery_rows.join(",\n"),
        checkpoint_rows.join(",\n"),
        e8c_objects(quick),
        serving_json.join(",\n"),
        row_json(&locked),
        sizes.join(",\n"),
        ratios.join(",\n"),
        a6.join(",\n")
    )
}

/// One E8C measurement cell: `readers` reader threads against
/// `writers` writer threads for a fixed wall-clock window.
pub struct E8cRow {
    /// Reader threads.
    pub readers: usize,
    /// Writer threads.
    pub writers: usize,
    /// Aggregate snapshot-lookups per second across all readers.
    pub reads_per_sec: f64,
    /// Committed transactions per second across all writers.
    pub commits_per_sec: f64,
    /// Mean latency of one read batch (snapshot / lock acquisition +
    /// 16 lookups), µs. For the coarse-lock baseline this includes
    /// time queued behind commits; for serving it cannot.
    pub mean_read_batch_us: f64,
    /// Worst observed read-batch latency, µs (on a loaded host this
    /// includes scheduler preemption for both designs; the coarse
    /// lock additionally pays whole-commit waits).
    pub max_read_batch_us: f64,
}

/// Per-reader latency accumulator for the E8C reader loops.
#[derive(Default)]
struct E8cReaderStats {
    reads: u64,
    batches: u64,
    total_ns: u128,
    max_ns: u128,
}

impl E8cReaderStats {
    fn record(&mut self, batch_ns: u128) {
        self.batches += 1;
        self.reads += E8C_READS_PER_SNAPSHOT as u64;
        self.total_ns += batch_ns;
        self.max_ns = self.max_ns.max(batch_ns);
    }

    /// Fold per-reader stats into `(reads_total, mean_us, max_us)`.
    fn aggregate(all: &[E8cReaderStats]) -> (u64, f64, f64) {
        let reads: u64 = all.iter().map(|s| s.reads).sum();
        let batches: u64 = all.iter().map(|s| s.batches).sum();
        let total: u128 = all.iter().map(|s| s.total_ns).sum();
        let max: u128 = all.iter().map(|s| s.max_ns).max().unwrap_or(0);
        let mean_us = if batches == 0 { 0.0 } else { total as f64 / batches as f64 / 1_000.0 };
        (reads, mean_us, max as f64 / 1_000.0)
    }
}

/// Lookups a reader performs per snapshot before refreshing its view.
const E8C_READS_PER_SNAPSHOT: usize = 16;

fn e8c_window_ms(quick: bool) -> u64 {
    if quick {
        40
    } else {
        400
    }
}

/// Accounts in the E8C workload (also what the report header and the
/// JSON record cite — keep all three in agreement by construction).
fn e8c_objects(quick: bool) -> usize {
    if quick {
        100
    } else {
        1_000
    }
}

fn e8c_scenario(quick: bool) -> ServingScenario {
    serving_scenario(ServingConfig {
        objects: e8c_objects(quick),
        writers: 2,
        pad_methods: 3,
        seed: 42,
    })
}

/// Drive `readers` × `writers` threads against a [`ServingDatabase`]
/// for one window; asserts the post-run balance sum matches the
/// serialized writer history exactly (no lost or torn update).
pub fn e8c_measure_serving(quick: bool, readers: usize, writers: usize) -> E8cRow {
    e8c_measure_serving_config(quick, readers, writers, None)
}

/// [`e8c_measure_serving`] with the serving database opened under an
/// explicit engine configuration — E12 uses it to measure read-stall
/// tails behind a *parallel* group-commit writer.
pub fn e8c_measure_serving_config(
    quick: bool,
    readers: usize,
    writers: usize,
    config: Option<EngineConfig>,
) -> E8cRow {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    let scenario = e8c_scenario(quick);
    let db = match config {
        None => ServingDatabase::open(scenario.ob.clone()),
        Some(cfg) => {
            ServingDatabase::new(Database::builder().config(cfg).open(scenario.ob.clone()))
        }
    };
    let programs: Vec<_> = (0..writers)
        .map(|g| {
            ruvo_core::Prepared::compile(scenario.writer_programs[g].clone(), CyclePolicy::Reject)
                .expect("writer program compiles")
        })
        .collect();
    let stop = AtomicBool::new(false);
    let window = std::time::Duration::from_millis(e8c_window_ms(quick));
    let started = Instant::now();
    let (reads, commits) = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                let db = db.clone();
                let keys = &scenario.read_objects;
                let stop = &stop;
                s.spawn(move || {
                    let mut stats = E8cReaderStats::default();
                    let mut i = r * 17; // decorrelate thread walk order
                    while !stop.load(Ordering::Relaxed) {
                        let batch = Instant::now();
                        let snap = db.snapshot();
                        for _ in 0..E8C_READS_PER_SNAPSHOT {
                            let acct = keys[i % keys.len()];
                            std::hint::black_box(snap.lookup1(acct, "balance"));
                            i += 1;
                        }
                        stats.record(batch.elapsed().as_nanos());
                    }
                    stats
                })
            })
            .collect();
        let writer_handles: Vec<_> = (0..writers)
            .map(|g| {
                let db = db.clone();
                let prepared = programs[g].clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut commits = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        db.apply(&prepared).expect("writer program applies");
                        commits += 1;
                    }
                    commits
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let stats: Vec<E8cReaderStats> =
            reader_handles.into_iter().map(|h| h.join().expect("reader")).collect();
        let commits: Vec<usize> =
            writer_handles.into_iter().map(|h| h.join().expect("writer")).collect();
        (stats, commits)
    });
    let elapsed = started.elapsed().as_secs_f64();
    // Serializability witness: the final sum is exactly the initial sum
    // plus one credit per (commit, group member).
    assert_eq!(
        scenario.balance_sum(&db.current()),
        scenario.expected_balance_sum(&commits),
        "lost or torn update across {} commits",
        commits.iter().sum::<usize>()
    );
    let (total_reads, mean_us, max_us) = E8cReaderStats::aggregate(&reads);
    E8cRow {
        readers,
        writers,
        reads_per_sec: total_reads as f64 / elapsed,
        commits_per_sec: commits.iter().sum::<usize>() as f64 / elapsed,
        mean_read_batch_us: mean_us,
        max_read_batch_us: max_us,
    }
}

/// The coarse-lock strawman: one `Mutex<Database>`, every read and
/// every write behind it. What serving would look like without the
/// swapped head — readers stall for every commit's full duration.
pub fn e8c_measure_locked(quick: bool, readers: usize, writers: usize) -> E8cRow {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    let scenario = e8c_scenario(quick);
    let db = Mutex::new(Database::open(scenario.ob.clone()));
    let programs: Vec<_> = (0..writers)
        .map(|g| {
            ruvo_core::Prepared::compile(scenario.writer_programs[g].clone(), CyclePolicy::Reject)
                .expect("writer program compiles")
        })
        .collect();
    let stop = AtomicBool::new(false);
    let window = std::time::Duration::from_millis(e8c_window_ms(quick));
    let started = Instant::now();
    let (reads, commits) = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..readers)
            .map(|r| {
                let db = &db;
                let keys = &scenario.read_objects;
                let stop = &stop;
                s.spawn(move || {
                    let mut stats = E8cReaderStats::default();
                    let mut i = r * 17;
                    while !stop.load(Ordering::Relaxed) {
                        let batch = Instant::now();
                        let guard = db.lock().expect("not poisoned");
                        for _ in 0..E8C_READS_PER_SNAPSHOT {
                            let acct = keys[i % keys.len()];
                            std::hint::black_box(guard.current().lookup1(acct, "balance"));
                            i += 1;
                        }
                        stats.record(batch.elapsed().as_nanos());
                    }
                    stats
                })
            })
            .collect();
        let writer_handles: Vec<_> = (0..writers)
            .map(|g| {
                let db = &db;
                let prepared = programs[g].clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut commits = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        db.lock().expect("not poisoned").apply(&prepared).expect("applies");
                        commits += 1;
                    }
                    commits
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let stats: Vec<E8cReaderStats> =
            reader_handles.into_iter().map(|h| h.join().expect("reader")).collect();
        let commits: Vec<usize> =
            writer_handles.into_iter().map(|h| h.join().expect("writer")).collect();
        (stats, commits)
    });
    let elapsed = started.elapsed().as_secs_f64();
    let guard = db.lock().expect("not poisoned");
    assert_eq!(scenario.balance_sum(guard.current()), scenario.expected_balance_sum(&commits));
    let (total_reads, mean_us, max_us) = E8cReaderStats::aggregate(&reads);
    E8cRow {
        readers,
        writers,
        reads_per_sec: total_reads as f64 / elapsed,
        commits_per_sec: commits.iter().sum::<usize>() as f64 / elapsed,
        mean_read_batch_us: mean_us,
        max_read_batch_us: max_us,
    }
}

/// The reader-thread axis of the E8C sweep.
pub fn e8c_reader_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// E8C — concurrent serving throughput: N snapshot readers against a
/// continuously committing writer on a [`ServingDatabase`], versus a
/// single `Mutex<Database>` where readers queue behind every commit.
///
/// Reader scaling with thread count needs hardware parallelism — the
/// report records the visible CPU count next to the ratio so a 1-core
/// CI runner's flat curve is not mistaken for contention. The
/// serving-vs-locked ratio is meaningful on any core count: it
/// measures time readers spend blocked behind commits, not
/// parallelism.
pub fn e8_concurrent_throughput(quick: bool) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!(
        "workload: {} accounts, {E8C_READS_PER_SNAPSHOT} lookups per snapshot, \
         writer credits its group each commit; visible CPUs: {cpus}\n\n",
        e8c_objects(quick)
    );
    let mut t = Table::new(&[
        "configuration",
        "readers",
        "reads/s",
        "commits/s",
        "batch mean (µs)",
        "batch max (µs)",
    ]);
    let push = |t: &mut Table, name: &str, row: &E8cRow| {
        t.row(&[
            name.into(),
            row.readers.to_string(),
            format!("{:.0}", row.reads_per_sec),
            if row.writers == 0 { "-".into() } else { format!("{:.0}", row.commits_per_sec) },
            format!("{:.1}", row.mean_read_batch_us),
            format!("{:.0}", row.max_read_batch_us),
        ]);
    };
    let baseline = e8c_measure_serving(quick, 1, 0);
    push(&mut t, "serving, no writer", &baseline);
    let mut serving: Vec<E8cRow> = Vec::new();
    for readers in e8c_reader_counts() {
        let row = e8c_measure_serving(quick, readers, 1);
        push(&mut t, "serving, 1 writer", &row);
        serving.push(row);
    }
    let locked = e8c_measure_locked(quick, 8, 1);
    push(&mut t, "coarse lock, 1 writer", &locked);
    out.push_str(&t.render());
    let first = serving.first().expect("sweep ran");
    let last = serving.last().expect("sweep ran");
    let scaling = last.reads_per_sec / first.reads_per_sec;
    let vs_locked = last.reads_per_sec / locked.reads_per_sec;
    let stall = locked.max_read_batch_us / last.max_read_batch_us.max(f64::EPSILON);
    out.push_str(&format!(
        "\nreader scaling 1→{}: {scaling:.2}× (needs ≥{} CPUs to show; this host has {cpus})\n\
         serving vs coarse lock at 8 readers: {vs_locked:.2}× throughput, \
         {stall:.1}× smaller worst-case read stall\n",
        last.readers, last.readers
    ));
    // Whatever the hardware, the writer must never stop the readers
    // entirely, and every run must serialize (asserted inside the
    // measurement helpers).
    assert!(last.reads_per_sec > 0.0 && last.commits_per_sec > 0.0);
    out
}

/// E8 — the §2.4 control comparison: ruvo vs the Logres-style baseline
/// under module / collapsed / inflationary semantics, on the $4100
/// variant where order sensitivity shows.
pub fn e8_vs_datalog(quick: bool) -> String {
    // Correctness: the $4100 scenario.
    let mut out = String::from(
        "scenario: phil (mgr, $4000) is bob's boss; bob earns $4100.\n\
         correct outcome (paper §2.4): raises first — bob 4510 < phil 4600, bob stays, both hpe.\n\n",
    );
    let mut t = Table::new(&["system", "bob employed?", "bob sal", "bob hpe?", "verdict"]);

    // ruvo.
    let ob = ObjectBase::parse(
        "phil.isa -> empl.  phil.pos -> mgr.    phil.sal -> 4000.
         bob.isa -> empl.   bob.boss -> phil.   bob.sal -> 4100.",
    )
    .unwrap();
    let ob2 = run(enterprise_program(), &ob).new_object_base();
    let bob_in = ob2.lookup1(oid("bob"), "isa").contains(&oid("empl"));
    let bob_sal = ob2.lookup1(oid("bob"), "sal");
    let bob_hpe = ob2.lookup1(oid("bob"), "isa").contains(&oid("hpe"));
    assert!(bob_in && bob_hpe && bob_sal == vec![int(4510)]);
    t.row(&["ruvo (VIDs)".into(), "yes".into(), "4510".into(), "yes".into(), "correct ✓".into()]);

    // Plain stratified Datalog¬ (automatic predicate stratification)
    // cannot even accept the program: `sal` is read and deleted through
    // a cycle with `sal2`. The full spectrum of control:
    // VIDs (implicit) > manual modules > auto-stratification (rejects)
    // > none (wrong).
    let auto = ruvo_datalog::auto_stratify(&enterprise_baseline_datalog());
    let auto_err = auto.expect_err("read/delete cycle must be rejected");
    t.row(&[
        "datalog, auto-stratified".into(),
        "—".into(),
        "—".into(),
        "—".into(),
        format!("rejected ({} cycle)", auto_err.cycle.join("/")),
    ]);

    // Baseline in three semantics.
    let dl_scenario = "empl(phil). empl(bob). mgr(phil). boss(bob, phil).
                       sal(phil, 4000). sal(bob, 4100).";
    for (name, semantics) in [
        ("datalog, ordered modules", Semantics::Modules),
        ("datalog, collapsed", Semantics::Collapsed),
        ("datalog, inflationary", Semantics::Inflationary),
    ] {
        let mut db = ruvo_datalog::parser::parse_db(dl_scenario).unwrap();
        // 60 rounds cap: enough for the module fixpoints (≤ 6 rounds)
        // and enough to expose the inflationary runaway (1.1^k growth)
        // without letting the diverging relation get huge.
        evaluate(&mut db, &enterprise_baseline_datalog(), semantics, 60);
        let employed = db.contains(sym("empl"), &[oid("bob")]);
        let sal: Vec<String> = db
            .tuples(sym("sal"))
            .filter(|tup| tup[0] == oid("bob"))
            .map(|tup| tup[1].to_string())
            .collect();
        let hpe = db.contains(sym("hpe"), &[oid("bob")]);
        let correct = employed && hpe && sal == vec!["4510".to_string()];
        t.row(&[
            name.into(),
            if employed { "yes" } else { "no" }.into(),
            sal.join("/"),
            if hpe { "yes" } else { "no" }.into(),
            if correct { "correct ✓".into() } else { "WRONG ✗".to_string() },
        ]);
    }
    out.push_str(&t.render());

    // Performance on generated enterprises (both correct variants).
    let mut perf = Table::new(&["employees", "ruvo (ms)", "datalog modules (ms)"]);
    for n in enterprise_sizes(quick) {
        let e = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let d_ruvo = median_time(reps(quick), || {
            run(enterprise_program(), &e.ob);
        });
        let baseline = enterprise_baseline_datalog();
        let d_dl = median_time(reps(quick), || {
            let mut db = e.as_datalog();
            evaluate(&mut db, &baseline, Semantics::Modules, 1_000);
        });
        perf.row(&[n.to_string(), ms(d_ruvo), ms(d_dl)]);
    }
    out.push('\n');
    out.push_str(&perf.render());
    out
}

/// F1 — k consecutive update groups on one object: the engine produces
/// exactly k strata and a depth-k version chain.
pub fn f1_chain_depth(quick: bool) -> String {
    let ks: Vec<usize> = if quick { vec![1, 4, 8] } else { vec![1, 2, 4, 8, 12, 16, 22, 28] };
    let mut t = Table::new(&["k", "kinds", "strata", "final VID depth", "time (ms)"]);
    for &k in &ks {
        for mixed in [false, true] {
            let ob = chain_object_base();
            let program = chain_program(k, mixed);
            let d = median_time(reps(quick), || {
                run(program.clone(), &ob);
            });
            let outcome = run(program.clone(), &ob);
            let depth = outcome.final_versions().unwrap()[&oid("o")].depth();
            assert_eq!(depth, k);
            assert_eq!(outcome.stratification().len(), k);
            t.row(&[
                k.to_string(),
                if mixed { "mod/del/ins".into() } else { "all ins".to_string() },
                outcome.stratification().len().to_string(),
                depth.to_string(),
                ms(d),
            ]);
        }
    }
    t.render()
}

/// A1 — rule-level delta filtering on vs off. Filtering pays on
/// rule-rich programs where most rules are unaffected by a round's
/// changes; on rule-poor recursive programs the affected rules *are*
/// the program and the ablation is neutral.
pub fn a1_delta_filter(quick: bool) -> String {
    let mut out = String::new();
    let mut t = Table::new(&[
        "workload",
        "filtered (ms)",
        "naive (ms)",
        "speedup",
        "evals filtered",
        "evals naive",
    ]);
    let fam = Family::generate(FamilyConfig {
        generations: if quick { 4 } else { 8 },
        per_generation: if quick { 8 } else { 30 },
        parents_per_person: 2,
        seed: 3,
    });
    let ent = Enterprise::generate(EnterpriseConfig {
        employees: if quick { 200 } else { 5_000 },
        ..Default::default()
    });
    // A wide program: many independent rules over few shared relations.
    let (wide_rules, wide_objects) = if quick { (30, 50) } else { (400, 300) };
    let mut wide_src = String::new();
    for i in 0..wide_rules {
        wide_src.push_str(&format!("w{i}: ins[X].m{i} -> 1 <= X.k{} -> 1.\n", i % 7));
    }
    let wide_program = Program::parse(&wide_src).unwrap();
    let mut wide_ob = ObjectBase::new();
    for o in 0..wide_objects {
        for k in 0..7 {
            wide_ob.insert(
                Vid::object(oid(&format!("o{o}"))),
                sym(&format!("k{k}")),
                Args::empty(),
                int(1),
            );
        }
    }
    let workloads: Vec<(&str, Program, &ObjectBase)> = vec![
        ("ancestors (recursive)", ancestors_program(), &fam.ob),
        ("enterprise (3 strata)", enterprise_program(), &ent.ob),
        ("wide (independent rules)", wide_program, &wide_ob),
    ];
    for (name, program, ob) in workloads {
        // Both sides run the full-scan matcher (naive_eval) so this
        // ablation isolates *rule-level filtering*; the indexed
        // semi-naive machinery has its own ablation (A5).
        let fast_cfg = EngineConfig::default().naive_eval(true);
        let slow_cfg =
            EngineConfig { delta_filtering: false, ..Default::default() }.naive_eval(true);
        let d_fast = median_time(reps(quick), || {
            run_with(program.clone(), ob, fast_cfg.clone());
        });
        let d_slow = median_time(reps(quick), || {
            run_with(program.clone(), ob, slow_cfg.clone());
        });
        let fast = run_with(program.clone(), ob, fast_cfg);
        let slow = run_with(program.clone(), ob, slow_cfg.clone());
        assert_eq!(fast.result(), slow.result(), "filtering must not change results");
        t.row(&[
            name.into(),
            ms(d_fast),
            ms(d_slow),
            format!("{:.2}×", d_slow.as_secs_f64() / d_fast.as_secs_f64()),
            fast.stats().rule_evaluations.to_string(),
            slow.stats().rule_evaluations.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// E9 — §6 VID variables: the version-audit workload, once with a
/// `$V` wildcard (scans every version) and once as the equivalent
/// chain-indexed two-rule formulation. After the salary raise the only
/// versions are `e` and `mod(e)`, so both programs flag exactly the
/// same objects; the measurement is the price of an open version scan.
pub fn e9_vid_vars(quick: bool) -> String {
    const THRESHOLD: i64 = 5_000;
    let wildcard_src = format!(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.
         audit: ins[audit].flagged -> O <= $V.sal -> S & $V.exists -> O & S > {THRESHOLD}."
    );
    let indexed_src = format!(
        "raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.
         audit0: ins[audit].flagged -> O <= O.sal -> S & S > {THRESHOLD}.
         audit1: ins[audit].flagged -> O <= mod(O).sal -> S & S > {THRESHOLD}."
    );
    let wildcard = Program::parse(&wildcard_src).unwrap();
    let indexed = Program::parse(&indexed_src).unwrap();

    let mut out = String::new();
    let mut t = Table::new(&["employees", "wildcard (ms)", "indexed (ms)", "slowdown", "flagged"]);
    let sizes = if quick { vec![50, 200] } else { vec![500, 2_000, 8_000] };
    for n in sizes {
        let ent = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let d_wild = median_time(reps(quick), || {
            run(wildcard.clone(), &ent.ob);
        });
        let d_idx = median_time(reps(quick), || {
            run(indexed.clone(), &ent.ob);
        });
        let ob_wild = run(wildcard.clone(), &ent.ob).new_object_base();
        let ob_idx = run(indexed.clone(), &ent.ob).new_object_base();
        assert_eq!(ob_wild, ob_idx, "wildcard and indexed audits must agree");
        let flagged = ob_wild.lookup1(oid("audit"), "flagged").len();
        assert!(flagged > 0, "threshold must flag someone at n = {n}");
        t.row(&[
            n.to_string(),
            ms(d_wild),
            ms(d_idx),
            format!("{:.2}x", d_wild.as_secs_f64() / d_idx.as_secs_f64()),
            flagged.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nBoth formulations produce identical object bases; the wildcard pays\n\
         an all-versions scan per evaluation round and forfeits rule-level\n\
         delta filtering (its trigger set is unbounded).\n",
    );
    out
}

/// A3 — ablation: what the §6 runtime-checking machinery costs.
///
/// On the statically stratifiable enterprise workload,
/// `CyclePolicy::RuntimeStability` must be free (identical strata, no
/// flagged SCCs) while `verify_stability` pays full per-round rule
/// re-evaluation plus the fired-set subset check. A second table runs
/// the statically rejected but dynamically stable cyclic program that
/// only the runtime criterion can evaluate.
pub fn a3_runtime_checks(quick: bool) -> String {
    let mut out = String::new();
    let mut t = Table::new(&[
        "employees",
        "static (ms)",
        "dynamic policy (ms)",
        "verify-stability (ms)",
        "verify overhead",
    ]);
    let sizes = if quick { vec![100] } else { vec![1_000, 5_000] };
    for n in sizes {
        let ent = Enterprise::generate(EnterpriseConfig { employees: n, ..Default::default() });
        let program = enterprise_program();
        let static_cfg = EngineConfig::default();
        let dynamic_cfg =
            EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() };
        let verify_cfg = EngineConfig { verify_stability: true, ..Default::default() };
        let d_static = median_time(reps(quick), || {
            run_with(program.clone(), &ent.ob, static_cfg.clone());
        });
        let d_dynamic = median_time(reps(quick), || {
            run_with(program.clone(), &ent.ob, dynamic_cfg.clone());
        });
        let d_verify = median_time(reps(quick), || {
            run_with(program.clone(), &ent.ob, verify_cfg.clone());
        });
        let r_static = run_with(program.clone(), &ent.ob, static_cfg);
        let r_dynamic = run_with(program.clone(), &ent.ob, dynamic_cfg);
        let r_verify = run_with(program.clone(), &ent.ob, verify_cfg);
        assert_eq!(r_static.result(), r_dynamic.result());
        assert_eq!(r_static.result(), r_verify.result());
        t.row(&[
            n.to_string(),
            ms(d_static),
            ms(d_dynamic),
            ms(d_verify),
            format!("{:.2}x", d_verify.as_secs_f64() / d_static.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());

    // The broader-acceptance side: a cyclic-but-stable program.
    let cyclic = Program::parse(
        "r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
         r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 9.",
    )
    .unwrap();
    let n = if quick { 50 } else { 2_000 };
    let mut ob = ObjectBase::new();
    for i in 0..n {
        let v = Vid::object(oid(&format!("a{i}")));
        ob.insert(v, sym("m"), Args::empty(), int(1));
        ob.insert(v, sym("trigger"), Args::empty(), int(1));
    }
    let static_err = UpdateEngine::new(cyclic.clone()).run(&ob).unwrap_err();
    assert!(matches!(static_err, EvalError::NotStratifiable(_)));
    let dynamic_cfg = EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() };
    let d_dyn = median_time(reps(quick), || {
        run_with(cyclic.clone(), &ob, dynamic_cfg.clone());
    });
    let outcome = run_with(cyclic.clone(), &ob, dynamic_cfg);
    let ob2 = outcome.new_object_base();
    assert_eq!(ob2.lookup1(oid("a0"), "m"), vec![]);
    out.push_str(&format!(
        "\nCyclic-but-stable program over {n} objects: statically rejected\n\
         (condition (b)/(c) cycle), accepted under the runtime criterion in\n\
         {} ms with the expected result (every m deleted, go inserted).\n",
        ms(d_dyn)
    ));
    out
}

// ----- E10: durable storage ------------------------------------------

/// A scratch data directory for one E10 measurement (recreated per
/// call so runs never see a predecessor's state).
fn e10_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ruvo-e10-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const E10_BUMP: &str = "mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.";
const E10_SEED: &str = "acct.balance -> 0.";

fn e10_commit_count(quick: bool) -> usize {
    if quick {
        40
    } else {
        400
    }
}

/// One fsync-policy cell: `commits` durable commits end to end.
pub struct E10FsyncRow {
    /// Human name of the policy.
    pub policy: &'static str,
    /// Commits applied.
    pub commits: usize,
    /// Wall-clock for the whole stream, ms.
    pub wall_ms: f64,
    /// Commit throughput.
    pub commits_per_sec: f64,
}

fn e10_measure_fsync(
    quick: bool,
    policy: &'static str,
    fsync: Option<ruvo_core::FsyncPolicy>,
) -> E10FsyncRow {
    use ruvo_core::CheckpointPolicy;
    let commits = e10_commit_count(quick);
    let (mut db, dir) = match fsync {
        None => (Database::open_src(E10_SEED).unwrap(), None),
        Some(fsync) => {
            let dir = e10_dir(&format!("fsync-{fsync:?}"));
            let db = Database::builder()
                .data_dir(&dir)
                .fsync(fsync)
                .checkpoint_policy(CheckpointPolicy::never())
                .seed_src(E10_SEED)
                .unwrap()
                .open_dir()
                .unwrap();
            (db, Some(dir))
        }
    };
    let bump = db.prepare(E10_BUMP).unwrap();
    let (_, wall) = crate::time(|| {
        for _ in 0..commits {
            db.apply(&bump).unwrap();
        }
    });
    assert_eq!(db.current().lookup1(oid("acct"), "balance"), vec![int(commits as i64)]);
    if let Some(dir) = dir {
        // Acknowledged ⇒ recoverable, whatever the fsync policy (a
        // clean drop flushes nothing extra — the log already has it).
        drop(db);
        let recovered = Database::open_dir(dir).unwrap();
        assert_eq!(
            recovered.current().lookup1(oid("acct"), "balance"),
            vec![int(commits as i64)],
            "policy {policy} lost commits"
        );
    }
    E10FsyncRow {
        policy,
        commits,
        wall_ms: wall.as_secs_f64() * 1e3,
        commits_per_sec: commits as f64 / wall.as_secs_f64(),
    }
}

/// One recovery cell: reopen time for a WAL of `commits` records.
pub struct E10RecoveryRow {
    /// Records in the replayed WAL.
    pub commits: usize,
    /// WAL payload bytes replayed.
    pub wal_bytes: u64,
    /// `Database::open_dir` wall-clock, ms.
    pub recover_ms: f64,
}

fn e10_measure_recovery(commits: usize) -> E10RecoveryRow {
    use ruvo_core::CheckpointPolicy;
    let dir = e10_dir(&format!("recovery-{commits}"));
    {
        let mut db = Database::builder()
            .data_dir(&dir)
            .checkpoint_policy(CheckpointPolicy::never())
            .seed_src(E10_SEED)
            .unwrap()
            .open_dir()
            .unwrap();
        let bump = db.prepare(E10_BUMP).unwrap();
        for _ in 0..commits {
            db.apply(&bump).unwrap();
        }
    }
    let wal_bytes = ruvo_core::store::read_state(&dir).unwrap().stats.wal_bytes;
    let (db, wall) = crate::time(|| Database::open_dir(&dir).unwrap());
    assert_eq!(db.current().lookup1(oid("acct"), "balance"), vec![int(commits as i64)]);
    E10RecoveryRow { commits, wal_bytes, recover_ms: wall.as_secs_f64() * 1e3 }
}

/// One checkpoint cell: snapshot cost and checkpoint-only reopen time
/// for a base of `facts` facts.
pub struct E10CheckpointRow {
    /// Facts in the checkpointed base.
    pub facts: usize,
    /// `Database::checkpoint` wall-clock, ms.
    pub checkpoint_ms: f64,
    /// Reopen time when recovery is checkpoint-only (empty WAL), ms.
    pub reopen_ms: f64,
}

fn e10_measure_checkpoint(objects: usize) -> E10CheckpointRow {
    use ruvo_core::CheckpointPolicy;
    let dir = e10_dir(&format!("ckpt-{objects}"));
    let mut ob = ObjectBase::new();
    for i in 0..objects {
        let v = Vid::object(oid(&format!("o{i}")));
        ob.insert(v, sym("balance"), Args::new(vec![]), int(i as i64));
        ob.insert(v, sym("kind"), Args::new(vec![]), ruvo_term::Const::Sym(sym("live")));
    }
    let facts = ob.len();
    let mut db = Database::builder()
        .data_dir(&dir)
        .checkpoint_policy(CheckpointPolicy::never())
        .seed(ob)
        .open_dir()
        .unwrap();
    db.apply_src("ins[o0].flag -> 1.").unwrap();
    let (_, wall) = crate::time(|| db.checkpoint().unwrap());
    drop(db);
    let (recovered, reopen) = crate::time(|| Database::open_dir(&dir).unwrap());
    assert_eq!(recovered.current().len(), facts + 1);
    E10CheckpointRow {
        facts,
        checkpoint_ms: wall.as_secs_f64() * 1e3,
        reopen_ms: reopen.as_secs_f64() * 1e3,
    }
}

fn e10_fsync_policies() -> Vec<(&'static str, Option<ruvo_core::FsyncPolicy>)> {
    vec![
        ("volatile (no WAL)", None),
        ("wal + fsync always", Some(ruvo_core::FsyncPolicy::Always)),
        ("wal + fsync every 8", Some(ruvo_core::FsyncPolicy::EveryN(8))),
        ("wal + fsync never", Some(ruvo_core::FsyncPolicy::Never)),
    ]
}

fn e10_recovery_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![10, 50]
    } else {
        vec![100, 500, 2_000]
    }
}

fn e10_checkpoint_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![100, 1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    }
}

/// E10 — the durability experiment: what the WAL costs on the commit
/// path (by fsync policy, against the volatile baseline), how
/// recovery time scales with the replayed log, and what a checkpoint
/// costs as the base grows. Every cell asserts the recovered state,
/// so this doubles as the durability acceptance sweep.
pub fn e10_durability(quick: bool) -> String {
    let mut out = String::new();

    let mut t = Table::new(&["commit pipeline", "commits", "wall (ms)", "commits/s"]);
    for (name, policy) in e10_fsync_policies() {
        let row = e10_measure_fsync(quick, name, policy);
        t.row(&[
            row.policy.into(),
            row.commits.to_string(),
            format!("{:.1}", row.wall_ms),
            format!("{:.0}", row.commits_per_sec),
        ]);
    }
    out.push_str("Append throughput vs fsync policy (group size 1 — worst case;\n");
    out.push_str("the serving layer amortizes one fsync across a whole batch):\n\n");
    out.push_str(&t.render());

    let mut t = Table::new(&["wal records", "wal bytes", "recovery (ms)", "µs/commit"]);
    for commits in e10_recovery_sizes(quick) {
        let row = e10_measure_recovery(commits);
        t.row(&[
            row.commits.to_string(),
            row.wal_bytes.to_string(),
            format!("{:.1}", row.recover_ms),
            format!("{:.1}", row.recover_ms * 1e3 / row.commits as f64),
        ]);
    }
    out.push_str("\nRecovery time vs WAL length (checkpointing disabled, so the\n");
    out.push_str("whole history replays — this is the cost checkpoints bound):\n\n");
    out.push_str(&t.render());

    let mut t = Table::new(&["facts", "checkpoint (ms)", "checkpoint-only reopen (ms)"]);
    for objects in e10_checkpoint_sizes(quick) {
        let row = e10_measure_checkpoint(objects);
        t.row(&[
            row.facts.to_string(),
            format!("{:.1}", row.checkpoint_ms),
            format!("{:.1}", row.reopen_ms),
        ]);
    }
    out.push_str("\nCheckpoint cost vs base size (snapshot write + WAL truncation,\n");
    out.push_str("and the reopen that loads only the checkpoint):\n\n");
    out.push_str(&t.render());
    out.push_str(
        "\nEvery cell re-opened its directory and verified the recovered state —\n\
         acknowledged commits survive all fsync policies after a clean process\n\
         exit; the SIGKILL path is covered by the cli crash_recovery test.\n",
    );
    out
}

// ----- E11: demand-driven queries ------------------------------------

/// One E11 cell: a selective point query at one enterprise size.
pub struct E11Row {
    /// Employees in the underlying enterprise.
    pub employees: usize,
    /// Facts in the raw base (≈ 3.2 per employee).
    pub facts: usize,
    /// Answer via the `demand(false)` escape hatch (full evaluation +
    /// goal match), ms.
    pub full_ms: f64,
    /// Answer via the magic-set demand path, ms.
    pub demand_ms: f64,
    /// `full_ms / demand_ms`.
    pub speedup: f64,
}

/// The E11 size axis, in employees (31k ≈ a 100k-fact base).
pub fn e11_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![500, 2_000]
    } else {
        vec![1_000, 10_000, 31_000]
    }
}

/// Measure one E11 size (shared by the report and [`bench_json`]).
/// Asserts the plan is seeded and the answers match the workload's
/// independently computed reference boss chain.
pub fn e11_measure(quick: bool, employees: usize) -> E11Row {
    let w = query_workload(QueryConfig { employees, queries: 1, seed: 0x51EED });
    let q = &w.queries[0]; // q0 is the point shape: `?- ins(eK).chief -> C.`
    let goal = Goal::parse(&q.goal).unwrap();
    let db = Database::open(w.enterprise.ob.clone());
    let prepared = db.prepare(w.program).unwrap();
    let plan = prepared.query_plan(goal.clone());
    assert_eq!(plan.mode(), QueryMode::Seeded, "a point goal must seed: {}", plan.describe());
    let slow_db = Database::builder().demand(false).open(w.enterprise.ob.clone());
    let slow_prepared = slow_db.prepare(w.program).unwrap();
    let demand = median_time(reps(quick), || {
        std::hint::black_box(db.query(&prepared, goal.clone()).unwrap());
    });
    let full = median_time(reps(quick), || {
        std::hint::black_box(slow_db.query(&slow_prepared, goal.clone()).unwrap());
    });
    let fast_answers = db.query(&prepared, goal.clone()).unwrap();
    let slow_answers = slow_db.query(&slow_prepared, goal).unwrap();
    assert_eq!(fast_answers.rows, q.expected, "goal {}", q.goal);
    assert_eq!(slow_answers.rows, q.expected, "goal {}", q.goal);
    E11Row {
        employees,
        facts: w.enterprise.ob.len(),
        full_ms: full.as_secs_f64() * 1e3,
        demand_ms: demand.as_secs_f64() * 1e3,
        speedup: full.as_secs_f64() / demand.as_secs_f64().max(f64::EPSILON),
    }
}

/// E11 — demand-driven queries: a selective point query
/// (`?- ins(eK).chief -> C.`) against the boss-chain closure, answered
/// through the magic-set demand path vs the full-evaluation escape
/// hatch. Full evaluation derives every employee's chief closure; the
/// demand plan seeds exactly one object, so the gap grows with the
/// base. Acceptance (full mode): ≥ 10× at the ~100k-fact size.
pub fn e11_demand(quick: bool) -> String {
    let mut t =
        Table::new(&["employees", "base facts", "full eval (ms)", "demand (ms)", "speedup"]);
    let mut last = None;
    for n in e11_sizes(quick) {
        let row = e11_measure(quick, n);
        t.row(&[
            row.employees.to_string(),
            row.facts.to_string(),
            format!("{:.3}", row.full_ms),
            format!("{:.3}", row.demand_ms),
            format!("{:.1}×", row.speedup),
        ]);
        last = Some(row);
    }
    let last = last.expect("sweep ran");
    let mut out = t.render();
    out.push_str(
        "\nanswers verified against the workload's reference boss chains at every size;\n\
         both paths return identical rows (the differential battery asserts this on\n\
         random programs and goals — `tests/query_differential.rs`).\n",
    );
    assert!(last.speedup > 1.0, "demand path slower than full evaluation: {:.2}×", last.speedup);
    if !quick {
        assert!(
            last.speedup >= 10.0,
            "acceptance: ≥10× on the ~100k-fact base, got {:.1}×",
            last.speedup
        );
    }
    out
}

// ----- E12: shard-parallel fixpoint ---------------------------------

/// One E12 cell: a full fixpoint run at one worker setting
/// (`threads == 0` is the serial baseline with parallel evaluation
/// off entirely).
pub struct E12Row {
    /// Worker cap (0 = serial baseline).
    pub threads: usize,
    /// Median end-to-end wall time.
    pub wall_ms: f64,
    /// Summed step-1 scan region wall time (parallel runs only).
    pub scan_wall_ms: f64,
    /// Summed step-2+3 apply region wall time (parallel runs only).
    pub apply_wall_ms: f64,
    /// Scan sub-tasks after seed splitting.
    pub scan_subtasks: usize,
    /// Seeded tasks split into per-shard sub-tasks.
    pub seed_splits: usize,
}

fn e12_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

fn e12_config(threads: usize) -> EngineConfig {
    if threads == 0 {
        EngineConfig::default()
    } else {
        EngineConfig { parallel: true, threads, ..EngineConfig::default() }
    }
}

/// Delta-heavy workload: transitive closure over one long `next`
/// chain — hundreds of fixpoint rounds whose seeded scans span nearly
/// every object, so step 1 dominates and per-shard seed splitting is
/// what parallelism has to exploit.
fn e12_delta_heavy(quick: bool) -> (Program, ObjectBase) {
    let n = if quick { 80 } else { 360 };
    let mut src = String::new();
    for i in 0..n - 1 {
        src.push_str(&format!("o{i}.next -> o{}.\n", i + 1));
    }
    let ob = ObjectBase::parse(&src).unwrap();
    let program = Program::parse(
        "tc1: ins[X].reach -> R <= X.next -> R.
         tc2: ins[X].reach -> S <= ins(X).reach -> R & R.next -> S.",
    )
    .unwrap();
    (program, ob)
}

/// Bulk-load workload: a wide random insert-program over a large flat
/// base — few rounds with huge deltas, so steps 2+3 (state building
/// and the sharded batch commit) carry the weight.
fn e12_bulk_load(quick: bool) -> (Program, ObjectBase) {
    let config = RandomConfig {
        objects: if quick { 240 } else { 2_000 },
        facts: if quick { 900 } else { 9_000 },
        rules: 8,
        methods: 5,
        seed: 7,
    };
    (random_insert_program(config), random_object_base(config))
}

/// Measure one (workload, threads) cell; returns the row and `ob'`
/// for the cross-configuration identity assertion.
fn e12_measure(
    quick: bool,
    program: &Program,
    ob: &ObjectBase,
    threads: usize,
) -> (E12Row, ObjectBase) {
    let config = e12_config(threads);
    let wall = median_time(reps(quick), || {
        run_with(program.clone(), ob, config.clone());
    });
    let outcome = run_with(program.clone(), ob, config.clone());
    let par = outcome.stats().parallel;
    let row = E12Row {
        threads,
        wall_ms: wall.as_secs_f64() * 1e3,
        scan_wall_ms: par.scan_wall.as_secs_f64() * 1e3,
        apply_wall_ms: par.apply_wall.as_secs_f64() * 1e3,
        scan_subtasks: par.scan_subtasks,
        seed_splits: par.seed_splits,
    };
    (row, outcome.new_object_base())
}

/// The two E12 workloads, named.
fn e12_workloads(quick: bool) -> Vec<(&'static str, (Program, ObjectBase))> {
    vec![
        ("delta-heavy (chain closure)", e12_delta_heavy(quick)),
        ("bulk-load (wide inserts)", e12_bulk_load(quick)),
    ]
}

/// Whether this host qualifies for the wall-clock speedup gate.
/// Scaling needs real cores; on smaller hosts the gate is skipped
/// **and the skip is logged** — the bit-identity assertion still runs
/// everywhere.
fn e12_speedup_gate(quick: bool, cpus: usize) -> Result<(), String> {
    if quick {
        Err("quick mode".to_string())
    } else if cpus < 4 {
        Err(format!("host has {cpus} visible CPU(s), gate needs >= 4"))
    } else {
        Ok(())
    }
}

/// E12 — shard-parallel fixpoint: thread sweep over a delta-heavy and
/// a bulk-load workload. On every host, asserts the parallel `ob'` is
/// **bit-identical** to serial at every width; on hosts with ≥4 CPUs
/// (full mode), additionally asserts ≥2× speedup at 4 threads on the
/// delta-heavy workload. Also records serving read-stall tails with a
/// parallel-configured group-commit writer.
pub fn e12_parallel(quick: bool) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!("host: {cpus} visible CPU(s)\n\n");
    let mut delta_heavy_sp4 = None;
    for (name, (program, ob)) in e12_workloads(quick) {
        let (serial, reference) = e12_measure(quick, &program, &ob, 0);
        let mut t = Table::new(&[
            "threads",
            "wall (ms)",
            "scan wall (ms)",
            "apply wall (ms)",
            "scan sub-tasks",
            "seed splits",
            "speedup",
        ]);
        t.row(&[
            "serial".to_string(),
            format!("{:.3}", serial.wall_ms),
            "—".to_string(),
            "—".to_string(),
            "—".to_string(),
            "—".to_string(),
            "1.00×".to_string(),
        ]);
        for threads in e12_threads(quick) {
            let (row, ob2) = e12_measure(quick, &program, &ob, threads);
            assert_eq!(ob2, reference, "{name}: parallel ob' diverged at {threads} threads");
            let speedup = serial.wall_ms / row.wall_ms.max(f64::EPSILON);
            if threads == 4 && name.starts_with("delta-heavy") {
                delta_heavy_sp4 = Some(speedup);
            }
            t.row(&[
                threads.to_string(),
                format!("{:.3}", row.wall_ms),
                format!("{:.3}", row.scan_wall_ms),
                format!("{:.3}", row.apply_wall_ms),
                row.scan_subtasks.to_string(),
                row.seed_splits.to_string(),
                format!("{speedup:.2}×"),
            ]);
        }
        out.push_str(&format!("### {name}\n\n"));
        out.push_str(&t.render());
        out.push_str("\nparallel ob' bit-identical to serial at every width ✓\n\n");
    }
    let sp4 = delta_heavy_sp4.expect("sweep includes 4 threads");
    match e12_speedup_gate(quick, cpus) {
        Ok(()) => {
            assert!(sp4 >= 2.0, "delta-heavy speedup at 4 threads below 2x: {sp4:.2}");
            out.push_str(&format!("speedup gate: {sp4:.2}× at 4 threads (≥2× required) ✓\n"));
        }
        Err(why) => out
            .push_str(&format!("speedup gate: SKIPPED ({why}); measured {sp4:.2}× at 4 threads\n")),
    }
    // Read-stall tails behind a parallel group-commit writer: the
    // writer computing fixpoints on a pool must not hold the published
    // head longer than the serial writer does.
    let stall_serial = e8c_measure_serving_config(quick, 2, 1, None);
    let stall_parallel = e8c_measure_serving_config(quick, 2, 1, Some(e12_config(2)));
    out.push_str(&format!(
        "\nserving read stalls (2 readers / 1 writer): serial writer mean {:.1} µs, \
         max {:.0} µs; parallel writer (2 threads) mean {:.1} µs, max {:.0} µs\n",
        stall_serial.mean_read_batch_us,
        stall_serial.max_read_batch_us,
        stall_parallel.mean_read_batch_us,
        stall_parallel.max_read_batch_us,
    ));
    out
}

// ----- E13: rule-parallel fixpoint ----------------------------------

/// The E13 workload: eight *independent* triangle-join rules over
/// disjoint edge namespaces (`e0`..`e7`) — each is its own dependency
/// component, so their full scans parallelize rule-by-rule — plus one
/// conflicting `mod` pair on a shared method, which the dependency
/// analysis must bundle into a single serialized pool job.
fn e13_workload(quick: bool) -> (Program, ObjectBase) {
    let namespaces = 8usize;
    let v = if quick { 30 } else { 360 }; // divisible by 3 for the seeded 3-cycles
    let muls: &[usize] =
        if quick { &[2, 3] } else { &[7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] };
    let mut src = String::new();
    for k in 0..namespaces {
        for i in 0..v {
            // Guaranteed triangles: partition into 3-cycles.
            let group = i - i % 3;
            let cycle_next = group + (i + 1 - group) % 3;
            src.push_str(&format!("o{i}.e{k} -> o{cycle_next}.\n"));
            // Join fan: affine pseudo-random extra edges.
            for m in muls {
                src.push_str(&format!("o{i}.e{k} -> o{}.\n", (i * m + k) % v));
            }
        }
    }
    // The mod pair runs over its own object population (`p*`): the
    // triangle rules create ins(o*) versions and §5 version-linearity
    // forbids mixing ins(o) and mod(o) on one object.
    for i in 0..v {
        src.push_str(&format!("p{i}.shared -> 0.\np{i}.link -> p{}.\n", (i + 1) % v));
    }
    let ob = ObjectBase::parse(&src).unwrap();

    let mut rules = String::new();
    for k in 0..namespaces {
        rules.push_str(&format!(
            "t{k}: ins[X].tri{k} -> 1 <= X.e{k} -> Y & Y.e{k} -> Z & Z.e{k} -> X.\n"
        ));
    }
    // Same method, overlapping targets, different replacements: the
    // commutativity matrix says Conflicts, so these two form one
    // dependency component and run inside one pool job.
    rules.push_str("m1: mod[X].shared -> (V, 1) <= X.shared -> V & X.link -> Y.\n");
    rules.push_str("m2: mod[X].shared -> (V, 2) <= X.shared -> V & Y.link -> X.\n");
    (Program::parse(&rules).unwrap(), ob)
}

/// E13 — rule-parallel fixpoint: the dependency-component scheduler
/// (`core::deps`) runs independent same-stratum rules as separate
/// pool jobs and serializes non-commuting ones inside a bundle. On
/// every host, asserts ob' is bit-identical to serial at every width
/// and that the conflicting pair actually bundles; on hosts with ≥4
/// CPUs (full mode), additionally asserts ≥2× speedup at 4 threads.
pub fn e13_parallel(quick: bool) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (program, ob) = e13_workload(quick);

    let compiled = ruvo_core::CompiledProgram::compile(program.clone(), CyclePolicy::Reject)
        .expect("E13 workload compiles");
    let deps = compiled.deps();
    let components = deps.components().len();
    let mut out = format!(
        "host: {cpus} visible CPU(s)\nworkload: {} rules in {} dependency component(s) \
         ({} edge(s); the m1/m2 write-write pair is one bundle)\n\n",
        program.len(),
        components,
        deps.edges().len(),
    );
    assert_eq!(components, program.len() - 1, "exactly one two-rule bundle expected");

    let (serial, reference) = e12_measure(quick, &program, &ob, 0);
    let mut t =
        Table::new(&["threads", "wall (ms)", "scan wall (ms)", "component jobs", "speedup"]);
    t.row(&[
        "serial".to_string(),
        format!("{:.3}", serial.wall_ms),
        "—".to_string(),
        "—".to_string(),
        "1.00×".to_string(),
    ]);
    let mut sp4 = None;
    for threads in e12_threads(quick) {
        let (row, ob2) = e12_measure(quick, &program, &ob, threads);
        assert_eq!(ob2, reference, "rule-parallel ob' diverged at {threads} threads");
        let outcome = run_with(program.clone(), &ob, e12_config(threads));
        let par = outcome.stats().parallel;
        assert!(
            par.component_jobs > 0,
            "the m1/m2 component must be bundled at {threads} threads: {par:?}"
        );
        let speedup = serial.wall_ms / row.wall_ms.max(f64::EPSILON);
        if threads == 4 {
            sp4 = Some(speedup);
        }
        t.row(&[
            threads.to_string(),
            format!("{:.3}", row.wall_ms),
            format!("{:.3}", row.scan_wall_ms),
            par.component_jobs.to_string(),
            format!("{speedup:.2}×"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nrule-parallel ob' bit-identical to serial at every width ✓\n");
    let sp4 = sp4.expect("sweep includes 4 threads");
    match e12_speedup_gate(quick, cpus) {
        Ok(()) => {
            assert!(sp4 >= 2.0, "rule-parallel speedup at 4 threads below 2x: {sp4:.2}");
            out.push_str(&format!("speedup gate: {sp4:.2}× at 4 threads (≥2× required) ✓\n"));
        }
        Err(why) => out
            .push_str(&format!("speedup gate: SKIPPED ({why}); measured {sp4:.2}× at 4 threads\n")),
    }
    out
}

// ----- E14: incremental checkpoints ----------------------------------

/// The E14 base: `objects` objects with two facts each (`balance` and
/// `kind`), so `A.balance -> B & B >= lo & B < hi` selects an exact
/// dirty set. With `clustered` the lowest balances all land in the
/// same version-table shards (walked shard by shard), modelling a
/// steady-state hot set; otherwise balances follow object order, so a
/// small dirty set scatters across every shard — the worst case for a
/// shard-granular delta.
fn e14_base(objects: usize, clustered: bool) -> ObjectBase {
    let vids: Vec<Vid> = (0..objects).map(|i| Vid::object(oid(&format!("o{i}")))).collect();
    let mut order: Vec<usize> = (0..objects).collect();
    if clustered {
        order.sort_by_key(|&i| (ruvo_obase::vid_shard(vids[i]), i));
    }
    let mut ob = ObjectBase::new();
    for (balance, &i) in order.iter().enumerate() {
        ob.insert(vids[i], sym("balance"), Args::new(vec![]), int(balance as i64));
        ob.insert(vids[i], sym("kind"), Args::new(vec![]), ruvo_term::Const::Sym(sym("live")));
    }
    ob
}

/// Bump every object whose balance lies in `[lo, hi)` far out of
/// range, so one sweep dirties exactly `hi - lo` objects and a later
/// sweep never re-selects them.
fn e14_dirty_rule(lo: i64, hi: i64) -> String {
    format!(
        "mod[A].balance -> (B, B2) <= A.balance -> B & B >= {lo} & B < {hi} & B2 = B + 1000000."
    )
}

fn e14_dirty_objects(quick: bool) -> usize {
    if quick {
        2_000
    } else {
        50_000
    }
}

/// One dirty-sweep cell: delta vs full checkpoint cost for the same
/// base with `dirty` objects modified since the chain's tip.
pub struct E14DirtyRow {
    /// Facts in the base.
    pub facts: usize,
    /// Objects modified since the last checkpoint.
    pub dirty: usize,
    /// `"clustered"` or `"scattered"` dirty-set layout.
    pub layout: &'static str,
    /// Version-table shards the delta carries.
    pub dirty_shards: u32,
    /// Delta append wall-clock, ms.
    pub delta_ms: f64,
    /// Delta payload bytes.
    pub delta_bytes: u64,
    /// Full rewrite wall-clock, ms (same state, forced full).
    pub full_ms: f64,
    /// Full payload bytes.
    pub full_bytes: u64,
    /// `full_ms / delta_ms`.
    pub speedup: f64,
}

fn e14_measure_dirty(objects: usize, dirty: usize, clustered: bool) -> E14DirtyRow {
    use ruvo_core::store::CheckpointOutcome;
    use ruvo_core::CheckpointPolicy;
    let layout = if clustered { "clustered" } else { "scattered" };
    let dir = e10_dir(&format!("e14-dirty-{objects}-{dirty}-{layout}"));
    let ob = e14_base(objects, clustered);
    let facts = ob.len();
    let mut db = Database::builder()
        .data_dir(&dir)
        .checkpoint_policy(CheckpointPolicy::never())
        .seed(ob)
        .open_dir()
        .unwrap();
    // Make sure the chain's base generation exists (the seeding open
    // writes it, in which case this is a no-op), then dirty exactly
    // `dirty` objects and append one delta on top of it.
    let base = db.checkpoint().unwrap();
    assert!(!matches!(base, CheckpointOutcome::Delta { .. }), "first checkpoint: {base}");
    db.apply_src(&e14_dirty_rule(0, dirty as i64)).unwrap();
    let (delta, delta_wall) = crate::time(|| db.checkpoint().unwrap());
    let CheckpointOutcome::Delta { bytes: delta_bytes, dirty_shards } = delta else {
        panic!("expected a delta generation, got {delta}")
    };
    // The recovered chain (full + delta) must be bit-identical to the
    // live head before any timing is trusted.
    let live = db.current().clone();
    drop(db);
    let reopened = Database::open_dir(&dir).unwrap();
    assert_eq!(*reopened.current(), live, "chain recovery diverged at dirty={dirty} ({layout})");
    // Full-rewrite cost of the *same* state, for the honest ratio.
    let mut db = reopened;
    let (full, full_wall) = crate::time(|| db.compact().unwrap());
    let CheckpointOutcome::Full { bytes: full_bytes } = full else {
        panic!("compaction must write a full generation, got {full}")
    };
    let (delta_ms, full_ms) = (delta_wall.as_secs_f64() * 1e3, full_wall.as_secs_f64() * 1e3);
    E14DirtyRow {
        facts,
        dirty,
        layout,
        dirty_shards,
        delta_ms,
        delta_bytes,
        full_ms,
        full_bytes,
        speedup: full_ms / delta_ms.max(f64::EPSILON),
    }
}

fn e14_dirty_cells(quick: bool) -> Vec<(usize, bool)> {
    let n = e14_dirty_objects(quick);
    vec![(1, true), (n / 100, true), (n / 100, false), (n / 10, false), (n, false)]
}

/// One reopen cell: recovery time for a full+delta chain vs the same
/// state compacted to a single full generation.
pub struct E14ReopenRow {
    /// Facts in the recovered base.
    pub facts: usize,
    /// Generations in the chain at reopen time.
    pub generations: usize,
    /// `Database::open_dir` wall-clock over the chain, ms.
    pub chain_reopen_ms: f64,
    /// `Database::open_dir` wall-clock after compaction, ms.
    pub full_reopen_ms: f64,
}

fn e14_reopen_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![500, 2_000]
    } else {
        vec![5_000, 20_000, 50_000]
    }
}

fn e14_measure_reopen(objects: usize) -> E14ReopenRow {
    use ruvo_core::CheckpointPolicy;
    let dir = e10_dir(&format!("e14-reopen-{objects}"));
    let mut db = Database::builder()
        .data_dir(&dir)
        .checkpoint_policy(CheckpointPolicy::never())
        // Clustered, so each 10-object bump dirties one shard and the
        // deltas stay far below the chain's compaction threshold.
        .seed(e14_base(objects, true))
        .open_dir()
        .unwrap();
    db.checkpoint().unwrap();
    for k in 0..3i64 {
        db.apply_src(&e14_dirty_rule(k * 10, k * 10 + 10)).unwrap();
        db.checkpoint().unwrap();
    }
    let live = db.current().clone();
    drop(db);
    let generations = ruvo_core::store::read_state(&dir)
        .unwrap()
        .checkpoint
        .expect("chain exists")
        .generations
        .len();
    assert!(generations >= 4, "expected a stacked chain, got {generations}");
    let (mut db, chain_wall) = crate::time(|| Database::open_dir(&dir).unwrap());
    assert_eq!(*db.current(), live, "chain recovery diverged at {objects} objects");
    db.compact().unwrap();
    drop(db);
    let (db, full_wall) = crate::time(|| Database::open_dir(&dir).unwrap());
    assert_eq!(*db.current(), live, "post-compaction recovery diverged");
    E14ReopenRow {
        facts: live.len(),
        generations,
        chain_reopen_ms: chain_wall.as_secs_f64() * 1e3,
        full_reopen_ms: full_wall.as_secs_f64() * 1e3,
    }
}

/// One serving-latency cell: commit latency distribution with
/// `fsync always`, with or without a background checkpoint running
/// every 16 commits.
pub struct E14ServeRow {
    /// Commits applied.
    pub commits: usize,
    /// Median commit latency, µs.
    pub p50_us: f64,
    /// 99th-percentile commit latency, µs.
    pub p99_us: f64,
    /// Worst commit latency, µs.
    pub max_us: f64,
    /// Background checkpoints that completed during the run.
    pub checkpoints: usize,
}

fn e14_serve_commits(quick: bool) -> usize {
    if quick {
        96
    } else {
        800
    }
}

fn e14_measure_serve(quick: bool, background: bool) -> E14ServeRow {
    use ruvo_core::{CheckpointPolicy, FsyncPolicy};
    use std::time::Instant;
    let objects = if quick { 500 } else { 20_000 };
    let commits = e14_serve_commits(quick);
    let dir = e10_dir(&format!("e14-serve-{background}"));
    // A sentinel with its own method name: the bump rule selects it
    // (and only it) without scanning the broad base's balance facts,
    // so each commit dirties one object while the background encoder
    // still has the whole base to persist.
    let mut ob = e14_base(objects, false);
    ob.insert(Vid::object(oid("acct")), sym("counter"), Args::new(vec![]), int(0));
    let db = Database::builder()
        .data_dir(&dir)
        .fsync(FsyncPolicy::Always)
        .checkpoint_policy(CheckpointPolicy::never())
        .seed(ob)
        .open_dir()
        .unwrap();
    let db = ServingDatabase::new(db);
    let bump = db.prepare("mod[A].counter -> (B, B2) <= A.counter -> B & B2 = B + 1.").unwrap();
    // Untimed warmup: fault in the WAL path and allocator before the
    // distribution is recorded.
    let warmup = 16;
    for _ in 0..warmup {
        db.apply(&bump).unwrap();
    }
    let mut latencies_us = Vec::with_capacity(commits);
    let mut checkpoints = 0usize;
    for i in 0..commits {
        if background && i % 16 == 0 {
            assert!(db.checkpoint_background().unwrap(), "durable db must start an encoder");
        }
        let t = Instant::now();
        db.apply(&bump).unwrap();
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        checkpoints += db.take_checkpoint_completions().len();
    }
    if background {
        db.checkpoint_flush().unwrap();
        checkpoints += db.take_checkpoint_completions().len();
        assert!(checkpoints >= 1, "no background checkpoint completed");
    }
    let live = db.current();
    assert_eq!(
        live.lookup1(oid("acct"), "counter"),
        vec![int((warmup + commits) as i64)],
        "commit stream lost updates"
    );
    drop(db);
    let reopened = Database::open_dir(&dir).unwrap();
    assert_eq!(*reopened.current(), *live, "durable state diverged from the served head");
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        latencies_us
            [((latencies_us.len() as f64 * p).ceil() as usize - 1).min(latencies_us.len() - 1)]
    };
    E14ServeRow {
        commits,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: *latencies_us.last().unwrap(),
        checkpoints,
    }
}

/// The p99 gate needs a core for the encoder thread and full-mode
/// sample counts to mean anything.
fn e14_p99_gate(quick: bool, cpus: usize) -> Result<(), String> {
    if quick {
        Err("quick mode".to_string())
    } else if cpus < 2 {
        Err(format!("host has {cpus} visible CPU(s), gate needs >= 2"))
    } else {
        Ok(())
    }
}

/// E14 — incremental checkpoints: (1) delta vs full checkpoint cost as
/// the dirty set grows, clustered vs scattered across version-table
/// shards; (2) chain reopen vs compacted reopen as the base grows;
/// (3) commit p50/p99 with a background checkpoint every 16 commits
/// against the no-checkpoint baseline. Every cell reopens its
/// directory and asserts the recovered state is bit-identical, so the
/// sweep doubles as the incremental-durability acceptance test.
pub fn e14_incremental(quick: bool) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = String::new();

    let objects = e14_dirty_objects(quick);
    let mut t = Table::new(&[
        "facts",
        "dirty objs",
        "layout",
        "dirty shards",
        "delta (ms)",
        "delta bytes",
        "full (ms)",
        "full bytes",
        "speedup",
    ]);
    let mut gate_row: Option<E14DirtyRow> = None;
    for (dirty, clustered) in e14_dirty_cells(quick) {
        let row = e14_measure_dirty(objects, dirty, clustered);
        t.row(&[
            row.facts.to_string(),
            row.dirty.to_string(),
            row.layout.into(),
            row.dirty_shards.to_string(),
            format!("{:.2}", row.delta_ms),
            row.delta_bytes.to_string(),
            format!("{:.2}", row.full_ms),
            row.full_bytes.to_string(),
            format!("{:.1}×", row.speedup),
        ]);
        if clustered && dirty == objects / 100 {
            gate_row = Some(row);
        }
    }
    out.push_str("Delta vs full checkpoint cost as the dirty set grows (the delta\n");
    out.push_str("unit is a version-table shard: a clustered hot set stays narrow,\n");
    out.push_str("a scattered one saturates all 16 shards and converges on full):\n\n");
    out.push_str(&t.render());
    let gate = gate_row.expect("sweep includes the 1% clustered row");
    // Payload incrementality is deterministic — assert it everywhere;
    // the wall-clock gate only where the base is big enough to
    // dominate the fsync floor.
    assert!(
        gate.delta_bytes * 4 <= gate.full_bytes,
        "1% clustered delta not incremental: {} vs {} bytes",
        gate.delta_bytes,
        gate.full_bytes
    );
    if !quick {
        assert!(
            gate.delta_bytes * 8 <= gate.full_bytes,
            "1% clustered delta payload too large: {} vs {} bytes",
            gate.delta_bytes,
            gate.full_bytes
        );
        assert!(
            gate.speedup >= 10.0,
            "steady-state delta checkpoint below 10x: {:.1}x at {} facts, 1% dirty",
            gate.speedup,
            gate.facts
        );
        out.push_str(&format!(
            "\nincremental gate: {:.1}× at {} facts / 1% clustered dirty (≥10× required) ✓\n",
            gate.speedup, gate.facts
        ));
    } else {
        out.push_str(&format!(
            "\nincremental gate: SKIPPED (quick mode); measured {:.1}× at 1% clustered dirty\n",
            gate.speedup
        ));
    }

    let mut t = Table::new(&["facts", "generations", "chain reopen (ms)", "compacted reopen (ms)"]);
    for objects in e14_reopen_sizes(quick) {
        let row = e14_measure_reopen(objects);
        t.row(&[
            row.facts.to_string(),
            row.generations.to_string(),
            format!("{:.1}", row.chain_reopen_ms),
            format!("{:.1}", row.full_reopen_ms),
        ]);
    }
    out.push_str("\nReopen time vs base size: recovering a full+3-delta chain\n");
    out.push_str("(shards decoded in parallel) against the same state compacted\n");
    out.push_str("to one full generation:\n\n");
    out.push_str(&t.render());

    let mut t =
        Table::new(&["checkpointing", "commits", "p50 (µs)", "p99 (µs)", "max (µs)", "completed"]);
    // The first serving pass in a process pays allocator/page-cache
    // warmup whichever mode it is — burn it off untimed.
    let _ = e14_measure_serve(quick, false);
    let baseline = e14_measure_serve(quick, false);
    let concurrent = e14_measure_serve(quick, true);
    for (name, row) in [("none (baseline)", &baseline), ("background / 16 commits", &concurrent)] {
        t.row(&[
            name.into(),
            row.commits.to_string(),
            format!("{:.0}", row.p50_us),
            format!("{:.0}", row.p99_us),
            format!("{:.0}", row.max_us),
            row.checkpoints.to_string(),
        ]);
    }
    out.push_str("\nCommit latency under `fsync always`, with and without background\n");
    out.push_str("checkpoints (the encode runs off-lock; commits only ever wait for\n");
    out.push_str("the O(shards) plan and install):\n\n");
    out.push_str(&t.render());
    let ratio = concurrent.p99_us / baseline.p99_us.max(f64::EPSILON);
    match e14_p99_gate(quick, cpus) {
        Ok(()) => {
            assert!(
                ratio <= 1.5,
                "background checkpointing inflated commit p99 {ratio:.2}x (limit 1.5x)"
            );
            out.push_str(&format!("\np99 gate: {ratio:.2}× vs baseline (≤1.5× required) ✓\n"));
        }
        Err(why) => out
            .push_str(&format!("\np99 gate: SKIPPED ({why}); measured {ratio:.2}× vs baseline\n")),
    }
    out.push_str(
        "\nEvery cell re-opened its directory and verified the recovered state\n\
         bit-identical to the served head — across full+delta chains, post-\n\
         compaction rewrites, and background-checkpoint races.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    //! Every experiment must run clean in quick mode — this is the
    //! acceptance gate for the reproduction (the assertions inside the
    //! experiment bodies encode the paper's stated outcomes).

    #[test]
    fn f2_trace() {
        let report = super::f2_enterprise_trace(true);
        assert!(report.contains("matches the paper"));
        assert!(report.contains("mod(phil)"));
        assert!(report.contains("del(mod(bob))"));
    }

    #[test]
    fn e1_quick() {
        let report = super::e1_salary_raise(true);
        assert!(report.contains("200"), "got:\n{report}");
    }

    #[test]
    fn e2_quick() {
        super::e2_enterprise(true);
    }

    #[test]
    fn e3_quick() {
        super::e3_hypothetical(true);
    }

    #[test]
    fn e4_quick() {
        super::e4_ancestors(true);
    }

    #[test]
    fn e5_quick() {
        let report = super::e5_stratify(true);
        assert_eq!(report.matches("✓").count(), 3, "three reject cases");
    }

    #[test]
    fn e6_quick() {
        assert!(super::e6_linearity(true).contains("detection"));
    }

    #[test]
    fn e7_quick() {
        super::e7_copy_overhead(true);
    }

    #[test]
    fn e8_quick() {
        let report = super::e8_vs_datalog(true);
        assert!(report.contains("correct ✓"), "ruvo is correct");
        assert!(report.contains("WRONG ✗"), "some baseline semantics is wrong");
    }

    #[test]
    fn f1_quick() {
        super::f1_chain_depth(true);
    }

    #[test]
    fn a1_quick() {
        super::a1_delta_filter(true);
    }

    #[test]
    fn e9_quick() {
        let report = super::e9_vid_vars(true);
        assert!(report.contains("flagged"), "got:\n{report}");
    }

    #[test]
    fn a3_quick() {
        let report = super::a3_runtime_checks(true);
        assert!(report.contains("statically rejected"), "got:\n{report}");
    }

    #[test]
    fn a6_quick() {
        let report = super::a6_cow_clone(true);
        assert!(report.contains("clone cost ratio"), "got:\n{report}");
    }

    #[test]
    fn bench_json_is_well_formed() {
        let json = super::bench_json(true);
        // No serde in the workspace: check shape structurally.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"pr\": 10",
            "\"e14_incremental_checkpoints\"",
            "\"dirty_sweep\"",
            "\"incremental_gate\"",
            "\"chain_reopen_ms\"",
            "\"serve_p99\"",
            "\"p99_ratio\"",
            "\"recovered_bit_identical\": true",
            "\"e13_rule_parallel\"",
            "\"components\"",
            "\"component_jobs_2t\"",
            "\"speedup_4t\"",
            "\"e12_parallel_fixpoint\"",
            "\"delta_heavy\"",
            "\"bulk_load\"",
            "\"identical_results\": true",
            "\"speedup_gate\"",
            "\"read_stall_parallel_writer\"",
            "\"e11_demand_queries\"",
            "\"demand_ms\"",
            "\"speedup\"",
            "\"cpus\"",
            "\"e10_durability\"",
            "\"fsync\"",
            "\"commits_per_sec\"",
            "\"recovery\"",
            "\"recover_ms\"",
            "\"checkpoint_ms\"",
            "\"e8_concurrent_throughput\"",
            "\"reads_per_sec\"",
            "\"reader_scaling_1_to_8\"",
            "\"serving_vs_locked_8r\"",
            "\"e7\"",
            "\"sizes\"",
            "\"ratio\"",
            "\"a6\"",
            "\"clone_us\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn e12_quick() {
        let report = super::e12_parallel(true);
        assert!(report.contains("bit-identical to serial at every width ✓"), "got:\n{report}");
        assert!(report.contains("speedup gate:"), "got:\n{report}");
        assert!(report.contains("serving read stalls"), "got:\n{report}");
        // Quick mode never enforces wall-clock scaling.
        assert!(report.contains("SKIPPED"), "got:\n{report}");
    }

    #[test]
    fn e13_quick() {
        let report = super::e13_parallel(true);
        assert!(report.contains("dependency component(s)"), "got:\n{report}");
        assert!(report.contains("bit-identical to serial at every width ✓"), "got:\n{report}");
        assert!(report.contains("speedup gate:"), "got:\n{report}");
        // Quick mode never enforces wall-clock scaling.
        assert!(report.contains("SKIPPED"), "got:\n{report}");
    }

    #[test]
    fn e8c_quick() {
        let report = super::e8_concurrent_throughput(true);
        assert!(report.contains("reads/s"), "got:\n{report}");
        assert!(report.contains("serving vs coarse lock"), "got:\n{report}");
    }

    #[test]
    fn e11_quick() {
        let report = super::e11_demand(true);
        assert!(report.contains("speedup"), "got:\n{report}");
    }

    #[test]
    fn e14_quick() {
        let report = super::e14_incremental(true);
        assert!(report.contains("Delta vs full checkpoint cost"), "got:\n{report}");
        assert!(report.contains("Reopen time vs base size"), "got:\n{report}");
        assert!(report.contains("Commit latency"), "got:\n{report}");
        // Quick mode never enforces wall-clock gates.
        assert!(report.contains("SKIPPED"), "got:\n{report}");
    }

    #[test]
    fn e10_quick() {
        let report = super::e10_durability(true);
        assert!(report.contains("fsync"), "got:\n{report}");
        assert!(report.contains("Recovery time vs WAL length"), "got:\n{report}");
        assert!(report.contains("Checkpoint cost"), "got:\n{report}");
    }
}
