//! String interning for method names and symbolic OIDs.
//!
//! Every identifier appearing in programs and object bases (method names
//! like `sal`, symbolic OIDs like `henry`) is interned once and referred
//! to by a 4-byte [`Symbol`]. Interning makes equality, hashing and
//! copies of the hot term types trivial.
//!
//! A process-wide interner ([`Interner::global`]) is provided because
//! terms flow freely between crates (parser → engine → reports) and a
//! per-engine interner would force symbol translation at every boundary.
//! The table only ever grows; for the program/object-base sizes this
//! system targets that is the right trade-off.

use parking_lot::RwLock;
use std::fmt;
use std::sync::OnceLock;

use crate::FastHashMap;

/// An interned string; cheap to copy, hash and compare.
///
/// Symbols from different [`Interner`]s must not be mixed; in practice
/// everything uses [`Interner::global`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol in its interner.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Resolve against the global interner.
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({}: {:?})", self.0, self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Default)]
struct Inner {
    map: FastHashMap<&'static str, Symbol>,
    // Leaked strings; 'static by construction. The interner lives for
    // the whole process so this is not a leak in practice.
    strings: Vec<&'static str>,
}

/// A grow-only string interner.
pub struct Interner {
    inner: RwLock<Inner>,
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

impl Interner {
    /// Create a fresh, empty interner (used by tests; production code
    /// uses [`Interner::global`]).
    pub fn new() -> Self {
        Interner { inner: RwLock::new(Inner::default()) }
    }

    /// The process-wide interner.
    pub fn global() -> &'static Interner {
        GLOBAL.get_or_init(Interner::new)
    }

    /// Intern `name`, returning its symbol. Idempotent.
    pub fn intern(&self, name: &str) -> Symbol {
        if let Some(&sym) = self.inner.read().map.get(name) {
            return sym;
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&sym) = inner.map.get(name) {
            return sym;
        }
        let id = u32::try_from(inner.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        inner.strings.push(leaked);
        inner.map.insert(leaked, Symbol(id));
        Symbol(id)
    }

    /// Resolve a symbol to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner.read().strings[sym.0 as usize]
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("sal");
        let b = i.intern("sal");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let i = Interner::new();
        let a = i.intern("sal");
        let b = i.intern("boss");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "sal");
        assert_eq!(i.resolve(b), "boss");
    }

    #[test]
    fn global_interner_is_shared() {
        let a = crate::sym("global_interner_test");
        let b = crate::sym("global_interner_test");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "global_interner_test");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = std::sync::Arc::new(Interner::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let i = i.clone();
                std::thread::spawn(move || {
                    (0..100).map(|k| i.intern(&format!("s{k}"))).collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(i.len(), 100);
    }
}
