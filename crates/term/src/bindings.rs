//! Variable bindings (substitutions) for rule evaluation.
//!
//! Variables are rule-local and identified by dense indices ([`VarId`]),
//! assigned by the parser/safety layer. A [`Bindings`] is a flat slot
//! array with an undo trail, so the nested-loop join in the evaluator
//! can backtrack without allocation.
//!
//! §2.1: "Rules are considered to be ∀-quantified; the domain of
//! quantification is the set `O`, i.e. the set of all OIDs." A binding
//! therefore maps an ordinary variable to a [`Const`] (an OID), never to
//! a version identity. The §6 extension ("quantify over VIDs in
//! addition to OIDs") adds a *separate* namespace of VID variables
//! ([`VidVarId`], surface syntax `$V`) whose slots hold ground
//! [`Vid`]s; they are body-only, so they never influence which versions
//! an update-program can create.

use std::fmt;

use crate::{Const, Vid};

/// A rule-local variable, identified by its dense index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A rule-local VID-quantified variable (§6 extension; `$V`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VidVarId(pub u32);

impl VidVarId {
    /// The slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VidVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

/// One undone-able entry on the trail.
#[derive(Clone, Copy, Debug)]
enum TrailSlot {
    Oid(VarId),
    Vid(VidVarId),
}

/// A substitution from rule variables to OIDs (and VID variables to
/// VIDs), with an undo trail.
#[derive(Clone, Debug)]
pub struct Bindings {
    slots: Vec<Option<Const>>,
    vid_slots: Vec<Option<Vid>>,
    trail: Vec<TrailSlot>,
}

/// A checkpoint into a [`Bindings`] trail; see [`Bindings::mark`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark(usize);

impl Bindings {
    /// A substitution over `num_vars` variables, all unbound.
    pub fn new(num_vars: usize) -> Bindings {
        Bindings::with_vid_vars(num_vars, 0)
    }

    /// A substitution with both ordinary and VID variable slots.
    pub fn with_vid_vars(num_vars: usize, num_vid_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; num_vars],
            vid_slots: vec![None; num_vid_vars],
            trail: Vec::with_capacity(num_vars + num_vid_vars),
        }
    }

    /// Number of variable slots.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.slots.len()
    }

    /// Current value of `var`, if bound.
    #[inline]
    pub fn get(&self, var: VarId) -> Option<Const> {
        self.slots[var.index()]
    }

    /// True if `var` is bound.
    #[inline]
    pub fn is_bound(&self, var: VarId) -> bool {
        self.slots[var.index()].is_some()
    }

    /// Bind an *unbound* variable, recording the binding on the trail.
    ///
    /// # Panics
    /// Panics (debug) if `var` is already bound; the evaluator must use
    /// [`Bindings::unify_var`] when the state is unknown.
    #[inline]
    pub fn bind(&mut self, var: VarId, value: Const) {
        debug_assert!(
            self.slots[var.index()].is_none(),
            "bind() on already-bound variable {var:?}"
        );
        self.slots[var.index()] = Some(value);
        self.trail.push(TrailSlot::Oid(var));
    }

    /// Bind-or-check: bind `var` to `value` if unbound, otherwise test
    /// that the existing binding equals `value` (strict OID equality).
    #[inline]
    pub fn unify_var(&mut self, var: VarId, value: Const) -> bool {
        match self.slots[var.index()] {
            Some(existing) => existing == value,
            None => {
                self.bind(var, value);
                true
            }
        }
    }

    /// Number of VID variable slots.
    #[inline]
    pub fn num_vid_vars(&self) -> usize {
        self.vid_slots.len()
    }

    /// Current value of a VID variable, if bound.
    #[inline]
    pub fn get_vid(&self, var: VidVarId) -> Option<Vid> {
        self.vid_slots[var.index()]
    }

    /// True if a VID variable is bound.
    #[inline]
    pub fn is_vid_bound(&self, var: VidVarId) -> bool {
        self.vid_slots[var.index()].is_some()
    }

    /// Bind an *unbound* VID variable, recording it on the trail.
    ///
    /// # Panics
    /// Panics (debug) if `var` is already bound.
    #[inline]
    pub fn bind_vid(&mut self, var: VidVarId, value: Vid) {
        debug_assert!(
            self.vid_slots[var.index()].is_none(),
            "bind_vid() on already-bound VID variable {var:?}"
        );
        self.vid_slots[var.index()] = Some(value);
        self.trail.push(TrailSlot::Vid(var));
    }

    /// Bind-or-check for VID variables.
    #[inline]
    pub fn unify_vid_var(&mut self, var: VidVarId, value: Vid) -> bool {
        match self.vid_slots[var.index()] {
            Some(existing) => existing == value,
            None => {
                self.bind_vid(var, value);
                true
            }
        }
    }

    /// Checkpoint the trail; bindings made after this can be undone
    /// with [`Bindings::undo_to`].
    #[inline]
    pub fn mark(&self) -> Mark {
        Mark(self.trail.len())
    }

    /// Undo all bindings made since `mark`.
    #[inline]
    pub fn undo_to(&mut self, mark: Mark) {
        while self.trail.len() > mark.0 {
            match self.trail.pop().expect("trail shrank below mark") {
                TrailSlot::Oid(var) => self.slots[var.index()] = None,
                TrailSlot::Vid(var) => self.vid_slots[var.index()] = None,
            }
        }
    }

    /// Clear every binding.
    pub fn clear(&mut self) {
        for entry in self.trail.drain(..) {
            match entry {
                TrailSlot::Oid(var) => self.slots[var.index()] = None,
                TrailSlot::Vid(var) => self.vid_slots[var.index()] = None,
            }
        }
    }

    /// Snapshot the current substitution as a dense vector (for traces).
    pub fn snapshot(&self) -> Vec<Option<Const>> {
        self.slots.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, oid};

    #[test]
    fn bind_get_roundtrip() {
        let mut b = Bindings::new(3);
        assert!(!b.is_bound(VarId(0)));
        b.bind(VarId(0), oid("henry"));
        assert_eq!(b.get(VarId(0)), Some(oid("henry")));
        assert_eq!(b.get(VarId(1)), None);
    }

    #[test]
    fn unify_var_checks_existing() {
        let mut b = Bindings::new(2);
        assert!(b.unify_var(VarId(0), int(1)));
        assert!(b.unify_var(VarId(0), int(1)));
        assert!(!b.unify_var(VarId(0), int(2)));
    }

    #[test]
    fn undo_restores_state() {
        let mut b = Bindings::new(3);
        b.bind(VarId(0), int(1));
        let m = b.mark();
        b.bind(VarId(1), int(2));
        b.bind(VarId(2), int(3));
        b.undo_to(m);
        assert!(b.is_bound(VarId(0)));
        assert!(!b.is_bound(VarId(1)));
        assert!(!b.is_bound(VarId(2)));
    }

    #[test]
    fn nested_marks_unwind_in_order() {
        let mut b = Bindings::new(4);
        let m0 = b.mark();
        b.bind(VarId(0), int(0));
        let m1 = b.mark();
        b.bind(VarId(1), int(1));
        b.undo_to(m1);
        b.bind(VarId(2), int(2));
        b.undo_to(m0);
        assert!((0..4).all(|i| !b.is_bound(VarId(i))));
    }

    #[test]
    fn clear_resets_everything() {
        let mut b = Bindings::new(2);
        b.bind(VarId(0), int(1));
        b.bind(VarId(1), int(2));
        b.clear();
        assert!(!b.is_bound(VarId(0)));
        assert!(!b.is_bound(VarId(1)));
        assert_eq!(b.mark(), Mark(0));
    }

    #[test]
    fn vid_bindings_share_the_trail() {
        let v = Vid::object(oid("o")).apply(crate::UpdateKind::Mod).unwrap();
        let mut b = Bindings::with_vid_vars(1, 2);
        b.bind(VarId(0), int(1));
        let m = b.mark();
        b.bind_vid(VidVarId(0), v);
        assert_eq!(b.get_vid(VidVarId(0)), Some(v));
        assert!(b.unify_vid_var(VidVarId(0), v));
        assert!(!b.unify_vid_var(VidVarId(0), Vid::object(oid("o"))));
        b.undo_to(m);
        assert!(!b.is_vid_bound(VidVarId(0)));
        assert!(b.is_bound(VarId(0)));
        b.bind_vid(VidVarId(1), v);
        b.clear();
        assert!(!b.is_vid_bound(VidVarId(1)));
        assert!(!b.is_bound(VarId(0)));
    }
}
