//! # ruvo-term — term algebra for the VLDB'92 update language
//!
//! This crate implements the syntactic and semantic ground layer of the
//! update language of Kramer, Lausen and Saake, *"Updates in a Rule-Based
//! Language for Objects"* (VLDB 1992):
//!
//! * [`Symbol`] / [`Interner`] — cheap interned names for methods and
//!   symbolic object identities,
//! * [`Const`] — ground object identities (OIDs). Following the paper,
//!   values (integers, numbers) *are* OIDs: "we consider values as
//!   specific OIDs in `O`",
//! * [`UpdateKind`] / [`Chain`] — the function symbols
//!   `F = {ins, del, mod}` and packed application chains
//!   `φk(...φ1(·))`,
//! * [`Vid`] — ground version identities: an OID with an update chain,
//! * [`BaseTerm`], [`VidTerm`], [`ArgTerm`] — the non-ground term layer
//!   (variables range over OIDs **only**, per §2.1 of the paper),
//! * [`Bindings`] — substitutions used by the rule matcher,
//! * [`unifiable`](VidTerm::unifiable) and the subterm lattice used by the
//!   stratification conditions (a)–(d) of §4.
//!
//! ## Representation note
//!
//! Version identities are *not* heap term graphs. Since every VID is a
//! linear chain of unary functors over a single OID, we pack the chain
//! into a `u64` (2 bits per update kind, max [`Chain::MAX_LEN`] levels)
//! and keep the base OID inline. A [`Vid`] is a small `Copy` value and
//! the subterm test of §5 ("v is a subterm of v'") is an O(1) bit-prefix
//! check. This deliberately sidesteps `Rc`-cycle / arena lifetimes for
//! term graphs and keeps the evaluator's join loops allocation-free.

pub mod bindings;
pub mod chain;
pub mod fasthash;
pub mod interner;
pub mod pattern;
pub mod value;
pub mod vid;

pub use bindings::{Bindings, VarId, VidVarId};
pub use chain::{Chain, ChainOverflow, UpdateKind};
pub use fasthash::{FastHashMap, FastHashSet, FastHasher};
pub use interner::{Interner, Symbol};
pub use pattern::{ArgTerm, BaseTerm, VidRef, VidTerm};
pub use value::{Const, OrderedF64};
pub use vid::Vid;

/// Convenience: intern a string in the global interner.
pub fn sym(name: &str) -> Symbol {
    Interner::global().intern(name)
}

/// Convenience: a symbolic OID constant.
pub fn oid(name: &str) -> Const {
    Const::Sym(sym(name))
}

/// Convenience: an integer OID constant (values are OIDs in the paper).
pub fn int(v: i64) -> Const {
    Const::Int(v)
}

/// Convenience: a numeric (floating) OID constant.
///
/// # Panics
/// Panics if `v` is NaN; the OID domain is totally ordered.
pub fn num(v: f64) -> Const {
    Const::Num(OrderedF64::new(v).expect("NaN is not a valid OID"))
}
