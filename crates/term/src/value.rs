//! Ground object identities (OIDs).
//!
//! §2.1 of the paper: "For formal simplicity, we do not introduce types
//! for values — we consider values as specific OIDs in `O`." The OID
//! domain therefore contains symbolic identities (`henry`, `empl`),
//! 64-bit integers and finite 64-bit floats. The domain is totally
//! ordered so the arithmetic built-ins (`<`, `>`, …) are decidable on
//! all of it.

use std::cmp::Ordering;
use std::fmt;

use crate::{sym, Symbol};

/// A 64-bit float that is guaranteed finite-or-infinite but never NaN,
/// giving it a total order and a consistent `Eq`/`Hash`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a float; `None` if it is NaN.
    #[inline]
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // Normalize -0.0 to 0.0 so Eq and Hash agree.
            Some(OrderedF64(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN excluded by construction.
        self.0.partial_cmp(&other.0).expect("OrderedF64 is never NaN")
    }
}

impl std::hash::Hash for OrderedF64 {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            // Print `4500.0` rather than `4500` so re-parsing keeps the type.
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A ground OID: symbolic identity, integer value, or numeric value.
///
/// `Const` is the paper's `O`. It appears as the base of every version
/// identity, as method arguments and as method results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// Symbolic object identity (`henry`, `empl`, `mgr`, …).
    Sym(Symbol),
    /// Integer value-OID.
    Int(i64),
    /// Numeric (floating) value-OID.
    Num(OrderedF64),
}

impl Const {
    /// Numeric view, for arithmetic built-ins. Symbols have none.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::Sym(_) => None,
            Const::Int(i) => Some(i as f64),
            Const::Num(n) => Some(n.get()),
        }
    }

    /// True if this OID denotes a number (int or float).
    #[inline]
    pub fn is_numeric(self) -> bool {
        !matches!(self, Const::Sym(_))
    }

    /// The symbol, if this is a symbolic OID.
    #[inline]
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Const::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Build a numeric constant, collapsing integral floats to `Int`.
    ///
    /// Arithmetic is performed in `f64`; results that are exactly
    /// integral are stored as `Int` so that `100 * 1.1 + 200` compares
    /// equal to an integer salary found in the object base when it
    /// happens to be integral.
    ///
    /// The integral range is exactly `[-2^63, 2^63)`: `i64::MIN as
    /// f64` is `-2^63` (representable), while the upper bound must be
    /// *strict* because `i64::MAX as f64` rounds up to `2^63`, which
    /// does not fit an `i64` — an inclusive bound would admit
    /// `9223372036854775808.0` and the `as i64` cast would silently
    /// saturate it to `i64::MAX`.
    pub fn from_f64_normalized(v: f64) -> Option<Const> {
        if v.is_nan() {
            return None;
        }
        const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0; // -(i64::MIN as f64)
        if v.is_finite() && v.fract() == 0.0 && v >= (i64::MIN as f64) && v < TWO_POW_63 {
            // Exact: v is integral and strictly inside [-2^63, 2^63).
            Some(Const::Int(v as i64))
        } else {
            OrderedF64::new(v).map(Const::Num)
        }
    }

    /// Compare two OIDs numerically if both are numeric, otherwise fall
    /// back to the total order on `Const`.
    ///
    /// The numeric comparison makes `Int(3) = Num(3.0)` for built-ins,
    /// matching the paper's untyped value domain. `Int`/`Int` compares
    /// with integer ordering and `Int`/`Num` compares exactly (no
    /// `i64 → f64` coercion), so integers differing only above `2^53`
    /// — where `f64` loses integer precision — stay distinguishable.
    pub fn compare(self, other: Const) -> Ordering {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a.cmp(&b),
            (Const::Num(a), Const::Num(b)) => a.cmp(&b),
            (Const::Int(a), Const::Num(b)) => cmp_i64_f64(a, b.get()),
            (Const::Num(a), Const::Int(b)) => cmp_i64_f64(b, a.get()).reverse(),
            _ => self.cmp(&other),
        }
    }

    /// Equality under [`Const::compare`] (numeric coercion).
    #[inline]
    pub fn sem_eq(self, other: Const) -> bool {
        self.compare(other) == Ordering::Equal
    }
}

/// Exact comparison of an `i64` against a (non-NaN) `f64`.
///
/// Casting the integer to `f64` would be lossy above `2^53`; instead
/// the float's integral part — exactly convertible whenever it lies in
/// `[-2^63, 2^63)` — is compared in integer space, with the fractional
/// part breaking ties.
fn cmp_i64_f64(i: i64, f: f64) -> Ordering {
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;
    if f >= TWO_POW_63 {
        // Covers +∞; every finite f here also exceeds any i64.
        return Ordering::Less;
    }
    if f < (i64::MIN as f64) {
        // Covers -∞.
        return Ordering::Greater;
    }
    let trunc = f.trunc();
    // Exact: trunc is integral and within [-2^63, 2^63).
    match i.cmp(&(trunc as i64)) {
        Ordering::Equal => {
            let frac = f - trunc;
            if frac > 0.0 {
                Ordering::Less
            } else if frac < 0.0 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        ord => ord,
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "{s}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Num(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Sym(sym(v))
    }
}

impl From<Symbol> for Const {
    fn from(v: Symbol) -> Self {
        Const::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, num, oid};

    #[test]
    fn ordered_f64_rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::new(1.5).is_some());
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = OrderedF64::new(0.0).unwrap();
        let b = OrderedF64::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
    }

    #[test]
    fn numeric_coercion_in_compare() {
        assert!(int(3).sem_eq(num(3.0)));
        assert_eq!(int(2).compare(num(2.5)), Ordering::Less);
        assert_eq!(num(10.0).compare(int(4)), Ordering::Greater);
    }

    #[test]
    fn symbols_are_not_numeric() {
        assert!(!oid("henry").is_numeric());
        assert_eq!(oid("henry").as_f64(), None);
    }

    #[test]
    fn strict_eq_differs_from_sem_eq() {
        // Strict Eq (used for set membership in the object base)
        // distinguishes Int(3) from Num(3.0)…
        assert_ne!(int(3), num(3.0));
        // …but from_f64_normalized collapses integral floats, so
        // arithmetic results unify with integer storage.
        assert_eq!(Const::from_f64_normalized(3.0), Some(int(3)));
        assert_eq!(Const::from_f64_normalized(3.5), Some(num(3.5)));
        assert_eq!(Const::from_f64_normalized(f64::NAN), None);
    }

    #[test]
    fn int_compare_is_exact_above_2_pow_53() {
        // Regression: Int/Int comparison used to round-trip through
        // f64, where 2^53 + 1 and 2^53 collapse to the same float.
        let lo = int(9_007_199_254_740_992); // 2^53
        let hi = int(9_007_199_254_740_993); // 2^53 + 1
        assert!(!hi.sem_eq(lo));
        assert_eq!(hi.compare(lo), Ordering::Greater);
        assert_eq!(lo.compare(hi), Ordering::Less);
        assert!(int(i64::MAX).sem_eq(int(i64::MAX)));
        assert_eq!(int(i64::MAX).compare(int(i64::MAX - 1)), Ordering::Greater);
        assert_eq!(int(i64::MIN).compare(int(i64::MIN + 1)), Ordering::Less);
    }

    #[test]
    fn mixed_int_num_compare_is_exact() {
        // 2^53 as a float equals the integer 2^53 but not 2^53 + 1:
        // a lossy i64 → f64 coercion would call them equal.
        let f = num(9_007_199_254_740_992.0);
        assert!(int(9_007_199_254_740_992).sem_eq(f));
        assert_eq!(int(9_007_199_254_740_993).compare(f), Ordering::Greater);
        assert_eq!(f.compare(int(9_007_199_254_740_993)), Ordering::Less);
        // i64::MAX is below 2^63 = (i64::MAX as f64), not equal to it.
        let two_pow_63 = num(9_223_372_036_854_775_808.0);
        assert_eq!(int(i64::MAX).compare(two_pow_63), Ordering::Less);
        assert_eq!(two_pow_63.compare(int(i64::MAX)), Ordering::Greater);
        // Infinities order around every integer; fractions break ties.
        assert_eq!(int(i64::MAX).compare(num(f64::INFINITY)), Ordering::Less);
        assert_eq!(int(i64::MIN).compare(num(f64::NEG_INFINITY)), Ordering::Greater);
        assert_eq!(int(-2).compare(num(-2.5)), Ordering::Greater);
        assert_eq!(int(-3).compare(num(-2.5)), Ordering::Less);
    }

    #[test]
    fn from_f64_normalized_boundaries() {
        // ±2^53: still exactly representable, collapses to Int.
        assert_eq!(
            Const::from_f64_normalized(9_007_199_254_740_992.0),
            Some(int(9_007_199_254_740_992))
        );
        assert_eq!(
            Const::from_f64_normalized(-9_007_199_254_740_992.0),
            Some(int(-9_007_199_254_740_992))
        );
        // -2^63 == i64::MIN: representable, collapses to Int.
        assert_eq!(Const::from_f64_normalized(-9_223_372_036_854_775_808.0), Some(int(i64::MIN)));
        // +2^63 rounds `i64::MAX as f64` up and does NOT fit an i64.
        // Regression: the old `abs() <= i64::MAX as f64` guard let it
        // through and `as i64` saturated it to Int(i64::MAX).
        assert_eq!(
            Const::from_f64_normalized(9_223_372_036_854_775_808.0),
            Some(num(9_223_372_036_854_775_808.0))
        );
        // The largest f64 strictly below 2^63 still collapses.
        let below = 9_223_372_036_854_774_784.0; // 2^63 - 1024
        assert_eq!(Const::from_f64_normalized(below), Some(int(9_223_372_036_854_774_784)));
        // Infinities stay Num; NaN stays unrepresentable.
        assert_eq!(Const::from_f64_normalized(f64::INFINITY), Some(num(f64::INFINITY)));
        assert_eq!(Const::from_f64_normalized(f64::NAN), None);
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(oid("henry").to_string(), "henry");
        assert_eq!(int(250).to_string(), "250");
        assert_eq!(num(4500.0).to_string(), "4500.0");
        assert_eq!(num(1.1).to_string(), "1.1");
    }

    #[test]
    fn total_order_is_consistent() {
        let mut v = vec![int(5), oid("a"), num(2.5), int(1)];
        v.sort();
        let v2 = v.clone();
        v.sort();
        assert_eq!(v, v2);
    }
}
