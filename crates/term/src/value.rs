//! Ground object identities (OIDs).
//!
//! §2.1 of the paper: "For formal simplicity, we do not introduce types
//! for values — we consider values as specific OIDs in `O`." The OID
//! domain therefore contains symbolic identities (`henry`, `empl`),
//! 64-bit integers and finite 64-bit floats. The domain is totally
//! ordered so the arithmetic built-ins (`<`, `>`, …) are decidable on
//! all of it.

use std::cmp::Ordering;
use std::fmt;

use crate::{sym, Symbol};

/// A 64-bit float that is guaranteed finite-or-infinite but never NaN,
/// giving it a total order and a consistent `Eq`/`Hash`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a float; `None` if it is NaN.
    #[inline]
    pub fn new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            // Normalize -0.0 to 0.0 so Eq and Hash agree.
            Some(OrderedF64(if v == 0.0 { 0.0 } else { v }))
        }
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN excluded by construction.
        self.0.partial_cmp(&other.0).expect("OrderedF64 is never NaN")
    }
}

impl std::hash::Hash for OrderedF64 {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            // Print `4500.0` rather than `4500` so re-parsing keeps the type.
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A ground OID: symbolic identity, integer value, or numeric value.
///
/// `Const` is the paper's `O`. It appears as the base of every version
/// identity, as method arguments and as method results.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// Symbolic object identity (`henry`, `empl`, `mgr`, …).
    Sym(Symbol),
    /// Integer value-OID.
    Int(i64),
    /// Numeric (floating) value-OID.
    Num(OrderedF64),
}

impl Const {
    /// Numeric view, for arithmetic built-ins. Symbols have none.
    #[inline]
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Const::Sym(_) => None,
            Const::Int(i) => Some(i as f64),
            Const::Num(n) => Some(n.get()),
        }
    }

    /// True if this OID denotes a number (int or float).
    #[inline]
    pub fn is_numeric(self) -> bool {
        !matches!(self, Const::Sym(_))
    }

    /// The symbol, if this is a symbolic OID.
    #[inline]
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Const::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Build a numeric constant, collapsing integral floats to `Int`.
    ///
    /// Arithmetic is performed in `f64`; results that are exactly
    /// integral are stored as `Int` so that `100 * 1.1 + 200` compares
    /// equal to an integer salary found in the object base when it
    /// happens to be integral.
    pub fn from_f64_normalized(v: f64) -> Option<Const> {
        if v.is_nan() {
            return None;
        }
        if v.fract() == 0.0 && v.abs() <= (i64::MAX as f64) && v.is_finite() {
            Some(Const::Int(v as i64))
        } else {
            OrderedF64::new(v).map(Const::Num)
        }
    }

    /// Compare two OIDs numerically if both are numeric, otherwise fall
    /// back to the total order on `Const`.
    ///
    /// The numeric comparison makes `Int(3) = Num(3.0)` for built-ins,
    /// matching the paper's untyped value domain.
    pub fn compare(self, other: Const) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).expect("no NaN in Const"),
            _ => self.cmp(&other),
        }
    }

    /// Equality under [`Const::compare`] (numeric coercion).
    #[inline]
    pub fn sem_eq(self, other: Const) -> bool {
        self.compare(other) == Ordering::Equal
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Sym(s) => write!(f, "{s}"),
            Const::Int(i) => write!(f, "{i}"),
            Const::Num(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<&str> for Const {
    fn from(v: &str) -> Self {
        Const::Sym(sym(v))
    }
}

impl From<Symbol> for Const {
    fn from(v: Symbol) -> Self {
        Const::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, num, oid};

    #[test]
    fn ordered_f64_rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_none());
        assert!(OrderedF64::new(1.5).is_some());
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = OrderedF64::new(0.0).unwrap();
        let b = OrderedF64::new(-0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.0.to_bits(), b.0.to_bits());
    }

    #[test]
    fn numeric_coercion_in_compare() {
        assert!(int(3).sem_eq(num(3.0)));
        assert_eq!(int(2).compare(num(2.5)), Ordering::Less);
        assert_eq!(num(10.0).compare(int(4)), Ordering::Greater);
    }

    #[test]
    fn symbols_are_not_numeric() {
        assert!(!oid("henry").is_numeric());
        assert_eq!(oid("henry").as_f64(), None);
    }

    #[test]
    fn strict_eq_differs_from_sem_eq() {
        // Strict Eq (used for set membership in the object base)
        // distinguishes Int(3) from Num(3.0)…
        assert_ne!(int(3), num(3.0));
        // …but from_f64_normalized collapses integral floats, so
        // arithmetic results unify with integer storage.
        assert_eq!(Const::from_f64_normalized(3.0), Some(int(3)));
        assert_eq!(Const::from_f64_normalized(3.5), Some(num(3.5)));
        assert_eq!(Const::from_f64_normalized(f64::NAN), None);
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(oid("henry").to_string(), "henry");
        assert_eq!(int(250).to_string(), "250");
        assert_eq!(num(4500.0).to_string(), "4500.0");
        assert_eq!(num(1.1).to_string(), "1.1");
    }

    #[test]
    fn total_order_is_consistent() {
        let mut v = vec![int(5), oid("a"), num(2.5), int(1)];
        v.sort();
        let v2 = v.clone();
        v.sort();
        assert_eq!(v, v2);
    }
}
