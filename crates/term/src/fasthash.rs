//! A fast, non-cryptographic hasher for integer-heavy keys.
//!
//! The evaluator's hot loops hash interned symbols, packed chains and
//! small tuples; SipHash (the `std` default) is measurably slower for
//! such keys. We implement the well-known Fx multiply-rotate scheme
//! (as used by rustc) in ~30 lines instead of adding a dependency —
//! see DESIGN.md §4 for the justification.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher.
///
/// Not DoS-resistant; only used for in-process data structures whose
/// keys are not attacker controlled.
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn combine(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.combine(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.combine(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.combine(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.combine(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.combine(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.combine(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.combine(i as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FastHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn discriminates_simple_keys() {
        // Not a statistical test, just a sanity check against the
        // all-zero-state failure mode.
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(hash_of).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        assert_ne!(hash_of([1u8, 2, 3].as_slice()), hash_of([1u8, 2, 4].as_slice()));
        assert_ne!(
            hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 9].as_slice()),
            hash_of([1u8, 2, 3, 4, 5, 6, 7, 8, 10].as_slice())
        );
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastHashMap<u32, &str> = FastHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), None);
    }
}
