//! Packed update chains: the `F = {ins, del, mod}` functor strings.
//!
//! A version identity is `φk(φk-1(...φ1(o)))` for update kinds `φi`.
//! We store the application string `φ1 … φk` (innermost first) packed
//! two bits per kind in a `u64`, plus an explicit length. The paper's
//! subterm relation on VIDs of one object ("v is a subterm of v'",
//! §5 version-linearity) becomes a bit-prefix test.

use std::fmt;

/// One of the paper's three update function symbols.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum UpdateKind {
    /// `ins` — the new version's state gains a method-application.
    Ins = 1,
    /// `del` — the new version's state loses a method-application.
    Del = 2,
    /// `mod` — the new version's state replaces a method result.
    Mod = 3,
}

impl UpdateKind {
    /// All kinds, in declaration order.
    pub const ALL: [UpdateKind; 3] = [UpdateKind::Ins, UpdateKind::Del, UpdateKind::Mod];

    /// The surface keyword (`ins` / `del` / `mod`).
    pub fn keyword(self) -> &'static str {
        match self {
            UpdateKind::Ins => "ins",
            UpdateKind::Del => "del",
            UpdateKind::Mod => "mod",
        }
    }

    #[inline]
    fn from_bits(b: u64) -> UpdateKind {
        match b {
            1 => UpdateKind::Ins,
            2 => UpdateKind::Del,
            3 => UpdateKind::Mod,
            _ => unreachable!("invalid chain bits"),
        }
    }
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Error: an update chain exceeded [`Chain::MAX_LEN`] applications.
///
/// The paper's safe programs only build chains as deep as the number of
/// syntactically distinct version-id-terms in the program, so 32 levels
/// is far beyond any realistic update-program; hitting this limit almost
/// certainly indicates a runaway program and is reported as an error
/// rather than a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainOverflow;

impl fmt::Display for ChainOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update chain exceeds {} applications", Chain::MAX_LEN)
    }
}

impl std::error::Error for ChainOverflow {}

/// A packed string of update kinds, innermost (first applied) first.
///
/// `Chain` is `Copy`, 16 bytes, and totally ordered (lexicographic in
/// application order — handy for deterministic iteration, not
/// semantically meaningful).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Chain {
    bits: u64,
    len: u8,
}

impl Chain {
    /// The empty chain: the object itself, no updates applied.
    pub const EMPTY: Chain = Chain { bits: 0, len: 0 };

    /// Maximum number of stacked updates (2 bits each in a `u64`).
    pub const MAX_LEN: usize = 32;

    /// Number of applied updates.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True for the bare-object chain.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Apply one more update on top (outermost); `ins(self)` etc.
    #[inline]
    pub fn push(self, kind: UpdateKind) -> Result<Chain, ChainOverflow> {
        if self.len() >= Self::MAX_LEN {
            return Err(ChainOverflow);
        }
        Ok(Chain { bits: self.bits | ((kind as u64) << (2 * self.len)), len: self.len + 1 })
    }

    /// Remove the outermost update, returning the inner chain and the
    /// removed kind. `None` on the empty chain.
    #[inline]
    pub fn pop(self) -> Option<(Chain, UpdateKind)> {
        if self.len == 0 {
            return None;
        }
        let newlen = self.len - 1;
        let shift = 2 * newlen as u64;
        let kind = UpdateKind::from_bits((self.bits >> shift) & 0b11);
        Some((Chain { bits: self.bits & !(0b11 << shift), len: newlen }, kind))
    }

    /// The update kind applied at position `i` (0 = innermost/first).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(self, i: usize) -> UpdateKind {
        assert!(i < self.len(), "chain index {i} out of bounds (len {})", self.len());
        UpdateKind::from_bits((self.bits >> (2 * i)) & 0b11)
    }

    /// The outermost (most recent) update kind, if any.
    #[inline]
    pub fn outermost(self) -> Option<UpdateKind> {
        if self.len == 0 {
            None
        } else {
            Some(self.get(self.len() - 1))
        }
    }

    /// Iterate kinds in application order (innermost first).
    pub fn iter(self) -> impl Iterator<Item = UpdateKind> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Build from a slice of kinds in application order.
    pub fn from_kinds(kinds: &[UpdateKind]) -> Result<Chain, ChainOverflow> {
        let mut c = Chain::EMPTY;
        for &k in kinds {
            c = c.push(k)?;
        }
        Ok(c)
    }

    /// §5 subterm relation restricted to chains: `self` is a prefix of
    /// `other` in application order, i.e. the version denoted by `self`
    /// (over some base) is a subterm of the one denoted by `other`.
    /// Reflexive. O(1).
    #[inline]
    pub fn is_prefix_of(self, other: Chain) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 { 0 } else { u64::MAX >> (64 - 2 * self.len as u64) };
        (other.bits & mask) == self.bits
    }

    /// True if the two chains are comparable in the subterm order —
    /// exactly the paper's *version-linearity* condition for a pair.
    #[inline]
    pub fn comparable(self, other: Chain) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// All prefixes from the empty chain up to and including `self`
    /// (the subterm chains of a VID with this chain), innermost first.
    pub fn prefixes(self) -> impl Iterator<Item = Chain> {
        (0..=self.len()).map(move |k| {
            let mask = if k == 0 { 0 } else { u64::MAX >> (64 - 2 * k as u64) };
            Chain { bits: self.bits & mask, len: k as u8 }
        })
    }
}

impl fmt::Display for Chain {
    /// Displays in functional orientation without a base, e.g. the chain
    /// `[mod, del]` (mod applied first) prints `del(mod(·))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len()).rev() {
            write!(f, "{}(", self.get(i))?;
        }
        write!(f, "·")?;
        for _ in 0..self.len() {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chain[{}]", self)
    }
}

impl PartialOrd for Chain {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Chain {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic in application order, then by length.
        let common = self.len.min(other.len) as usize;
        for i in 0..common {
            match self.get(i).cmp(&other.get(i)) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.len.cmp(&other.len)
    }
}

#[cfg(test)]
mod tests {
    use super::UpdateKind::{Del, Ins, Mod};
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let c = Chain::EMPTY.push(Mod).unwrap().push(Del).unwrap().push(Ins).unwrap();
        assert_eq!(c.len(), 3);
        let (c2, k) = c.pop().unwrap();
        assert_eq!(k, Ins);
        let (c3, k) = c2.pop().unwrap();
        assert_eq!(k, Del);
        let (c4, k) = c3.pop().unwrap();
        assert_eq!(k, Mod);
        assert!(c4.is_empty());
        assert_eq!(c4.pop(), None);
    }

    #[test]
    fn display_functional_orientation() {
        // Paper's ins(del(mod(o))): mod applied first.
        let c = Chain::from_kinds(&[Mod, Del, Ins]).unwrap();
        assert_eq!(c.to_string(), "ins(del(mod(·)))");
        assert_eq!(Chain::EMPTY.to_string(), "·");
    }

    #[test]
    fn prefix_is_subterm() {
        let modc = Chain::from_kinds(&[Mod]).unwrap();
        let dm = Chain::from_kinds(&[Mod, Del]).unwrap();
        let idm = Chain::from_kinds(&[Mod, Del, Ins]).unwrap();
        assert!(Chain::EMPTY.is_prefix_of(idm));
        assert!(modc.is_prefix_of(dm));
        assert!(dm.is_prefix_of(idm));
        assert!(!dm.is_prefix_of(modc));
        assert!(idm.is_prefix_of(idm));
        // mod(o) vs ins(o): incomparable.
        let ins = Chain::from_kinds(&[Ins]).unwrap();
        assert!(!modc.is_prefix_of(ins));
        assert!(!ins.is_prefix_of(modc));
        assert!(!ins.comparable(modc));
        assert!(modc.comparable(idm));
    }

    #[test]
    fn prefixes_enumerate_subterm_chains() {
        let idm = Chain::from_kinds(&[Mod, Del, Ins]).unwrap();
        let all: Vec<Chain> = idm.prefixes().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], Chain::EMPTY);
        assert_eq!(all[1], Chain::from_kinds(&[Mod]).unwrap());
        assert_eq!(all[2], Chain::from_kinds(&[Mod, Del]).unwrap());
        assert_eq!(all[3], idm);
    }

    #[test]
    fn overflow_is_an_error() {
        let mut c = Chain::EMPTY;
        for _ in 0..Chain::MAX_LEN {
            c = c.push(Ins).unwrap();
        }
        assert_eq!(c.push(Ins), Err(ChainOverflow));
    }

    #[test]
    fn get_out_of_bounds_panics() {
        let c = Chain::from_kinds(&[Ins]).unwrap();
        let r = std::panic::catch_unwind(|| c.get(1));
        assert!(r.is_err());
    }

    #[test]
    fn max_length_chain_prefix_check() {
        let full = Chain::from_kinds(&[Mod; 32]).unwrap();
        assert!(full.is_prefix_of(full));
        let half = Chain::from_kinds(&[Mod; 16]).unwrap();
        assert!(half.is_prefix_of(full));
        assert!(!full.is_prefix_of(half));
    }

    #[test]
    fn ord_is_total_and_consistent() {
        let a = Chain::from_kinds(&[Ins, Del]).unwrap();
        let b = Chain::from_kinds(&[Ins]).unwrap();
        let c = Chain::from_kinds(&[Mod]).unwrap();
        let mut v = [a, b, c, Chain::EMPTY];
        v.sort();
        assert_eq!(v[0], Chain::EMPTY);
        // prefix sorts before extension
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }
}
