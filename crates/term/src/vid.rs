//! Ground version identities (VIDs).
//!
//! §2.1: "A version-id-term is defined as follows: (1) any object-id-term
//! is also a version-id-term; (2) let V be a version-id-term, then φ(V)
//! with φ ∈ F is a version-id-term. The set of all ground
//! version-id-terms is denoted by `O_V`; its elements are called
//! version-identities (VIDs)." Note `O ⊆ O_V`: a bare OID is the VID of
//! the initial, not-yet-updated version.

use std::fmt;

use crate::{Chain, ChainOverflow, Const, UpdateKind};

/// A ground version identity: a base OID and the chain of updates
/// applied to it. `Vid` is `Copy` (24 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vid {
    base: Const,
    chain: Chain,
}

impl Vid {
    /// The initial version of an object: the OID itself (`o ∈ O ⊆ O_V`).
    #[inline]
    pub fn object(base: Const) -> Vid {
        Vid { base, chain: Chain::EMPTY }
    }

    /// A version with an explicit chain over `base`.
    #[inline]
    pub fn new(base: Const, chain: Chain) -> Vid {
        Vid { base, chain }
    }

    /// The object this is a version of.
    #[inline]
    pub fn base(self) -> Const {
        self.base
    }

    /// The applied update chain.
    #[inline]
    pub fn chain(self) -> Chain {
        self.chain
    }

    /// True for a bare OID (no updates applied).
    #[inline]
    pub fn is_object(self) -> bool {
        self.chain.is_empty()
    }

    /// `φ(self)` — the version after an update of kind `φ`.
    #[inline]
    pub fn apply(self, kind: UpdateKind) -> Result<Vid, ChainOverflow> {
        Ok(Vid { base: self.base, chain: self.chain.push(kind)? })
    }

    /// Strip the outermost functor: `mod(v) → (v, Mod)`; `None` for a
    /// bare OID.
    #[inline]
    pub fn unapply(self) -> Option<(Vid, UpdateKind)> {
        self.chain.pop().map(|(c, k)| (Vid { base: self.base, chain: c }, k))
    }

    /// §5 subterm relation: `self` is a (reflexive) subterm of `other`.
    /// Both must denote versions of the same object.
    #[inline]
    pub fn is_subterm_of(self, other: Vid) -> bool {
        self.base == other.base && self.chain.is_prefix_of(other.chain)
    }

    /// Version-linearity for a pair: one is a subterm of the other.
    #[inline]
    pub fn comparable(self, other: Vid) -> bool {
        self.base == other.base && self.chain.comparable(other.chain)
    }

    /// All subterm VIDs, innermost (bare object) first, ending in `self`.
    pub fn subterms(self) -> impl Iterator<Item = Vid> {
        let base = self.base;
        self.chain.prefixes().map(move |c| Vid { base, chain: c })
    }

    /// Depth of the version (number of updates applied).
    #[inline]
    pub fn depth(self) -> usize {
        self.chain.len()
    }
}

impl fmt::Display for Vid {
    /// Functional notation, e.g. `del(mod(bob))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.chain.len();
        for i in (0..n).rev() {
            write!(f, "{}(", self.chain.get(i))?;
        }
        write!(f, "{}", self.base)?;
        for _ in 0..n {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Vid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Const> for Vid {
    fn from(base: Const) -> Self {
        Vid::object(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, oid};
    use UpdateKind::{Del, Ins, Mod};

    #[test]
    fn display_matches_paper_notation() {
        let henry = Vid::object(oid("henry"));
        assert_eq!(henry.to_string(), "henry");
        let m = henry.apply(Mod).unwrap();
        assert_eq!(m.to_string(), "mod(henry)");
        let dm = m.apply(Del).unwrap();
        assert_eq!(dm.to_string(), "del(mod(henry))");
        let idm = dm.apply(Ins).unwrap();
        assert_eq!(idm.to_string(), "ins(del(mod(henry)))");
    }

    #[test]
    fn unapply_inverts_apply() {
        let v = Vid::object(oid("o")).apply(Mod).unwrap().apply(Del).unwrap();
        let (inner, k) = v.unapply().unwrap();
        assert_eq!(k, Del);
        assert_eq!(inner, Vid::object(oid("o")).apply(Mod).unwrap());
        assert_eq!(Vid::object(oid("o")).unapply(), None);
    }

    #[test]
    fn subterm_requires_same_base() {
        let a = Vid::object(oid("a")).apply(Mod).unwrap();
        let b = Vid::object(oid("b")).apply(Mod).unwrap().apply(Del).unwrap();
        assert!(!a.is_subterm_of(b));
        assert!(!a.comparable(b));
        let a2 = Vid::object(oid("a")).apply(Mod).unwrap().apply(Del).unwrap();
        assert!(a.is_subterm_of(a2));
        assert!(a.comparable(a2));
    }

    #[test]
    fn subterms_enumeration() {
        let v = Vid::object(int(7)).apply(Mod).unwrap().apply(Ins).unwrap();
        let subs: Vec<String> = v.subterms().map(|s| s.to_string()).collect();
        assert_eq!(subs, vec!["7", "mod(7)", "ins(mod(7))"]);
    }

    #[test]
    fn values_can_be_version_bases() {
        // Values are OIDs; nothing stops them being versioned in the
        // term layer (the engine never does, but the algebra is total).
        let v = Vid::object(int(250)).apply(Del).unwrap();
        assert_eq!(v.to_string(), "del(250)");
        assert_eq!(v.depth(), 1);
    }
}
