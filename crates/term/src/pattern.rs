//! The non-ground term layer: object-id-terms and version-id-terms with
//! variables, their matching against ground data, and the unification
//! used by the stratification conditions of §4.
//!
//! Two consequences of the paper's typing discipline drive this module:
//!
//! 1. Variables denote OIDs only ("a variable can only be instantiated
//!    by a OID, not VID", §2.1). A version-id-term is therefore always
//!    a *fixed* chain of update functors over a variable-or-constant
//!    base — never a variable standing for a whole version.
//! 2. It follows that unification of version-id-terms is decidable by a
//!    chain-equality check plus base unification (`mod(E)` does **not**
//!    unify with a bare variable `X`, because `X` ranges over `O` while
//!    `mod(E)` denotes an element of `O_V \ O`). This is exactly what
//!    makes the paper's own stratification of its running example come
//!    out as printed; see DESIGN.md D2.

use std::fmt;

use crate::{Bindings, Chain, Const, UpdateKind, VarId, Vid};

/// An object-id-term: a variable or an OID (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BaseTerm {
    /// A rule variable (ranges over `O`).
    Var(VarId),
    /// A ground OID.
    Const(Const),
}

/// Method arguments and results are object-id-terms too (footnote 1 of
/// the paper: "On the result-position of a method only object-id-terms
/// will be allowed, not version-id-terms").
pub type ArgTerm = BaseTerm;

impl BaseTerm {
    /// Ground value under `bindings`, if any.
    #[inline]
    pub fn ground(self, bindings: &Bindings) -> Option<Const> {
        match self {
            BaseTerm::Var(v) => bindings.get(v),
            BaseTerm::Const(c) => Some(c),
        }
    }

    /// True if this term contains no variable.
    #[inline]
    pub fn is_ground(self) -> bool {
        matches!(self, BaseTerm::Const(_))
    }

    /// The variable, if this term is one.
    #[inline]
    pub fn as_var(self) -> Option<VarId> {
        match self {
            BaseTerm::Var(v) => Some(v),
            BaseTerm::Const(_) => None,
        }
    }

    /// Match against a ground OID, binding a variable if needed.
    /// Returns false (without consuming trail marks) on mismatch.
    #[inline]
    pub fn matches(self, value: Const, bindings: &mut Bindings) -> bool {
        match self {
            BaseTerm::Var(v) => bindings.unify_var(v, value),
            BaseTerm::Const(c) => c == value,
        }
    }

    /// Syntactic unifiability with another object-id-term, treating the
    /// two sides as standardized apart (variables from distinct rules).
    #[inline]
    pub fn unifiable(self, other: BaseTerm) -> bool {
        match (self, other) {
            (BaseTerm::Var(_), _) | (_, BaseTerm::Var(_)) => true,
            (BaseTerm::Const(a), BaseTerm::Const(b)) => a == b,
        }
    }
}

impl fmt::Display for BaseTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTerm::Var(v) => write!(f, "{v:?}"),
            BaseTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Const> for BaseTerm {
    fn from(c: Const) -> Self {
        BaseTerm::Const(c)
    }
}

impl From<VarId> for BaseTerm {
    fn from(v: VarId) -> Self {
        BaseTerm::Var(v)
    }
}

/// A version-id-term: an update chain over an object-id-term base.
///
/// Examples: `E` (empty chain, var base), `henry`, `mod(E)`,
/// `del(mod(bob))`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VidTerm {
    /// The innermost object-id-term.
    pub base: BaseTerm,
    /// The functor chain applied over it (innermost first).
    pub chain: Chain,
}

impl VidTerm {
    /// A bare object-id-term as a version-id-term.
    #[inline]
    pub fn object(base: BaseTerm) -> VidTerm {
        VidTerm { base, chain: Chain::EMPTY }
    }

    /// A ground VID as a term.
    #[inline]
    pub fn from_vid(vid: Vid) -> VidTerm {
        VidTerm { base: BaseTerm::Const(vid.base()), chain: vid.chain() }
    }

    /// Apply one more update functor (outermost).
    #[inline]
    pub fn apply(self, kind: UpdateKind) -> Result<VidTerm, crate::ChainOverflow> {
        Ok(VidTerm { base: self.base, chain: self.chain.push(kind)? })
    }

    /// True if the term contains no variable.
    #[inline]
    pub fn is_ground(self) -> bool {
        self.base.is_ground()
    }

    /// Ground VID under `bindings`, if the base is bound.
    #[inline]
    pub fn ground(self, bindings: &Bindings) -> Option<Vid> {
        self.base.ground(bindings).map(|c| Vid::new(c, self.chain))
    }

    /// Match against a ground VID: the chains must be identical and the
    /// base must match (binding a base variable if unbound).
    #[inline]
    pub fn matches(self, vid: Vid, bindings: &mut Bindings) -> bool {
        self.chain == vid.chain() && self.base.matches(vid.base(), bindings)
    }

    /// Unifiability of two version-id-terms standardized apart: chains
    /// identical and bases unifiable (DESIGN.md D2).
    #[inline]
    pub fn unifiable(self, other: VidTerm) -> bool {
        self.chain == other.chain && self.base.unifiable(other.base)
    }

    /// The subterm version-id-terms of `self`: every chain prefix over
    /// the same base, innermost first, ending with `self` itself.
    ///
    /// §4 uses "unifies with a subterm of V" in all four stratification
    /// conditions; this enumeration is what they quantify over.
    pub fn subterm_terms(self) -> impl Iterator<Item = VidTerm> {
        let base = self.base;
        self.chain.prefixes().map(move |c| VidTerm { base, chain: c })
    }

    /// True if `other` unifies with some (reflexive) subterm of `self`.
    pub fn subterm_unifies(self, other: VidTerm) -> bool {
        // Chains must match exactly for unification, so the only
        // candidate subterm is the prefix of self.chain with
        // other.chain.len() levels — if it exists and is equal.
        other.chain.is_prefix_of(self.chain) && self.base.unifiable(other.base)
    }

    /// Depth of the term (number of update functors).
    #[inline]
    pub fn depth(self) -> usize {
        self.chain.len()
    }

    /// The inner version-id-term with the outermost functor stripped.
    #[inline]
    pub fn unapply(self) -> Option<(VidTerm, UpdateKind)> {
        self.chain.pop().map(|(c, k)| (VidTerm { base: self.base, chain: c }, k))
    }
}

impl fmt::Display for VidTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.chain.len();
        for i in (0..n).rev() {
            write!(f, "{}(", self.chain.get(i))?;
        }
        write!(f, "{}", self.base)?;
        for _ in 0..n {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl From<Vid> for VidTerm {
    fn from(v: Vid) -> Self {
        VidTerm::from_vid(v)
    }
}

/// The version referenced by a version-term: either a classic
/// version-id-term (fixed chain over an object-id-term) or a
/// VID-quantified variable (§6 extension, surface syntax `$V`).
///
/// VID variables range over the ground VIDs *present in the current
/// interpretation* and are body-only; both restrictions preserve the
/// paper's termination argument (a safe program still creates finitely
/// many versions because heads quantify over OIDs with fixed chains).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VidRef {
    /// A version-id-term.
    Term(VidTerm),
    /// A VID variable.
    Var(crate::VidVarId),
}

impl VidRef {
    /// A bare object-id-term.
    #[inline]
    pub fn object(base: BaseTerm) -> VidRef {
        VidRef::Term(VidTerm::object(base))
    }

    /// Ground VID under `bindings`, if resolvable.
    #[inline]
    pub fn ground(self, bindings: &Bindings) -> Option<Vid> {
        match self {
            VidRef::Term(t) => t.ground(bindings),
            VidRef::Var(v) => bindings.get_vid(v),
        }
    }

    /// The version-id-term, if this is not a VID variable.
    #[inline]
    pub fn as_term(self) -> Option<VidTerm> {
        match self {
            VidRef::Term(t) => Some(t),
            VidRef::Var(_) => None,
        }
    }

    /// The VID variable, if any.
    #[inline]
    pub fn as_vid_var(self) -> Option<crate::VidVarId> {
        match self {
            VidRef::Term(_) => None,
            VidRef::Var(v) => Some(v),
        }
    }

    /// Match against a ground VID, binding the base variable or the VID
    /// variable as needed.
    #[inline]
    pub fn matches(self, vid: Vid, bindings: &mut Bindings) -> bool {
        match self {
            VidRef::Term(t) => t.matches(vid, bindings),
            VidRef::Var(v) => bindings.unify_vid_var(v, vid),
        }
    }
}

impl From<VidTerm> for VidRef {
    fn from(t: VidTerm) -> Self {
        VidRef::Term(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, oid};
    use UpdateKind::{Del, Ins, Mod};

    fn var(i: u32) -> BaseTerm {
        BaseTerm::Var(VarId(i))
    }

    fn vt(base: BaseTerm, kinds: &[UpdateKind]) -> VidTerm {
        VidTerm { base, chain: Chain::from_kinds(kinds).unwrap() }
    }

    #[test]
    fn matching_binds_base_variable() {
        let t = vt(var(0), &[Mod]);
        let ground = Vid::object(oid("phil")).apply(Mod).unwrap();
        let mut b = Bindings::new(1);
        assert!(t.matches(ground, &mut b));
        assert_eq!(b.get(VarId(0)), Some(oid("phil")));
        // Re-matching against a different object fails on the binding.
        let other = Vid::object(oid("bob")).apply(Mod).unwrap();
        assert!(!t.matches(other, &mut b));
    }

    #[test]
    fn matching_requires_exact_chain() {
        let t = vt(var(0), &[Mod]);
        let mut b = Bindings::new(1);
        assert!(!t.matches(Vid::object(oid("phil")), &mut b));
        let deeper = Vid::object(oid("phil")).apply(Mod).unwrap().apply(Del).unwrap();
        assert!(!t.matches(deeper, &mut b));
        assert!(!b.is_bound(VarId(0)));
    }

    #[test]
    fn unification_is_chain_exact() {
        // D2: mod(E) does not unify with a bare variable X.
        let mod_e = vt(var(0), &[Mod]);
        let x = vt(var(1), &[]);
        assert!(!mod_e.unifiable(x));
        assert!(!x.unifiable(mod_e));
        // mod(E) unifies with mod(F) and with mod(o).
        assert!(mod_e.unifiable(vt(var(1), &[Mod])));
        assert!(mod_e.unifiable(vt(BaseTerm::Const(oid("o")), &[Mod])));
        // del(mod(E)) vs mod(F): no.
        assert!(!vt(var(0), &[Mod, Del]).unifiable(vt(var(1), &[Mod])));
        // Constants must agree.
        assert!(
            !vt(BaseTerm::Const(oid("a")), &[Ins]).unifiable(vt(BaseTerm::Const(oid("b")), &[Ins]))
        );
    }

    #[test]
    fn subterm_unifies_enumerates_prefixes() {
        // Head del(mod(E)): V = mod(E), but the helper works on any term.
        let dme = vt(var(0), &[Mod, Del]);
        // mod(F) unifies with the subterm mod(E).
        assert!(dme.subterm_unifies(vt(var(1), &[Mod])));
        // F (bare var) unifies with the subterm E.
        assert!(dme.subterm_unifies(vt(var(1), &[])));
        // del(F) does not unify with any subterm (chain [Del] is not a
        // prefix of [Mod, Del]).
        assert!(!dme.subterm_unifies(vt(var(1), &[Del])));
        // del(mod(F)) unifies with the whole term.
        assert!(dme.subterm_unifies(vt(var(1), &[Mod, Del])));
    }

    #[test]
    fn paper_example_stratification_unifications() {
        // rule1/rule2 heads: mod(E); rule3 head: del(mod(E)) with
        // V = mod(E); rule4 head: ins(mod(E)) with V = mod(E).
        let head12 = vt(var(0), &[Mod]);
        let v3 = vt(var(1), &[Mod]); // the V of del[mod(E)]
                                     // Condition (a): head12 unifies with a subterm of V3.
        assert!(v3.subterm_unifies(head12));
        // rule3's full head VID does not unify with V4 = mod(E)'s subterms.
        let head3 = vt(var(1), &[Mod, Del]);
        let v4 = vt(var(2), &[Mod]);
        assert!(!v4.subterm_unifies(head3));
    }

    #[test]
    fn ground_and_display() {
        let t = vt(var(0), &[Mod, Ins]);
        let mut b = Bindings::new(1);
        assert_eq!(t.ground(&b), None);
        b.bind(VarId(0), int(9));
        let v = t.ground(&b).unwrap();
        assert_eq!(v.to_string(), "ins(mod(9))");
        assert_eq!(t.to_string(), "ins(mod(?0))");
    }

    #[test]
    fn subterm_terms_order() {
        let t = vt(BaseTerm::Const(oid("o")), &[Mod, Del]);
        let subs: Vec<String> = t.subterm_terms().map(|s| s.to_string()).collect();
        assert_eq!(subs, vec!["o", "mod(o)", "del(mod(o))"]);
    }
}
