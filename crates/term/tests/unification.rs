//! Property tests for the pattern layer: unification soundness and
//! match/ground coherence.

use proptest::prelude::*;
use ruvo_term::{oid, BaseTerm, Bindings, Chain, Const, UpdateKind, VarId, Vid, VidTerm};

fn arb_kind() -> impl Strategy<Value = UpdateKind> {
    prop_oneof![Just(UpdateKind::Ins), Just(UpdateKind::Del), Just(UpdateKind::Mod)]
}

fn arb_chain() -> impl Strategy<Value = Chain> {
    proptest::collection::vec(arb_kind(), 0..6).prop_map(|ks| Chain::from_kinds(&ks).unwrap())
}

fn arb_const() -> impl Strategy<Value = Const> {
    prop_oneof![(0u8..5).prop_map(|i| oid(&format!("c{i}"))), (-3i64..20).prop_map(Const::Int),]
}

/// Base terms over a two-variable vocabulary.
fn arb_base() -> impl Strategy<Value = BaseTerm> {
    prop_oneof![
        (0u32..2).prop_map(|v| BaseTerm::Var(VarId(v))),
        arb_const().prop_map(BaseTerm::Const),
    ]
}

fn arb_term() -> impl Strategy<Value = VidTerm> {
    (arb_base(), arb_chain()).prop_map(|(base, chain)| VidTerm { base, chain })
}

proptest! {
    /// Soundness: if two terms (standardized apart) unify, some ground
    /// instantiation makes them literally equal.
    #[test]
    fn unifiable_terms_have_common_instance(a in arb_term(), b in arb_term()) {
        // Standardize apart: b's variables get ids offset by 2.
        let b = VidTerm {
            base: match b.base {
                BaseTerm::Var(v) => BaseTerm::Var(VarId(v.0 + 2)),
                c => c,
            },
            chain: b.chain,
        };
        let witness = oid("witness");
        let ground = |t: VidTerm| -> Vid {
            match t.base {
                BaseTerm::Const(c) => Vid::new(c, t.chain),
                BaseTerm::Var(_) => Vid::new(witness, t.chain),
            }
        };
        if a.unifiable(b) {
            // Bind every variable to the other side's constant (or the
            // shared witness when both are variables).
            let inst_a = match (a.base, b.base) {
                (BaseTerm::Var(_), BaseTerm::Const(c)) => Vid::new(c, a.chain),
                _ => ground(a),
            };
            let inst_b = match (b.base, a.base) {
                (BaseTerm::Var(_), BaseTerm::Const(c)) => Vid::new(c, b.chain),
                _ => ground(b),
            };
            prop_assert_eq!(inst_a, inst_b, "unifiable but no common instance: {} ~ {}", a, b);
        } else {
            // Completeness for the ground-ground case: non-unifiable
            // ground terms must differ.
            if a.is_ground() && b.is_ground() {
                let empty = Bindings::new(0);
                prop_assert_ne!(a.ground(&empty).unwrap(), b.ground(&empty).unwrap());
            }
        }
    }

    /// Matching a pattern against a ground VID binds the base so that
    /// grounding the pattern reproduces the VID exactly.
    #[test]
    fn match_then_ground_is_identity(t in arb_term(), c in arb_const()) {
        let target = Vid::new(c, t.chain);
        let mut b = Bindings::new(4);
        if t.matches(target, &mut b) {
            prop_assert_eq!(t.ground(&b), Some(target));
        } else {
            // Only a constant-base mismatch can fail (chains equal here).
            match t.base {
                BaseTerm::Const(k) => prop_assert_ne!(k, c),
                BaseTerm::Var(_) => prop_assert!(false, "variable match cannot fail"),
            }
        }
    }

    /// subterm_unifies(a, b) agrees with the naive definition:
    /// ∃ s ∈ subterms(a) with s.unifiable(b).
    #[test]
    fn subterm_unifies_agrees_with_enumeration(a in arb_term(), b in arb_term()) {
        let fast = a.subterm_unifies(b);
        let slow = a.subterm_terms().any(|s| s.unifiable(b));
        prop_assert_eq!(fast, slow);
    }
}
