//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation — with a simple measured-median runner
//! instead of criterion's statistical machinery. Each benchmark warms
//! up briefly, then reports the median and min of a fixed sample count
//! as one output line:
//!
//! ```text
//! group/id ... median 1.234 ms  (min 1.198 ms, 10 samples)
//! ```
//!
//! The `--test` flag (passed by `cargo test --benches`) switches to a
//! single-iteration smoke run, mirroring upstream behavior.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a
/// computation (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batches are sized in [`Bencher::iter_batched`]; the shim treats
/// all variants identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state (the only variant the workspace uses).
    #[default]
    SmallInput,
    /// Larger state; same behavior in the shim.
    LargeInput,
    /// Per-iteration state; same behavior in the shim.
    PerIteration,
}

/// Throughput annotation for a benchmark (printed, not analyzed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    smoke: bool,
    /// Measured sample durations (one per sample, averaged over inner
    /// iterations).
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, called many times per sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.smoke {
            black_box(routine());
            self.results.push(Duration::ZERO);
            return;
        }
        // Warm-up + pick an inner iteration count targeting ~20ms/sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let inner =
            ((Duration::from_millis(20).as_nanos() / once.as_nanos()).max(1) as usize).min(10_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            self.results.push(start.elapsed() / inner as u32);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        if self.smoke {
            black_box(routine(setup()));
            self.results.push(Duration::ZERO);
            return;
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn report(label: &str, throughput: Option<Throughput>, mut samples: Vec<Duration>, smoke: bool) {
    if smoke {
        println!("{label} ... ok (smoke)");
        return;
    }
    if samples.is_empty() {
        println!("{label} ... no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => {
            format!("  {:.0} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
    });
    println!(
        "{label} ... median {}  (min {}, {} samples){}",
        fmt_duration(median),
        fmt_duration(min),
        samples.len(),
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (upstream default is 100; the shim's is
    /// [`Criterion::DEFAULT_SAMPLES`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f)
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input))
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher =
            Bencher { samples: self.sample_size, smoke: self.criterion.smoke, results: Vec::new() };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.name);
        report(&label, self.throughput, bencher.results, self.criterion.smoke);
        self
    }

    /// End the group (no-op beyond matching upstream's API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Samples per benchmark unless overridden by
    /// [`BenchmarkGroup::sample_size`].
    pub const DEFAULT_SAMPLES: usize = 20;

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: Self::DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (its own single-entry group).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group(name.to_string()).bench_function("run", f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes --test; run each routine once.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

/// Declare a group of benchmark functions (upstream-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { smoke: true };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function(BenchmarkId::from_parameter(1), |b| {
                b.iter(|| {
                    calls += 1;
                })
            });
            g.bench_with_input(BenchmarkId::new("with", 2), &5u64, |b, &x| {
                b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert!(calls >= 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
