//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small API subset it actually uses, implemented on top
//! of `std::sync`. Unlike std, these locks do not poison: a panicked
//! holder simply releases the lock, matching parking_lot semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot::RwLock` interface.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock around `t`.
    pub fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// A mutex with the `parking_lot::Mutex` interface.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex around `t`.
    pub fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
