//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, `collection::vec`, `option::of`, `prop_oneof!`, `Just`,
//! the `proptest!` macro, `prop_assert*` / `prop_assume!`, and
//! [`test_runner::ProptestConfig`]. Differences from upstream:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name (overridable via `PROPTEST_SEED`), so CI runs are
//!   reproducible.
//! * String strategies (`"\\PC*" `) generate printable char soup; the
//!   full regex language is not interpreted.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::SmallRng as TestRngInner;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub struct TestRng(TestRngInner);

impl TestRng {
    /// Deterministic RNG for a named test.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or(0xC0FF_EE00),
            Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            }),
        };
        TestRng(TestRngInner::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform usize in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Access to the inner rand generator.
    pub fn rng(&mut self) -> &mut TestRngInner {
        &mut self.0
    }
}

// ----- strategy core -------------------------------------------------

/// A generator of values (upstream: `proptest::strategy::Strategy`).
/// Object-safe core; combinators live on the sized extension.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// String patterns as strategies. Upstream interprets the pattern as a
/// regex; this shim generates printable char soup whose length scales
/// with the pattern's `*`/`+` count — sufficient for the fuzz tests
/// that use it (`"\\PC*"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(64);
        (0..len)
            .map(|_| {
                // Mix ASCII printable with occasional wider unicode.
                match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
                    _ => (0x20u8 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

// ----- collection / option modules -----------------------------------

/// Collection strategies (upstream: `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// A strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (upstream: `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>` (None ~25% of the time).
    pub struct OptionStrategy<S>(S);

    /// Generate `Some(element)` or `None`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ----- runner --------------------------------------------------------

/// Test-runner types (upstream: `proptest::test_runner`).
pub mod test_runner {
    use super::TestRng;

    /// Per-test configuration. Only the fields this workspace reads are
    /// present; construction with `..ProptestConfig::default()` works
    /// as upstream.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Global cap on `prop_assume!` rejections.
        pub max_global_rejects: u32,
        /// Per-strategy rejection cap (upstream field; the shim has no
        /// per-strategy filters, so it only exists for construction
        /// compatibility).
        pub max_local_rejects: u32,
        /// Shrink-iteration cap (upstream field; the shim never
        /// shrinks).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 1024,
                max_local_rejects: 65_536,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; try another input.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption unmet).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drive one property: repeat until `config.cases` inputs pass,
    /// skipping rejects (bounded by `max_global_rejects`). Panics with
    /// the case's message (which includes the generated inputs) on the
    /// first failure — no shrinking.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::for_test(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "{name}: exceeded {} rejects after {passed} passing cases",
                            config.max_global_rejects
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed after {passed} passing cases\n{msg}");
                }
            }
        }
    }
}

/// One-import surface (upstream: `proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

// ----- macros --------------------------------------------------------

/// Assert inside a property; failure reports inputs instead of
/// panicking mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a value-carrying message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with a value-carrying message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The property-test entry macro. Each contained `fn name(x in strat,
/// ...) { body }` becomes a `#[test]` that runs the body over generated
/// inputs (see [`test_runner::run_cases`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| { $body Ok(()) })();
                match __outcome {
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        Err($crate::test_runner::TestCaseError::fail(format!(
                            "{msg}\ninputs:\n{__inputs}"
                        )))
                    }
                    other => other,
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|n| n * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 0u8..4, b in -3i64..20, c in 0usize..=7) {
            prop_assert!(a < 4);
            prop_assert!((-3..20).contains(&b));
            prop_assert!(c <= 7);
        }

        #[test]
        fn mapped_and_oneof(n in arb_even(), pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn vec_and_option(
            v in crate::collection::vec(0u8..10, 0..5),
            o in crate::option::of(0u8..2),
        ) {
            prop_assert!(v.len() < 5);
            if let Some(x) = o {
                prop_assert!(x < 2);
            }
        }

        #[test]
        fn assume_rejects_and_recovers(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn inner(n in 5u32..6) {
                prop_assert_eq!(n, 0, "deliberate");
            }
        }
        inner();
    }

    #[test]
    fn string_pattern_generates() {
        let mut rng = crate::TestRng::for_test("string_pattern");
        let s = Strategy::generate(&"\\PC*", &mut rng);
        assert!(s.chars().all(|c| !c.is_control()));
    }
}
