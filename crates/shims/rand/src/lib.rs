//! Offline stand-in for the `rand` crate.
//!
//! The workload generators only need a seeded, deterministic PRNG with
//! `gen_range` over integer ranges and `gen_bool`. [`rngs::SmallRng`]
//! is xoshiro256++ seeded through splitmix64 — deterministic across
//! platforms and runs, which is exactly what the seeded-workload
//! contract requires. Numeric streams differ from upstream `rand`,
//! which is fine: all consumers treat the generator as an opaque
//! deterministic source.

/// Sampling a uniform value of `Self` from a raw 64-bit source.
pub trait UniformSample: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (callers guarantee `lo < hi`).
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The largest representable value (used for inclusive ranges).
    fn next_up(self) -> Option<Self>;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                // Multiply-shift bounded sampling: bias is < 2^-64 per
                // draw, irrelevant for synthetic workload generation.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                ((lo as i128) + v as i128) as $ty
            }

            fn next_up(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw word.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        match hi.next_up() {
            Some(hi1) => T::sample_half_open(rng, lo, hi1),
            // Degenerate full-width range: fall back to lo on overflow
            // (never hit by the workspace's generators).
            None => lo,
        }
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic across platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let spread: Vec<usize> = (0..32).map(|_| c.gen_range(0usize..1000)).collect();
        assert!(spread.iter().any(|&v| v != spread[0]), "seed 43 produced a constant");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1000i64..=2000);
            assert!((1000..=2000).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "biased coin: {heads}");
    }
}
