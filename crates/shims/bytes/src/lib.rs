//! Offline stand-in for the `bytes` crate.
//!
//! Implements the little-endian put/get surface the snapshot codec
//! uses. `Bytes` is a plain owned buffer (no refcounted slicing — the
//! workspace never splits buffers), `BytesMut` an appendable one.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Copy the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.as_ref().clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::new(v))
    }
}

/// A growable byte buffer with little-endian append methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer (the subset of `bytes::BufMut` the
/// workspace uses; everything is little-endian or raw).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte cursor (the subset of `bytes::Buf` the
/// workspace uses). Implemented for `&[u8]`, advancing the slice.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes, returning nothing (position bookkeeping).
    fn advance(&mut self, n: usize);

    /// Read one byte. Panics if empty (callers bounds-check first).
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64;
}

macro_rules! get_le {
    ($self:ident, $ty:ty) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let (head, tail) = $self.split_at(N);
        let v = <$ty>::from_le_bytes(head.try_into().expect("sized split"));
        *$self = tail;
        v
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        get_le!(self, u8)
    }

    fn get_u16_le(&mut self) -> u16 {
        get_le!(self, u16)
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }

    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r, b"xyz");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn bytes_index_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b[0], 1);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
