//! The paper's example programs, parameterized where useful.

use ruvo_lang::Program;
use ruvo_term::UpdateKind;

/// §2.3's concrete two-person object base (phil the manager, bob whose
/// boss is phil) used by Figure 2.
pub const PAPER_ENTERPRISE_OB: &str = "
    phil.isa -> empl.  phil.pos -> mgr.    phil.sal -> 4000.
    bob.isa -> empl.   bob.boss -> phil.   bob.sal -> 4200.
";

/// §2.1: every employee gets a 10% raise — exactly once.
pub fn salary_raise_program() -> Program {
    Program::parse("raise: mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.")
        .expect("static program parses")
}

/// §2.3's 4-rule enterprise update: raise salaries (managers +$200),
/// fire employees who out-earn a superior, group survivors over $4500
/// into `hpe`.
pub fn enterprise_program() -> Program {
    Program::parse(
        "rule1: mod[E].sal -> (S, S2) <=
             E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
         rule2: mod[E].sal -> (S, S2) <=
             E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
         rule3: del[mod(E)].* <=
             mod(E).isa -> empl / boss -> B / sal -> SE &
             mod(B).isa -> empl / sal -> SB & SE > SB.
         rule4: ins[mod(E)].isa -> hpe <=
             mod(E).isa -> empl / sal -> S & S > 4500 &
             not del[mod(E)].isa -> empl.",
    )
    .expect("static program parses")
}

/// §2.3's hypothetical-reasoning program: raise all salaries by
/// per-employee factors, revert, and record whether `who` would have
/// been the richest employee.
pub fn hypothetical_program(who: &str) -> Program {
    Program::parse(&format!(
        "rule1: mod[E].sal -> (S, S2) <= E.sal -> S / factor -> F & S2 = S * F.
         rule2: mod[mod(E)].sal -> (S2, S) <= mod(E).sal -> S2 & E.sal -> S.
         rule3: ins[mod(mod({who}))].richest -> no <=
             mod(E).sal -> SE & mod({who}).sal -> SP & SE > SP.
         rule4: ins[ins(mod(mod({who})))].richest -> yes <=
             not ins(mod(mod({who}))).richest -> no.",
    ))
    .expect("static program parses")
}

/// §2.3's recursive ancestors with set-valued `anc`/`parents`.
pub fn ancestors_program() -> Program {
    Program::parse(
        "base: ins[X].anc -> P <= X.isa -> person / parents -> P.
         step: ins[X].anc -> P <=
             ins(X).isa -> person / anc -> A & A.isa -> person / parents -> P.",
    )
    .expect("static program parses")
}

/// Figure 1: `k` consecutive groups of basic updates on one object,
/// producing the version chain `φk(...φ1(o))`.
///
/// The driver object base is `o.step -> 0. o.tag0 -> 1.` (see
/// [`chain_object_base`]). Each stage's rule is keyed to the *exact*
/// version-id-term of the previous stage, so condition (a) forces one
/// stratum per stage — precisely the figure's "k consecutive groups of
/// basic updates".
///
/// With `mixed = false` every stage inserts a fresh tag method. With
/// `mixed = true` the kinds cycle `mod, del, ins` (the figure's
/// `ins(del(mod(o)))` narrative): `mod` advances the `step` marker,
/// `ins` pushes a new tag, and `del` deletes the most recently
/// available tag (initially `tag0`).
pub fn chain_program(k: usize, mixed: bool) -> Program {
    assert!((1..=28).contains(&k), "chain length must be in 1..=28");
    let mut src = String::new();
    let mut chain = String::from("o");
    let mut marker = 0u32;
    let mut tags: Vec<String> = vec!["tag0".to_string()];
    for i in 0..k {
        let kind = if mixed {
            [UpdateKind::Mod, UpdateKind::Del, UpdateKind::Ins][i % 3]
        } else {
            UpdateKind::Ins
        };
        match kind {
            UpdateKind::Ins => {
                src.push_str(&format!(
                    "s{i}: ins[{chain}].tag{n} -> 1 <= {chain}.step -> {marker}.\n",
                    n = i + 1
                ));
                tags.push(format!("tag{}", i + 1));
            }
            UpdateKind::Mod => {
                src.push_str(&format!(
                    "s{i}: mod[{chain}].step -> ({marker}, {next}) <= {chain}.step -> {marker}.\n",
                    next = marker + 1
                ));
                marker += 1;
            }
            UpdateKind::Del => {
                let tag = tags.pop().expect("mod/del/ins cycle keeps a tag available");
                src.push_str(&format!(
                    "s{i}: del[{chain}].{tag} -> 1 <= {chain}.step -> {marker}.\n"
                ));
            }
        }
        chain = format!("{}({chain})", kind.keyword());
    }
    Program::parse(&src).expect("generated chain program parses")
}

/// The driver object base for [`chain_program`].
pub fn chain_object_base() -> ruvo_obase::ObjectBase {
    ruvo_obase::ObjectBase::parse("o.step -> 0. o.tag0 -> 1.").expect("static ob parses")
}

/// The Logres-style baseline translation of the enterprise update
/// (E8): compute raises, apply them, fire, then classify — four
/// modules whose *manual* ordering is the control §2.4 describes.
///
/// The shape is instructive in itself: a naive single-module
/// `del sal(E,S) <= sal(E,S) & sal2(E,S2)` would delete the raised
/// values too and oscillate, so the apply module needs the `S != S2`
/// guard — update logic the paper's version identities express
/// implicitly. Collapsing the modules ([`ruvo_datalog::DlProgram::collapsed`])
/// reproduces the fire-before-raise anomaly of §2.4.
pub fn enterprise_baseline_datalog() -> ruvo_datalog::DlProgram {
    ruvo_datalog::parse_program(
        "module raise:
           sal2(E, S2) <= empl(E) & mgr(E) & sal(E, S) & S2 = S * 1.1 + 200 .
           sal2(E, S2) <= empl(E) & sal(E, S) & not mgr(E) & S2 = S * 1.1 .
         module apply:
           del sal(E, S) <= sal(E, S) & sal2(E, S2) & S != S2 .
           sal(E, S2) <= sal2(E, S2) .
         module fire:
           del empl(E) <= empl(E) & boss(E, B) & empl(B) & sal(E, SE) & sal(B, SB) & SE > SB .
         module hpe:
           hpe(E) <= empl(E) & sal(E, S) & S > 4500 .",
    )
    .expect("static baseline parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_core::UpdateEngine;
    use ruvo_term::{int, oid};

    #[test]
    fn paper_programs_parse_and_stratify() {
        for p in [
            salary_raise_program(),
            enterprise_program(),
            hypothetical_program("peter"),
            ancestors_program(),
        ] {
            assert!(UpdateEngine::new(p).stratify().is_ok());
        }
    }

    #[test]
    fn chain_program_builds_expected_depth() {
        for k in [1, 2, 3, 5, 8] {
            let ob = super::chain_object_base();
            let program = chain_program(k, false);
            let outcome = UpdateEngine::new(program).run(&ob).unwrap();
            assert_eq!(
                outcome.stratification().len(),
                k,
                "one stratum per update group (Figure 1)"
            );
            let finals = outcome.final_versions().unwrap();
            assert_eq!(finals[&oid("o")].depth(), k, "all-ins chain of length {k}");
            let ob2 = outcome.new_object_base();
            // Each stage inserted one tag; the driver step is carried.
            assert_eq!(ob2.lookup1(oid("o"), "step"), vec![int(0)]);
            assert_eq!(ob2.lookup1(oid("o"), &format!("tag{k}")), vec![int(1)]);
        }
    }

    #[test]
    fn mixed_chain_produces_linear_history() {
        for k in [1, 2, 3, 4, 6, 9] {
            let ob = super::chain_object_base();
            let outcome = UpdateEngine::new(chain_program(k, true)).run(&ob).unwrap();
            let finals = outcome.final_versions().unwrap();
            assert_eq!(finals[&oid("o")].depth(), k, "mixed chain of length {k}");
        }
        // k = 2: mod then del; the del removed tag0.
        let ob = super::chain_object_base();
        let outcome = UpdateEngine::new(chain_program(2, true)).run(&ob).unwrap();
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("o"), "tag0"), vec![]);
        assert_eq!(ob2.lookup1(oid("o"), "step"), vec![int(1)]);
    }

    #[test]
    fn baseline_program_has_four_modules() {
        let p = enterprise_baseline_datalog();
        assert_eq!(p.modules.len(), 4);
        assert_eq!(p.modules[0].name.as_deref(), Some("raise"));
        assert_eq!(p.modules[2].name.as_deref(), Some("fire"));
    }

    #[test]
    fn baseline_matches_paper_outcome_with_modules() {
        use ruvo_datalog::{evaluate, Semantics};
        let e = crate::Enterprise::generate(crate::EnterpriseConfig {
            employees: 0,
            ..Default::default()
        });
        let mut db = e.as_datalog();
        // Inject the paper's phil/bob scenario.
        db.insert(ruvo_term::sym("empl"), vec![oid("phil")]);
        db.insert(ruvo_term::sym("empl"), vec![oid("bob")]);
        db.insert(ruvo_term::sym("mgr"), vec![oid("phil")]);
        db.insert(ruvo_term::sym("sal"), vec![oid("phil"), int(4000)]);
        db.insert(ruvo_term::sym("sal"), vec![oid("bob"), int(4200)]);
        db.insert(ruvo_term::sym("boss"), vec![oid("bob"), oid("phil")]);
        let report = evaluate(&mut db, &enterprise_baseline_datalog(), Semantics::Modules, 1000);
        assert!(!report.oscillated);
        // phil raised to 4600, hpe; bob (4620 > 4600) fired.
        assert!(db.contains(ruvo_term::sym("sal"), &[oid("phil"), int(4600)]));
        assert!(db.contains(ruvo_term::sym("hpe"), &[oid("phil")]));
        assert!(!db.contains(ruvo_term::sym("empl"), &[oid("bob")]));
    }
}
