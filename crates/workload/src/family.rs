//! The family domain of §2.3's recursive-ancestors example.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{oid, sym, Const, FastHashSet, Vid};

/// Parameters for [`Family::generate`].
#[derive(Clone, Copy, Debug)]
pub struct FamilyConfig {
    /// Number of generations (≥ 1).
    pub generations: usize,
    /// Persons per generation.
    pub per_generation: usize,
    /// Parents drawn per person from the previous generation (methods
    /// are set-valued, as in the paper).
    pub parents_per_person: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig { generations: 4, per_generation: 10, parents_per_person: 2, seed: 0xFA_417 }
    }
}

/// A generated family database.
#[derive(Clone, Debug)]
pub struct Family {
    /// The object base (`p.isa -> person`, `p.parents -> q`).
    pub ob: ObjectBase,
    /// Person OIDs by generation (index 0 = oldest).
    pub generations: Vec<Vec<Const>>,
    /// Parent edges `(child, parent)`.
    pub edges: Vec<(Const, Const)>,
}

impl Family {
    /// Generate `generations × per_generation` persons; everyone in
    /// generation `g ≥ 1` has `parents_per_person` distinct parents in
    /// generation `g − 1`.
    pub fn generate(config: FamilyConfig) -> Family {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let (isa, person, parents_m) = (sym("isa"), oid("person"), sym("parents"));
        let mut ob = ObjectBase::new();
        let mut generations: Vec<Vec<Const>> = Vec::with_capacity(config.generations);
        let mut edges = Vec::new();
        for g in 0..config.generations {
            let mut gen = Vec::with_capacity(config.per_generation);
            for i in 0..config.per_generation {
                let p = oid(&format!("p{g}_{i}"));
                ob.insert(Vid::object(p), isa, Args::empty(), person);
                if g > 0 {
                    let prev = &generations[g - 1];
                    let k = config.parents_per_person.min(prev.len());
                    let mut chosen: FastHashSet<usize> = FastHashSet::default();
                    while chosen.len() < k {
                        chosen.insert(rng.gen_range(0..prev.len()));
                    }
                    for idx in chosen {
                        ob.insert(Vid::object(p), parents_m, Args::empty(), prev[idx]);
                        edges.push((p, prev[idx]));
                    }
                }
                gen.push(p);
            }
            generations.push(gen);
        }
        Family { ob, generations, edges }
    }

    /// Ground-truth ancestor sets (transitive closure of the parent
    /// edges), for correctness assertions.
    pub fn expected_ancestors(&self) -> ruvo_term::FastHashMap<Const, FastHashSet<Const>> {
        let mut parents: ruvo_term::FastHashMap<Const, Vec<Const>> =
            ruvo_term::FastHashMap::default();
        for &(c, p) in &self.edges {
            parents.entry(c).or_default().push(p);
        }
        let mut anc: ruvo_term::FastHashMap<Const, FastHashSet<Const>> =
            ruvo_term::FastHashMap::default();
        // Generations are topologically ordered oldest-first.
        for gen in &self.generations {
            for &p in gen {
                let mut set: FastHashSet<Const> = FastHashSet::default();
                if let Some(ps) = parents.get(&p) {
                    for &q in ps {
                        set.insert(q);
                        if let Some(qa) = anc.get(&q) {
                            set.extend(qa.iter().copied());
                        }
                    }
                }
                anc.insert(p, set);
            }
        }
        anc
    }

    /// The same data as a Datalog database: `person(p)`,
    /// `parents(p, q)`.
    pub fn as_datalog(&self) -> ruvo_datalog::Database {
        let mut db = ruvo_datalog::Database::new();
        let (person, parents) = (sym("person"), sym("parents"));
        for gen in &self.generations {
            for &p in gen {
                db.insert(person, vec![p]);
            }
        }
        for &(c, p) in &self.edges {
            db.insert(parents, vec![c, p]);
        }
        db
    }

    /// Total number of persons.
    pub fn population(&self) -> usize {
        self.generations.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_layered() {
        let a = Family::generate(FamilyConfig::default());
        let b = Family::generate(FamilyConfig::default());
        assert_eq!(a.ob, b.ob);
        assert_eq!(a.population(), 40);
        // Oldest generation has no parents.
        for &p in &a.generations[0] {
            assert!(a.ob.lookup1(p, "parents").is_empty());
        }
        // Later generations have exactly parents_per_person parents.
        for &p in &a.generations[2] {
            assert_eq!(a.ob.lookup1(p, "parents").len(), 2);
        }
    }

    #[test]
    fn expected_ancestors_closure() {
        let f = Family::generate(FamilyConfig {
            generations: 3,
            per_generation: 2,
            parents_per_person: 1,
            seed: 1,
        });
        let anc = f.expected_ancestors();
        // A youngest person has its parent and grandparent.
        let youngest = f.generations[2][0];
        let set = &anc[&youngest];
        assert_eq!(set.len(), 2);
        // An oldest person has no ancestors.
        assert!(anc[&f.generations[0][0]].is_empty());
    }

    #[test]
    fn datalog_translation_counts() {
        let f = Family::generate(FamilyConfig::default());
        let db = f.as_datalog();
        assert_eq!(db.arity_count(sym("person")), f.population());
        assert_eq!(db.arity_count(sym("parents")), f.edges.len());
    }

    #[test]
    fn single_generation() {
        let f = Family::generate(FamilyConfig { generations: 1, ..Default::default() });
        assert!(f.edges.is_empty());
        assert_eq!(f.population(), 10);
    }
}
