//! Mixed reader/writer scenarios for the concurrent serving layer.
//!
//! A [`ServingScenario`] is a deterministic bundle of the three things
//! a reader-vs-writer experiment needs: an account-shaped object base,
//! one repeatedly-applicable update program per writer (each touching
//! its own disjoint group of objects, so concurrent writers model
//! independent tenants), and a seeded shuffle of read keys for the
//! reader threads. The E8 concurrent-throughput experiment and the
//! serving property tests both draw from here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruvo_lang::Program;
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Const, Vid};

/// Shape parameters for [`serving_scenario`].
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Objects (accounts) in the base.
    pub objects: usize,
    /// Writer groups; objects are dealt round-robin into `writers`
    /// disjoint groups and each group gets its own update program.
    pub writers: usize,
    /// Extra read-only padding methods per object (models the wide
    /// rows a served workload scans past).
    pub pad_methods: usize,
    /// RNG seed for balances and the read-key shuffle.
    pub seed: u64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig { objects: 200, writers: 2, pad_methods: 3, seed: 42 }
    }
}

/// A generated mixed reader/writer workload; see the module docs.
#[derive(Clone, Debug)]
pub struct ServingScenario {
    /// The initial object base.
    pub ob: ObjectBase,
    /// One update program per writer group: `w{g}` credits every
    /// account of group `g` by 1, and stays applicable forever (the
    /// committed base is flat between transactions).
    pub writer_programs: Vec<Program>,
    /// Account OIDs in seeded-shuffle order; readers cycle this.
    pub read_objects: Vec<Const>,
    /// Sum of all balances in the initial base.
    pub initial_balance_sum: i64,
    /// Accounts per writer group (group `g` has `group_size(g)`).
    sizes: Vec<usize>,
}

impl ServingScenario {
    /// Accounts in writer group `g`.
    pub fn group_size(&self, g: usize) -> usize {
        self.sizes[g]
    }

    /// The balance sum after each writer group `g` committed its
    /// program `applies[g]` times: every application credits every
    /// account of the group by exactly 1, so the sum is a complete
    /// serializability witness for the interleaved run.
    pub fn expected_balance_sum(&self, applies: &[usize]) -> i64 {
        let credited: i64 =
            applies.iter().enumerate().map(|(g, &n)| (n * self.sizes[g]) as i64).sum();
        self.initial_balance_sum + credited
    }

    /// Sum the balances readable in `ob` over all accounts.
    pub fn balance_sum(&self, ob: &ObjectBase) -> i64 {
        self.read_objects
            .iter()
            .map(|&acct| match ob.lookup1(acct, "balance").as_slice() {
                [Const::Int(v)] => *v,
                other => panic!("torn or missing balance for {acct}: {other:?}"),
            })
            .sum()
    }
}

/// Generate a deterministic mixed reader/writer scenario.
pub fn serving_scenario(config: ServingConfig) -> ServingScenario {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let writers = config.writers.max(1);
    let mut ob = ObjectBase::new();
    let mut read_objects = Vec::with_capacity(config.objects);
    let mut sizes = vec![0usize; writers];
    let mut initial_balance_sum = 0i64;
    for i in 0..config.objects {
        let acct = oid(&format!("acct{i}"));
        let group = i % writers;
        let balance = rng.gen_range(0..1_000i64);
        initial_balance_sum += balance;
        sizes[group] += 1;
        let v = Vid::object(acct);
        ob.insert(v, sym("grp"), Args::empty(), int(group as i64));
        ob.insert(v, sym("balance"), Args::empty(), int(balance));
        for m in 0..config.pad_methods {
            ob.insert(v, sym(&format!("pad{m}")), Args::empty(), int(rng.gen_range(0..100)));
        }
        read_objects.push(acct);
    }
    // Seeded shuffle so readers do not walk in insertion order.
    for i in (1..read_objects.len()).rev() {
        read_objects.swap(i, rng.gen_range(0..i + 1));
    }
    let writer_programs = (0..writers)
        .map(|g| {
            Program::parse(&format!(
                "w{g}: mod[A].balance -> (B, B2) <= A.grp -> {g} & A.balance -> B & B2 = B + 1."
            ))
            .expect("generated writer program parses")
        })
        .collect();
    ServingScenario { ob, writer_programs, read_objects, initial_balance_sum, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_core::Database;

    #[test]
    fn scenario_is_deterministic() {
        let a = serving_scenario(ServingConfig::default());
        let b = serving_scenario(ServingConfig::default());
        assert_eq!(a.ob, b.ob);
        assert_eq!(a.read_objects, b.read_objects);
        assert_eq!(a.initial_balance_sum, b.initial_balance_sum);
        assert_eq!(a.balance_sum(&a.ob), a.initial_balance_sum);
    }

    #[test]
    fn writer_groups_are_disjoint_and_repeatable() {
        let scenario =
            serving_scenario(ServingConfig { objects: 30, writers: 3, ..Default::default() });
        let mut db = Database::open(scenario.ob.clone());
        let programs: Vec<_> = scenario
            .writer_programs
            .iter()
            .map(|p| db.prepare_program(p.clone()).unwrap())
            .collect();
        // Apply writer 0 twice and writer 2 once; only their groups move.
        db.apply(&programs[0]).unwrap();
        db.apply(&programs[0]).unwrap();
        db.apply(&programs[2]).unwrap();
        let expected = scenario.expected_balance_sum(&[2, 0, 1]);
        assert_eq!(scenario.balance_sum(db.current()), expected);
        assert_eq!(scenario.group_size(0) + scenario.group_size(1) + scenario.group_size(2), 30);
    }
}
