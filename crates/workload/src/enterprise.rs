//! The enterprise domain of §2.3: employees with salaries, managers,
//! and a boss hierarchy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, sym, Const, Vid};

/// Parameters for [`Enterprise::generate`].
#[derive(Clone, Copy, Debug)]
pub struct EnterpriseConfig {
    /// Number of employees.
    pub employees: usize,
    /// Fraction that are managers (`pos -> mgr`).
    pub manager_ratio: f64,
    /// Salary range (inclusive), drawn uniformly.
    pub salary_min: i64,
    /// Upper salary bound.
    pub salary_max: i64,
    /// Add `factor -> f` facts (needed by the hypothetical-reasoning
    /// program).
    pub with_factor: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        EnterpriseConfig {
            employees: 100,
            manager_ratio: 0.2,
            salary_min: 2000,
            salary_max: 6000,
            with_factor: false,
            seed: 0xEC0_FFEE,
        }
    }
}

/// A generated enterprise: the object base plus bookkeeping for
/// assertions and baseline translation.
#[derive(Clone, Debug)]
pub struct Enterprise {
    /// The generated object base (no `exists` facts; the engine adds
    /// them).
    pub ob: ObjectBase,
    /// Employee OIDs, `e0..e{n-1}`.
    pub employees: Vec<Const>,
    /// Which employees are managers.
    pub is_manager: Vec<bool>,
    /// Salary per employee.
    pub salaries: Vec<i64>,
    /// Boss index per employee (`None` for roots of the hierarchy).
    pub boss: Vec<Option<usize>>,
}

impl Enterprise {
    /// Generate an enterprise. Managers form the upper levels of a
    /// forest: every non-manager reports to a uniformly chosen manager,
    /// and every manager except the first reports to an earlier
    /// manager (so the hierarchy is acyclic).
    pub fn generate(config: EnterpriseConfig) -> Enterprise {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = config.employees;
        let employees: Vec<Const> = (0..n).map(|i| oid(&format!("e{i}"))).collect();
        let num_managers = ((n as f64) * config.manager_ratio).ceil() as usize;
        let num_managers = num_managers.clamp(usize::from(n > 0), n);

        let mut is_manager = vec![false; n];
        for flag in is_manager.iter_mut().take(num_managers) {
            *flag = true;
        }
        let salaries: Vec<i64> =
            (0..n).map(|_| rng.gen_range(config.salary_min..=config.salary_max)).collect();
        let boss: Vec<Option<usize>> = (0..n)
            .map(|i| {
                if i == 0 {
                    None
                } else if i < num_managers {
                    Some(rng.gen_range(0..i))
                } else {
                    Some(rng.gen_range(0..num_managers))
                }
            })
            .collect();

        let mut ob = ObjectBase::new();
        let (isa, empl, sal, pos, mgr, boss_m, factor) = (
            sym("isa"),
            oid("empl"),
            sym("sal"),
            sym("pos"),
            oid("mgr"),
            sym("boss"),
            sym("factor"),
        );
        for i in 0..n {
            let v = Vid::object(employees[i]);
            ob.insert(v, isa, Args::empty(), empl);
            ob.insert(v, sal, Args::empty(), int(salaries[i]));
            if is_manager[i] {
                ob.insert(v, pos, Args::empty(), mgr);
            }
            if let Some(b) = boss[i] {
                ob.insert(v, boss_m, Args::empty(), employees[b]);
            }
            if config.with_factor {
                // Non-linear raise factors: 1.05 + (i mod 5) / 50.
                let f = 1.05 + (i % 5) as f64 / 50.0;
                ob.insert(v, factor, Args::empty(), ruvo_term::num(f));
            }
        }
        Enterprise { ob, employees, is_manager, salaries, boss }
    }

    /// The same data as a Datalog database for the E8 baseline:
    /// `empl(e)`, `sal(e, s)`, `mgr(e)`, `boss(e, b)`.
    pub fn as_datalog(&self) -> ruvo_datalog_db::Database {
        let mut db = ruvo_datalog_db::Database::new();
        let (empl, sal, mgr, boss) = (sym("empl"), sym("sal"), sym("mgr"), sym("boss"));
        for (i, &e) in self.employees.iter().enumerate() {
            db.insert(empl, vec![e]);
            db.insert(sal, vec![e, int(self.salaries[i])]);
            if self.is_manager[i] {
                db.insert(mgr, vec![e]);
            }
            if let Some(b) = self.boss[i] {
                db.insert(boss, vec![e, self.employees[b]]);
            }
        }
        db
    }
}

// The workload crate deliberately depends on the baseline only for the
// Database type; alias the path to keep the dependency surface narrow.
use ruvo_datalog as ruvo_datalog_db;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Enterprise::generate(EnterpriseConfig::default());
        let b = Enterprise::generate(EnterpriseConfig::default());
        assert_eq!(a.ob, b.ob);
        assert_eq!(a.salaries, b.salaries);
        let c = Enterprise::generate(EnterpriseConfig { seed: 7, ..Default::default() });
        assert_ne!(a.salaries, c.salaries);
    }

    #[test]
    fn structure_is_consistent() {
        let e = Enterprise::generate(EnterpriseConfig { employees: 50, ..Default::default() });
        assert_eq!(e.employees.len(), 50);
        // Bosses are acyclic: every boss index is strictly smaller for
        // managers, and points into the manager prefix for the rest.
        let num_managers = e.is_manager.iter().filter(|&&m| m).count();
        for (i, b) in e.boss.iter().enumerate() {
            match b {
                None => assert_eq!(i, 0),
                Some(b) if i < num_managers => assert!(*b < i),
                Some(b) => assert!(*b < num_managers),
            }
        }
        // Facts: isa + sal for everyone, pos for managers, boss for all
        // but e0.
        assert_eq!(e.ob.len(), 50 + 50 + num_managers + 49);
    }

    #[test]
    fn with_factor_adds_factors() {
        let e = Enterprise::generate(EnterpriseConfig {
            employees: 10,
            with_factor: true,
            ..Default::default()
        });
        assert_eq!(e.ob.lookup1(e.employees[0], "factor").len(), 1);
    }

    #[test]
    fn datalog_translation_matches() {
        let e = Enterprise::generate(EnterpriseConfig { employees: 20, ..Default::default() });
        let db = e.as_datalog();
        assert_eq!(db.arity_count(sym("empl")), 20);
        assert_eq!(db.arity_count(sym("sal")), 20);
        assert_eq!(db.arity_count(sym("mgr")), e.is_manager.iter().filter(|&&m| m).count());
        assert_eq!(db.arity_count(sym("boss")), 19);
    }

    #[test]
    fn tiny_enterprises() {
        let e = Enterprise::generate(EnterpriseConfig { employees: 1, ..Default::default() });
        assert_eq!(e.employees.len(), 1);
        assert_eq!(e.boss[0], None);
        let e0 = Enterprise::generate(EnterpriseConfig { employees: 0, ..Default::default() });
        assert!(e0.ob.is_empty());
    }
}
