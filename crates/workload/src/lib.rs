//! # ruvo-workload — deterministic synthetic workloads
//!
//! The paper evaluates its language on worked examples over an
//! enterprise object base (employees, managers, bosses, salaries) and
//! a family database (persons, parents). This crate generates
//! parameterized, seeded versions of those domains so the benchmark
//! suite can run scaling sweeps, plus the paper's example programs and
//! the Figure-1 chain workloads.
//!
//! Every generator is deterministic given its config (seeded
//! [`rand::rngs::SmallRng`]), so benchmark runs and property tests are
//! reproducible.

pub mod durability;
pub mod enterprise;
pub mod family;
pub mod programs;
pub mod query;
pub mod random;
pub mod serving;

pub use durability::{durability_workload, DurabilityConfig, DurabilityWorkload};
pub use enterprise::{Enterprise, EnterpriseConfig};
pub use family::{Family, FamilyConfig};
pub use programs::{
    ancestors_program, chain_object_base, chain_program, enterprise_baseline_datalog,
    enterprise_program, hypothetical_program, salary_raise_program, PAPER_ENTERPRISE_OB,
};
pub use query::{query_workload, QueryConfig, QueryWorkload, RefQuery, CHIEF_PROGRAM};
pub use random::{random_insert_program, random_object_base, random_update_program, RandomConfig};
pub use serving::{serving_scenario, ServingConfig, ServingScenario};
