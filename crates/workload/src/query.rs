//! Selective query workloads: point and path goals over a seeded
//! enterprise base, each paired with its reference answer.
//!
//! The program is the boss-chain closure — `chief` collects every
//! transitive boss of an employee onto `ins(e)` — so a point goal
//! `?- ins(eK).chief -> C.` demands only eK's boss chain while full
//! evaluation derives the closure for *every* employee. That gap is
//! what the demand-driven query path (see `ruvo_core::query`) is
//! measured against (benchmark E11), and the pinned reference answers
//! let differential tests and serve smoke tests assert exact results
//! without re-deriving them through the engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruvo_term::{int, Const};

use crate::enterprise::{Enterprise, EnterpriseConfig};

/// The boss-chain closure: `ins(e).chief` accumulates every
/// transitive boss of `e`. Each employee's closure depends only on its
/// own `chief` facts plus base `boss` facts, so the demand analysis
/// seeds a point goal with exactly one object.
pub const CHIEF_PROGRAM: &str = "\
chief: ins[X].chief -> B <= X.boss -> B.
step:  ins[X].chief -> C <= ins(X).chief -> B & B.boss -> C.";

/// Parameters for [`query_workload`].
#[derive(Clone, Copy, Debug)]
pub struct QueryConfig {
    /// Number of employees in the underlying enterprise (the base
    /// carries roughly `3.2 ×` this many facts).
    pub employees: usize,
    /// Number of goals to generate (alternating point and path).
    pub queries: usize,
    /// RNG seed (drives both the enterprise and the goal choice).
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig { employees: 1000, queries: 10, seed: 0x51EED }
    }
}

/// One generated goal with its reference answer.
#[derive(Clone, Debug)]
pub struct RefQuery {
    /// Goal text, `?- ... .` (parse with `ruvo_lang::Goal::parse`).
    pub goal: String,
    /// Index of the employee the goal is anchored on.
    pub employee: usize,
    /// Expected answer rows, deduplicated and sorted — directly
    /// comparable to `ruvo_core::QueryAnswers::rows`.
    pub expected: Vec<Vec<Const>>,
}

/// A query workload: the base, the closure program, and goals with
/// reference answers.
#[derive(Clone, Debug)]
pub struct QueryWorkload {
    /// The generated enterprise (its `ob` is the base to query over).
    pub enterprise: Enterprise,
    /// The update-program the goals are asked against
    /// ([`CHIEF_PROGRAM`]).
    pub program: &'static str,
    /// The goals, alternating point (`chief -> C`) and path
    /// (`chief -> B & B.sal -> S`) shapes.
    pub queries: Vec<RefQuery>,
}

/// Generate a query workload. Deterministic given the config; the
/// reference answers are computed by walking the generator's own boss
/// forest, independently of the engine.
pub fn query_workload(config: QueryConfig) -> QueryWorkload {
    let enterprise = Enterprise::generate(EnterpriseConfig {
        employees: config.employees,
        seed: config.seed,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut queries = Vec::with_capacity(config.queries);
    if config.employees > 0 {
        for q in 0..config.queries {
            let k = rng.gen_range(0..config.employees);
            let chain = ancestor_chain(&enterprise, k);
            let (goal, mut expected) = if q % 2 == 0 {
                // Point: every transitive boss of eK.
                let rows = chain.iter().map(|&a| vec![enterprise.employees[a]]).collect();
                (format!("?- ins(e{k}).chief -> C."), rows)
            } else {
                // Path: each transitive boss with its (base) salary.
                let rows = chain
                    .iter()
                    .map(|&a| vec![enterprise.employees[a], int(enterprise.salaries[a])])
                    .collect::<Vec<_>>();
                (format!("?- ins(e{k}).chief -> B & B.sal -> S."), rows)
            };
            expected.sort();
            expected.dedup();
            queries.push(RefQuery { goal, employee: k, expected });
        }
    }
    QueryWorkload { enterprise, program: CHIEF_PROGRAM, queries }
}

/// The strict transitive-boss chain of employee `k`, in
/// chain-from-`k` order (the boss forest is acyclic by construction).
fn ancestor_chain(enterprise: &Enterprise, k: usize) -> Vec<usize> {
    let mut chain = Vec::new();
    let mut at = k;
    while let Some(b) = enterprise.boss[at] {
        chain.push(b);
        at = b;
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_core::Database;
    use ruvo_lang::Goal;

    #[test]
    fn deterministic_for_seed() {
        let a = query_workload(QueryConfig::default());
        let b = query_workload(QueryConfig::default());
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.goal, y.goal);
            assert_eq!(x.expected, y.expected);
        }
        let c = query_workload(QueryConfig { seed: 7, ..Default::default() });
        assert!(a.queries.iter().zip(&c.queries).any(|(x, y)| x.goal != y.goal));
    }

    #[test]
    fn reference_answers_match_the_engine() {
        let w = query_workload(QueryConfig { employees: 60, queries: 8, ..Default::default() });
        let db = Database::open(w.enterprise.ob.clone());
        let prepared = db.prepare(w.program).unwrap();
        for q in &w.queries {
            let goal = Goal::parse(&q.goal).unwrap();
            let answers = db.query(&prepared, goal).unwrap();
            assert_eq!(answers.rows, q.expected, "goal {}", q.goal);
        }
    }

    #[test]
    fn goals_parse_and_alternate_shapes() {
        let w = query_workload(QueryConfig { employees: 20, queries: 4, ..Default::default() });
        assert_eq!(w.queries.len(), 4);
        for (i, q) in w.queries.iter().enumerate() {
            let goal = Goal::parse(&q.goal).unwrap();
            assert_eq!(goal.adornment(), if i % 2 == 0 { "b" } else { "bf" });
        }
    }

    #[test]
    fn empty_enterprise_yields_no_queries() {
        let w = query_workload(QueryConfig { employees: 0, queries: 5, ..Default::default() });
        assert!(w.queries.is_empty());
    }
}
