//! Deterministic commit streams for durability testing: a seeded
//! sequence of insert/modify/delete programs over an account base,
//! with a directly-computable expected final state.
//!
//! Crash-recovery tests apply a prefix of the stream through a
//! durable database, kill it, recover, and compare against
//! [`DurabilityWorkload::state_after`] — the reference state obtained
//! by applying the same prefix to a plain in-memory database. The
//! stream mixes all three update kinds and object churn (accounts are
//! created and destroyed), so recovery is exercised on more than a
//! monotone counter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configures [`durability_workload`].
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Accounts in the seed base.
    pub accounts: usize,
    /// Programs (= commits) in the stream.
    pub commits: usize,
    /// RNG seed; equal configs generate equal streams.
    pub seed: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig { accounts: 8, commits: 64, seed: 0xD1CE }
    }
}

/// A generated commit stream (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct DurabilityWorkload {
    /// Object-base text of the seed state.
    pub base_src: String,
    /// Program sources to commit, in order. Every program succeeds
    /// against the state produced by its predecessors.
    pub programs: Vec<String>,
}

impl DurabilityWorkload {
    /// The reference state after committing the first `n` programs:
    /// the seed base with each program applied through an in-memory
    /// database. Panics on evaluation errors (the generated stream is
    /// known-good).
    pub fn state_after(&self, n: usize) -> ruvo_obase::ObjectBase {
        let mut db = ruvo_core::Database::open_src(&self.base_src).expect("generated base parses");
        for src in &self.programs[..n] {
            db.apply_src(src).expect("generated program applies");
        }
        db.current().clone()
    }
}

/// Generate a deterministic durability stream for `config`.
pub fn durability_workload(config: DurabilityConfig) -> DurabilityWorkload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut base_src = String::new();
    for a in 0..config.accounts {
        let balance = 100 * (a as i64 + 1);
        base_src.push_str(&format!("acct{a}.balance -> {balance}. acct{a}.kind -> live.\n"));
    }

    let mut programs = Vec::with_capacity(config.commits);
    // Track which accounts currently exist so generated programs
    // always fire (deterministic given the seed).
    let mut live: Vec<usize> = (0..config.accounts).collect();
    let mut next_fresh = config.accounts;
    for _ in 0..config.commits {
        let choice = rng.gen_range(0..10u32);
        let program = if choice < 5 && !live.is_empty() {
            // Credit one live account (modify).
            let a = live[rng.gen_range(0..live.len())];
            let delta = rng.gen_range(1..50i64);
            format!(
                "mod[A].balance -> (B, B2) <= A.kind -> live & \
                 A.tag -> t{a} & A.balance -> B & B2 = B + {delta}."
            )
        } else if choice < 7 {
            // Open a fresh account (insert on a new object).
            let a = next_fresh;
            next_fresh += 1;
            live.push(a);
            format!(
                "ins[acct{a}].balance -> {}. ins[acct{a}].kind -> live. \
                 ins[acct{a}].tag -> t{a}.",
                rng.gen_range(10..500i64)
            )
        } else if choice < 8 && live.len() > 2 {
            // Close an account (delete all its methods).
            let idx = rng.gen_range(0..live.len());
            let a = live.swap_remove(idx);
            format!("del[A].* <= A.tag -> t{a}.")
        } else if !live.is_empty() {
            // Flag one account (insert on an existing object).
            let a = live[rng.gen_range(0..live.len())];
            format!("ins[A].flagged -> 1 <= A.tag -> t{a} & not A.flagged -> 1.")
        } else {
            // Degenerate fallback: open account 0 again.
            let a = next_fresh;
            next_fresh += 1;
            live.push(a);
            format!(
                "ins[acct{a}].balance -> 1. ins[acct{a}].kind -> live. ins[acct{a}].tag -> t{a}."
            )
        };
        programs.push(program);
    }

    // Seed accounts need tags for the generated rules to target them.
    let mut tagged = String::new();
    for a in 0..config.accounts {
        tagged.push_str(&format!("acct{a}.tag -> t{a}.\n"));
    }
    base_src.push_str(&tagged);

    DurabilityWorkload { base_src, programs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_applies_cleanly() {
        let config = DurabilityConfig { accounts: 4, commits: 24, seed: 7 };
        let w1 = durability_workload(config);
        let w2 = durability_workload(config);
        assert_eq!(w1.programs, w2.programs);
        assert_eq!(w1.base_src, w2.base_src);
        // Every prefix state is computable (programs are known-good).
        let full = w1.state_after(w1.programs.len());
        let half = w1.state_after(w1.programs.len() / 2);
        assert_ne!(full, half, "the stream must actually change state");
    }

    #[test]
    fn default_config_generates_all_update_kinds() {
        let w = durability_workload(DurabilityConfig::default());
        assert!(w.programs.iter().any(|p| p.starts_with("mod[")));
        assert!(w.programs.iter().any(|p| p.starts_with("ins[")));
        assert!(w.programs.iter().any(|p| p.starts_with("del[")));
    }
}
