//! Randomized object bases and insert-only programs for stress tests
//! and property-based testing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruvo_lang::Program;
use ruvo_obase::{Args, ObjectBase};
use ruvo_term::{int, oid, Vid};

/// Shape parameters for the random generators.
#[derive(Clone, Copy, Debug)]
pub struct RandomConfig {
    /// Number of objects.
    pub objects: usize,
    /// Number of distinct method names (`m0..`).
    pub methods: usize,
    /// Facts to generate.
    pub facts: usize,
    /// Rules to generate (for [`random_insert_program`]).
    pub rules: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig { objects: 20, methods: 5, facts: 60, rules: 8, seed: 42 }
    }
}

/// A random flat object base: `facts` version-terms over `objects`
/// objects and `methods` methods, with small-integer or object results.
pub fn random_object_base(config: RandomConfig) -> ObjectBase {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut ob = ObjectBase::new();
    for _ in 0..config.facts {
        let obj = oid(&format!("o{}", rng.gen_range(0..config.objects.max(1))));
        let method = ruvo_term::sym(&format!("m{}", rng.gen_range(0..config.methods.max(1))));
        let result = if rng.gen_bool(0.5) {
            int(rng.gen_range(0..100))
        } else {
            oid(&format!("o{}", rng.gen_range(0..config.objects.max(1))))
        };
        ob.insert(Vid::object(obj), method, Args::empty(), result);
    }
    ob
}

/// A random *insert-only* program over the same vocabulary: rules of
/// the shape
///
/// ```text
/// ins[X].mH -> R <= X.mA -> R [& R.mB -> S]
/// ```
///
/// Insert-only programs are monotone, so they are the fixture for the
/// overwrite-equals-union property test and for determinism checks.
pub fn random_insert_program(config: RandomConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9));
    let mut src = String::new();
    for i in 0..config.rules {
        let m_head = rng.gen_range(0..config.methods.max(1));
        let m_a = rng.gen_range(0..config.methods.max(1));
        if rng.gen_bool(0.4) {
            let m_b = rng.gen_range(0..config.methods.max(1));
            src.push_str(&format!(
                "r{i}: ins[X].m{m_head} -> S <= X.m{m_a} -> R & R.m{m_b} -> S.\n"
            ));
        } else {
            src.push_str(&format!("r{i}: ins[X].m{m_head} -> R <= X.m{m_a} -> R.\n"));
        }
    }
    Program::parse(&src).expect("generated insert program parses")
}

/// A random **layered** update-program exercising all three update
/// kinds plus negation, built to be statically stratifiable and
/// version-linear by construction:
///
/// * **Layer 0** — `ins[X].g* <= …` rules reading the base `m*`
///   relations, some recursing through the `ins(X).g*` relations they
///   build (monotone, so same-stratum recursion is fine).
/// * **Layer 1** — `del[ins(X)]` *or* `mod[ins(X)]` rules (one kind
///   per program, so every object's versions stay a chain) revising
///   layer 0's `g*` relations.
/// * **Layer 2** — `ins` rules one chain level deeper, writing `h*`
///   relations and reading layer 0/1 with **negated** literals, which
///   forces a strict stratum boundary below them.
///
/// The layers' written relations are disjoint (`g*` at distinct chain
/// depths, then `h*`), so the read/write dependency graph is a DAG and
/// static stratification always succeeds. This is the fixture for the
/// parallel-vs-sequential differential battery: deletes, modifies and
/// negation make evaluation order visible if the engine ever gets it
/// wrong, where insert-only programs would mask it.
pub fn random_update_program(config: RandomConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_mul(0xC2B2_AE35));
    let methods = config.methods.max(1);
    let rules = config.rules.max(3);
    let r0 = rules.div_ceil(2);
    let r1 = ((rules - r0) / 2).max(1);
    let r2 = rules.saturating_sub(r0 + r1).max(1);
    // One revision kind for the whole program: mixing `del[ins(X)]`
    // and `mod[ins(X)]` could create incomparable sibling versions of
    // one object and trip the §5 linearity check.
    let l1_del = rng.gen_bool(0.5);
    let mut src = String::new();
    for i in 0..r0 {
        let ga = rng.gen_range(0..methods);
        let mb = rng.gen_range(0..methods);
        match rng.gen_range(0..3) {
            0 => src.push_str(&format!("l0r{i}: ins[X].g{ga} -> R <= X.m{mb} -> R.\n")),
            1 => {
                let mc = rng.gen_range(0..methods);
                src.push_str(&format!(
                    "l0r{i}: ins[X].g{ga} -> S <= X.m{mb} -> R & R.m{mc} -> S.\n"
                ));
            }
            _ => {
                let gc = rng.gen_range(0..methods);
                src.push_str(&format!(
                    "l0r{i}: ins[X].g{ga} -> S <= ins(X).g{gc} -> R & R.m{mb} -> S.\n"
                ));
            }
        }
    }
    for i in 0..r1 {
        let ga = rng.gen_range(0..methods);
        let mb = rng.gen_range(0..methods);
        if l1_del {
            if rng.gen_bool(0.25) {
                // Wildcard delete: kills the whole `ins(X)` version.
                src.push_str(&format!(
                    "l1r{i}: del[ins(X)].* <= ins(X).g{ga} -> R & X.m{mb} -> R.\n"
                ));
            } else {
                src.push_str(&format!(
                    "l1r{i}: del[ins(X)].g{ga} -> R <= ins(X).g{ga} -> R & X.m{mb} -> C.\n"
                ));
            }
        } else {
            src.push_str(&format!(
                "l1r{i}: mod[ins(X)].g{ga} -> (R, C) <= ins(X).g{ga} -> R & X.m{mb} -> C.\n"
            ));
        }
    }
    for i in 0..r2 {
        let gb = rng.gen_range(0..methods);
        let ha = rng.gen_range(0..methods);
        if l1_del {
            if rng.gen_bool(0.5) {
                src.push_str(&format!(
                    "l2r{i}: ins[del(ins(X))].h{ha} -> R <= ins(X).g{gb} -> R \
                     & not del[ins(X)].g{gb} -> R.\n"
                ));
            } else {
                src.push_str(&format!(
                    "l2r{i}: ins[del(ins(X))].h{ha} -> C <= del(ins(X)).g{gb} -> C.\n"
                ));
            }
        } else {
            src.push_str(&format!(
                "l2r{i}: ins[mod(ins(X))].h{ha} -> R <= ins(X).g{gb} -> R \
                 & not mod(ins(X)).g{gb} -> R.\n"
            ));
        }
    }
    Program::parse(&src).expect("generated update program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_core::{EngineConfig, UpdateEngine};

    #[test]
    fn random_ob_is_deterministic() {
        let a = random_object_base(RandomConfig::default());
        let b = random_object_base(RandomConfig::default());
        assert_eq!(a, b);
        assert!(a.len() <= 60);
        assert!(!a.is_empty());
    }

    #[test]
    fn random_programs_run_clean() {
        for seed in 0..10 {
            let config = RandomConfig { seed, ..Default::default() };
            let ob = random_object_base(config);
            let program = random_insert_program(config);
            let outcome =
                UpdateEngine::new(program).run(&ob).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            outcome.result().check_invariants();
            outcome.new_object_base().check_invariants();
        }
    }

    #[test]
    fn insert_only_monotone_over_input() {
        // Every original fact survives into the new object base.
        let config = RandomConfig { seed: 3, ..Default::default() };
        let ob = random_object_base(config);
        let outcome = UpdateEngine::new(random_insert_program(config)).run(&ob).unwrap();
        let ob2 = outcome.new_object_base();
        for fact in ob.iter() {
            assert!(
                ob2.contains(fact.vid, fact.method, fact.args.as_slice(), fact.result),
                "lost fact {fact}"
            );
        }
    }

    #[test]
    fn random_update_programs_stratify_and_run_clean() {
        let mut fired_any = false;
        for seed in 0..20 {
            let config = RandomConfig { seed, rules: 9, ..Default::default() };
            let ob = random_object_base(config);
            let program = random_update_program(config);
            let outcome =
                UpdateEngine::new(program).run(&ob).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            outcome.new_object_base().check_invariants();
            fired_any |= outcome.stats().fired_updates > 0;
            // The negation layer forces at least two strata.
            assert!(outcome.stratification().strata.len() >= 2, "seed {seed}");
        }
        assert!(fired_any, "no generated program fired anything");
    }

    #[test]
    fn delta_filtering_agrees_on_random_workloads() {
        for seed in 0..6 {
            let config = RandomConfig { seed, rules: 6, ..Default::default() };
            let ob = random_object_base(config);
            let p1 = random_insert_program(config);
            let p2 = p1.clone();
            let fast = UpdateEngine::new(p1).run(&ob).unwrap();
            let slow = UpdateEngine::with_config(
                p2,
                EngineConfig { delta_filtering: false, ..Default::default() },
            )
            .run(&ob)
            .unwrap();
            assert_eq!(fast.result(), slow.result(), "seed {seed}");
        }
    }
}
