//! Update-driven schema evolution (§2.4 / Skarra-Zdonik).
//!
//! "The way we consider inserts and deletions would require changes of
//! corresponding class-definitions in a strongly typed environment,
//! because methods become undefined, respectively defined w.r.t. some
//! objects according to the type of the update."
//!
//! [`diff`] compares the object bases before and after an
//! update-program and infers exactly that: per class, which methods
//! *became defined* (some member now carries them) and which *became
//! undefined* (no member carries them any more), plus classes that
//! appeared in `isa` results without a schema definition and classes
//! whose membership emptied. [`Schema::evolve`] applies the delta.

use ruvo_obase::ObjectBase;
use ruvo_term::{Const, FastHashMap, FastHashSet, Symbol, Vid};

use crate::check::membership;
use crate::isa_sym;
use crate::types::{MethodSig, Schema, SchemaError, TypeRef};

/// An inferred schema change.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchemaDelta {
    /// `(class, signature)`: the method became defined for members of
    /// the class; the signature is inferred from the observed
    /// applications (arity, result type, set-valuedness).
    pub added_methods: Vec<(Symbol, MethodSig)>,
    /// `(class, method)`: no member of the class defines the method
    /// any more.
    pub removed_methods: Vec<(Symbol, Symbol)>,
    /// Classes appearing in `isa` results that the schema lacks,
    /// with their inferred method signatures.
    pub new_classes: Vec<(Symbol, Vec<MethodSig>)>,
    /// Schema classes that lost their last member.
    pub emptied_classes: Vec<Symbol>,
}

impl SchemaDelta {
    /// True if the update-program implied no schema change.
    pub fn is_empty(&self) -> bool {
        self.added_methods.is_empty()
            && self.removed_methods.is_empty()
            && self.new_classes.is_empty()
            && self.emptied_classes.is_empty()
    }
}

/// Infer the result type covering every observed constant.
fn infer_type(values: &[Const]) -> TypeRef {
    if values.iter().all(|v| matches!(v, Const::Int(_))) {
        TypeRef::Int
    } else if values.iter().all(|v| matches!(v, Const::Int(_) | Const::Num(_))) {
        TypeRef::Num
    } else if values.iter().all(|v| matches!(v, Const::Sym(_))) {
        TypeRef::Sym
    } else {
        TypeRef::Any
    }
}

/// Per-method observations: (arities, results, any member multi-valued).
type MethodObservations = FastHashMap<Symbol, (FastHashSet<usize>, Vec<Const>, bool)>;

/// The methods defined by at least one member of each class, with the
/// observations needed for signature inference.
struct ClassMethods {
    /// class → method → observations
    per_class: FastHashMap<Symbol, MethodObservations>,
    /// classes with at least one member
    inhabited: FastHashSet<Symbol>,
}

fn class_methods(ob: &ObjectBase, schema: &Schema) -> ClassMethods {
    let isa = isa_sym();
    let exists = ruvo_obase::exists_sym();
    let member_of = membership(ob, schema);
    let mut per_class: FastHashMap<Symbol, MethodObservations> = FastHashMap::default();
    let mut inhabited: FastHashSet<Symbol> = FastHashSet::default();
    for base in ob.objects() {
        let Some(state) = ob.version(Vid::object(base)) else { continue };
        let Some(classes) = member_of.get(&base) else { continue };
        inhabited.extend(classes.iter().copied());
        for &class in classes {
            let slot = per_class.entry(class).or_default();
            let mut args_seen: FastHashMap<(Symbol, Vec<Const>), usize> = FastHashMap::default();
            for (method, app) in state.iter() {
                if method == isa || method == exists {
                    continue;
                }
                let entry = slot.entry(method).or_default();
                entry.0.insert(app.args.len());
                entry.1.push(app.result);
                let n = args_seen.entry((method, app.args.as_slice().to_vec())).or_insert(0);
                *n += 1;
                if *n >= 2 {
                    entry.2 = true;
                }
            }
        }
    }
    ClassMethods { per_class, inhabited }
}

/// Infer the schema delta an update-program implied, from the object
/// bases before (`ob`) and after (`ob2`) its execution.
pub fn diff(schema: &Schema, ob: &ObjectBase, ob2: &ObjectBase) -> SchemaDelta {
    let before = class_methods(ob, schema);
    let after = class_methods(ob2, schema);

    let mut delta = SchemaDelta::default();

    // Classes present after the update.
    let mut after_classes: Vec<Symbol> = after.per_class.keys().copied().collect();
    after_classes.extend(after.inhabited.iter().copied());
    after_classes.sort_by_key(|s| s.as_str().to_owned());
    after_classes.dedup();

    for &class in &after_classes {
        let before_methods = before.per_class.get(&class);
        let empty = FastHashMap::default();
        let after_methods = after.per_class.get(&class).unwrap_or(&empty);

        let mut sigs: Vec<MethodSig> = Vec::new();
        for (&method, (arities, results, multi)) in after_methods {
            let defined_before = before_methods.is_some_and(|m| m.contains_key(&method));
            if !defined_before {
                let arity = arities.iter().copied().max().unwrap_or(0);
                let mut sig = MethodSig {
                    name: method,
                    arity,
                    arg_types: vec![TypeRef::Any; arity],
                    result: infer_type(results),
                    required: false,
                    set_valued: *multi,
                };
                // Already declared (e.g. inherited)? Then nothing new.
                if schema.has_class(class)
                    && schema.resolved_methods(class).iter().any(|m| m.name == method)
                {
                    continue;
                }
                if schema.has_class(class) {
                    delta.added_methods.push((class, sig));
                } else {
                    sig.set_valued = *multi;
                    sigs.push(sig);
                }
            }
        }
        if !schema.has_class(class) && after.inhabited.contains(&class) {
            sigs.sort_by_key(|s| s.name.as_str().to_owned());
            delta.new_classes.push((class, sigs));
        }
    }

    // Removed methods: defined for some member before, for none after.
    let mut before_classes: Vec<Symbol> = before.per_class.keys().copied().collect();
    before_classes.sort_by_key(|s| s.as_str().to_owned());
    for &class in &before_classes {
        if !schema.has_class(class) {
            continue;
        }
        let empty = FastHashMap::default();
        let after_methods = after.per_class.get(&class).unwrap_or(&empty);
        let mut removed: Vec<Symbol> = before.per_class[&class]
            .keys()
            .filter(|m| !after_methods.contains_key(m))
            .copied()
            .collect();
        removed.sort_by_key(|s| s.as_str().to_owned());
        for method in removed {
            delta.removed_methods.push((class, method));
        }
    }

    // Emptied classes.
    let mut emptied: Vec<Symbol> = before
        .inhabited
        .iter()
        .filter(|c| schema.has_class(**c) && !after.inhabited.contains(*c))
        .copied()
        .collect();
    emptied.sort_by_key(|s| s.as_str().to_owned());
    delta.emptied_classes = emptied;

    delta.added_methods.sort_by_key(|(c, m)| (c.as_str().to_owned(), m.name.as_str().to_owned()));
    delta.removed_methods.sort_by_key(|(c, m)| (c.as_str().to_owned(), m.as_str().to_owned()));
    delta
}

impl Schema {
    /// Apply a [`SchemaDelta`], yielding the evolved schema.
    ///
    /// New classes are added parentless; added methods extend the
    /// class's own declarations; removed methods are dropped from the
    /// class's own declarations (inherited declarations stay with the
    /// ancestor — removing them there would affect sibling classes).
    /// Emptied classes are *kept* (an empty extent is not a missing
    /// type); they are reported for the DBA to decide.
    pub fn evolve(mut self, delta: &SchemaDelta) -> Result<Schema, SchemaError> {
        for (class, sigs) in &delta.new_classes {
            self.classes_mut().entry(*class).or_default().methods.extend(sigs.iter().cloned());
        }
        for (class, sig) in &delta.added_methods {
            if let Some(def) = self.classes_mut().get_mut(class) {
                if !def.methods.iter().any(|m| m.name == sig.name) {
                    def.methods.push(sig.clone());
                }
            }
        }
        for (class, method) in &delta.removed_methods {
            if let Some(def) = self.classes_mut().get_mut(class) {
                def.methods.retain(|m| m.name != *method);
            }
        }
        self.revalidate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::types::ClassDef;
    use ruvo_term::sym;

    fn empl_schema() -> Schema {
        Schema::builder()
            .class(
                "empl",
                ClassDef {
                    parents: vec![],
                    methods: vec![
                        MethodSig::new("sal", TypeRef::Num).required(),
                        MethodSig::new("boss", TypeRef::Instance(sym("empl"))),
                        MethodSig::new("pos", TypeRef::Sym),
                    ],
                },
            )
            .build()
            .unwrap()
    }

    fn run(ob: &str, prog: &str) -> (ObjectBase, ObjectBase) {
        let ob = ObjectBase::parse(ob).unwrap();
        let program = ruvo_lang::Program::parse(prog).unwrap();
        let outcome = ruvo_core::UpdateEngine::new(program).run(&ob).unwrap();
        let ob2 = outcome.new_object_base();
        (ob, ob2)
    }

    #[test]
    fn no_change_no_delta() {
        let (ob, ob2) = run("phil.isa -> empl. phil.sal -> 4000.", "");
        let delta = diff(&empl_schema(), &ob, &ob2);
        assert!(delta.is_empty(), "{delta:?}");
    }

    #[test]
    fn paper_enterprise_update_implies_hpe_class() {
        // The §2.3 enterprise update: phil joins hpe, bob is fired.
        let (ob, ob2) = run(
            "phil.isa -> empl / pos -> mgr / sal -> 4000.
             bob.isa -> empl / boss -> phil / sal -> 4200.",
            "rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
             rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
             rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
             rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.",
        );
        let schema = empl_schema();
        let delta = diff(&schema, &ob, &ob2);
        // A brand-new class hpe appeared, populated by phil with his
        // empl methods.
        let (class, sigs) =
            delta.new_classes.iter().find(|(c, _)| *c == sym("hpe")).expect("hpe inferred");
        assert_eq!(*class, sym("hpe"));
        assert!(sigs.iter().any(|s| s.name == sym("sal")));
        // bob was fired: boss became undefined for class empl (phil has
        // no boss), and nothing else was removed.
        assert!(delta.removed_methods.contains(&(sym("empl"), sym("boss"))));
        // Evolving the schema makes ob2 conform.
        let evolved = schema.evolve(&delta).unwrap();
        assert!(evolved.has_class(sym("hpe")));
        let vs = check(&evolved, &ob2);
        assert_eq!(vs, vec![], "evolved schema must accept ob2");
    }

    #[test]
    fn added_method_on_existing_class() {
        let (ob, ob2) =
            run("phil.isa -> empl. phil.sal -> 4000.", "ins[E].badge -> 7 <= E.isa -> empl.");
        let schema = empl_schema();
        let delta = diff(&schema, &ob, &ob2);
        let (class, sig) = delta
            .added_methods
            .iter()
            .find(|(_, s)| s.name == sym("badge"))
            .expect("badge inferred");
        assert_eq!(*class, sym("empl"));
        assert_eq!(sig.result, TypeRef::Int);
        let evolved = schema.evolve(&delta).unwrap();
        assert_eq!(check(&evolved, &ob2), vec![]);
    }

    #[test]
    fn emptied_class_reported_but_kept() {
        let (ob, ob2) = run("solo.isa -> empl. solo.sal -> 1.", "del[solo].* <= solo.sal -> 1.");
        let schema = empl_schema();
        let delta = diff(&schema, &ob, &ob2);
        assert_eq!(delta.emptied_classes, vec![sym("empl")]);
        let evolved = schema.evolve(&delta).unwrap();
        assert!(evolved.has_class(sym("empl")));
    }

    #[test]
    fn set_valued_inference() {
        let (ob, ob2) = run(
            "a.isa -> node. b.isa -> node. a.next -> b.",
            "ins[X].reach -> Y <= X.next -> Y.
             ins[X].reach -> X <= X.isa -> node.",
        );
        let schema = Schema::builder()
            .class(
                "node",
                ClassDef {
                    parents: vec![],
                    methods: vec![MethodSig::new("next", TypeRef::Instance(sym("node")))],
                },
            )
            .build()
            .unwrap();
        let delta = diff(&schema, &ob, &ob2);
        let (_, sig) = delta
            .added_methods
            .iter()
            .find(|(_, s)| s.name == sym("reach"))
            .expect("reach inferred");
        // `a` reaches both a and b: multi-valued.
        assert!(sig.set_valued);
        assert_eq!(sig.result, TypeRef::Sym);
        assert_eq!(check(&schema.evolve(&delta).unwrap(), &ob2), vec![]);
    }

    #[test]
    fn numeric_type_inference() {
        assert_eq!(infer_type(&[ruvo_term::int(1), ruvo_term::int(2)]), TypeRef::Int);
        assert_eq!(infer_type(&[ruvo_term::int(1), ruvo_term::num(2.5)]), TypeRef::Num);
        assert_eq!(infer_type(&[ruvo_term::oid("x")]), TypeRef::Sym);
        assert_eq!(infer_type(&[ruvo_term::oid("x"), ruvo_term::int(1)]), TypeRef::Any);
    }
}
