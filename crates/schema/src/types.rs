//! Schema model: classes, method signatures, the isa-hierarchy.

use std::fmt;

use ruvo_term::{Const, FastHashMap, FastHashSet, Symbol};

/// What a method's result (or argument) may be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypeRef {
    /// Anything (the untyped default).
    Any,
    /// A 64-bit integer value.
    Int,
    /// Any numeric value (integer or float).
    Num,
    /// Any symbolic OID.
    Sym,
    /// An instance of the named class (membership via `isa`).
    Instance(Symbol),
}

impl TypeRef {
    /// Does `value` inhabit this type w.r.t. `membership` (the map from
    /// object to its transitive classes)?
    pub fn admits(
        self,
        value: Const,
        membership: &FastHashMap<Const, FastHashSet<Symbol>>,
    ) -> bool {
        match self {
            TypeRef::Any => true,
            TypeRef::Int => matches!(value, Const::Int(_)),
            TypeRef::Num => matches!(value, Const::Int(_) | Const::Num(_)),
            TypeRef::Sym => matches!(value, Const::Sym(_)),
            TypeRef::Instance(class) => {
                membership.get(&value).is_some_and(|cs| cs.contains(&class))
            }
        }
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Any => write!(f, "any"),
            TypeRef::Int => write!(f, "int"),
            TypeRef::Num => write!(f, "num"),
            TypeRef::Sym => write!(f, "sym"),
            TypeRef::Instance(c) => write!(f, "{c}"),
        }
    }
}

/// One method signature of a class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
    /// Argument types (length == arity; `Any` when unconstrained).
    pub arg_types: Vec<TypeRef>,
    /// Result type.
    pub result: TypeRef,
    /// Must every member define it?
    pub required: bool,
    /// May a member hold several results for the same arguments?
    pub set_valued: bool,
}

impl MethodSig {
    /// A no-argument, optional, single-valued signature.
    pub fn new(name: &str, result: TypeRef) -> MethodSig {
        MethodSig {
            name: ruvo_term::sym(name),
            arity: 0,
            arg_types: Vec::new(),
            result,
            required: false,
            set_valued: false,
        }
    }

    /// Mark as required on every member.
    pub fn required(mut self) -> MethodSig {
        self.required = true;
        self
    }

    /// Allow multiple results per argument tuple.
    pub fn set_valued(mut self) -> MethodSig {
        self.set_valued = true;
        self
    }

    /// Set the argument types (fixes the arity).
    pub fn with_args(mut self, args: Vec<TypeRef>) -> MethodSig {
        self.arity = args.len();
        self.arg_types = args;
        self
    }
}

/// One class: parents in the isa-hierarchy plus own method signatures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassDef {
    /// Direct superclasses.
    pub parents: Vec<Symbol>,
    /// Methods declared on this class (inherited ones live on parents).
    pub methods: Vec<MethodSig>,
}

/// Why a schema could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// A parent class is not defined.
    UnknownParent {
        /// The class with the dangling parent.
        class: Symbol,
        /// The missing parent.
        parent: Symbol,
    },
    /// The isa-hierarchy has a cycle through this class.
    CyclicHierarchy(Symbol),
    /// Two signatures for one method name conflict along the hierarchy.
    ConflictingSignature {
        /// The class where the conflict surfaces.
        class: Symbol,
        /// The method with two incompatible signatures.
        method: Symbol,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownParent { class, parent } => {
                write!(f, "class {class} names unknown parent {parent}")
            }
            SchemaError::CyclicHierarchy(c) => {
                write!(f, "isa-hierarchy is cyclic through class {c}")
            }
            SchemaError::ConflictingSignature { class, method } => {
                write!(f, "class {class} inherits conflicting signatures for method {method}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A validated schema: acyclic class hierarchy with per-class resolved
/// (own + inherited) method signatures.
#[derive(Clone, Debug)]
pub struct Schema {
    classes: FastHashMap<Symbol, ClassDef>,
    /// Memoized transitive superclasses (reflexive).
    ancestors: FastHashMap<Symbol, FastHashSet<Symbol>>,
}

/// Incremental schema builder.
#[derive(Clone, Debug, Default)]
pub struct SchemaBuilder {
    classes: FastHashMap<Symbol, ClassDef>,
}

impl SchemaBuilder {
    /// Start with no classes.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Add (or replace) a class.
    pub fn class(mut self, name: &str, def: ClassDef) -> SchemaBuilder {
        self.classes.insert(ruvo_term::sym(name), def);
        self
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Schema, SchemaError> {
        Schema::from_classes(self.classes)
    }
}

impl Schema {
    /// An empty schema (everything is untyped).
    pub fn empty() -> Schema {
        Schema { classes: FastHashMap::default(), ancestors: FastHashMap::default() }
    }

    /// Start building.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// Validate a class map into a schema.
    pub fn from_classes(classes: FastHashMap<Symbol, ClassDef>) -> Result<Schema, SchemaError> {
        // Parents must exist.
        for (&class, def) in &classes {
            for &parent in &def.parents {
                if !classes.contains_key(&parent) {
                    return Err(SchemaError::UnknownParent { class, parent });
                }
            }
        }
        // Acyclicity + ancestor closure by DFS with colors.
        let mut ancestors: FastHashMap<Symbol, FastHashSet<Symbol>> = FastHashMap::default();
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: FastHashMap<Symbol, Color> = FastHashMap::default();
        fn visit(
            class: Symbol,
            classes: &FastHashMap<Symbol, ClassDef>,
            color: &mut FastHashMap<Symbol, Color>,
            ancestors: &mut FastHashMap<Symbol, FastHashSet<Symbol>>,
        ) -> Result<(), SchemaError> {
            match color.get(&class).copied().unwrap_or(Color::White) {
                Color::Black => return Ok(()),
                Color::Grey => return Err(SchemaError::CyclicHierarchy(class)),
                Color::White => {}
            }
            color.insert(class, Color::Grey);
            let mut anc: FastHashSet<Symbol> = FastHashSet::default();
            anc.insert(class);
            for &parent in &classes[&class].parents {
                visit(parent, classes, color, ancestors)?;
                anc.extend(ancestors[&parent].iter().copied());
            }
            ancestors.insert(class, anc);
            color.insert(class, Color::Black);
            Ok(())
        }
        for &class in classes.keys() {
            visit(class, &classes, &mut color, &mut ancestors)?;
        }
        let schema = Schema { classes, ancestors };
        // Resolved signatures must be coherent (no incomparable
        // conflicting declarations along the hierarchy).
        for &class in schema.classes.keys() {
            schema.resolve(class)?;
        }
        Ok(schema)
    }

    /// Resolve the signatures visible on `class` with Skarra/Zdonik
    /// shadowing: a declaration on a more specific class overrides an
    /// ancestor's; two *incomparable* classes declaring different
    /// signatures for one method conflict.
    fn resolve(&self, class: Symbol) -> Result<Vec<MethodSig>, SchemaError> {
        let mut by_name: FastHashMap<Symbol, (Symbol, MethodSig)> = FastHashMap::default();
        let Some(anc) = self.ancestors.get(&class) else { return Ok(Vec::new()) };
        let mut ordered: Vec<Symbol> = anc.iter().copied().collect();
        ordered.sort_by_key(|s| s.as_str().to_owned());
        for c in ordered {
            let Some(def) = self.classes.get(&c) else { continue };
            for sig in &def.methods {
                match by_name.get(&sig.name) {
                    None => {
                        by_name.insert(sig.name, (c, sig.clone()));
                    }
                    Some((c0, s0)) => {
                        let c0 = *c0;
                        if c0 == c {
                            continue;
                        }
                        let c0_below_c = self.ancestors[&c0].contains(&c);
                        let c_below_c0 = self.ancestors[&c].contains(&c0);
                        if c0_below_c {
                            // existing declaration is more specific
                        } else if c_below_c0 {
                            by_name.insert(sig.name, (c, sig.clone()));
                        } else if *s0 != *sig {
                            return Err(SchemaError::ConflictingSignature {
                                class,
                                method: sig.name,
                            });
                        }
                    }
                }
            }
        }
        let mut out: Vec<MethodSig> = by_name.into_values().map(|(_, s)| s).collect();
        out.sort_by_key(|s| s.name.as_str().to_owned());
        Ok(out)
    }

    /// The classes, unordered.
    pub fn classes(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.classes.keys().copied()
    }

    /// A class definition.
    pub fn class(&self, name: Symbol) -> Option<&ClassDef> {
        self.classes.get(&name)
    }

    /// True if the class is defined.
    pub fn has_class(&self, name: Symbol) -> bool {
        self.classes.contains_key(&name)
    }

    /// The transitive (reflexive) superclasses of `class`.
    pub fn ancestors(&self, class: Symbol) -> impl Iterator<Item = Symbol> + '_ {
        self.ancestors.get(&class).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Own + inherited method signatures of `class`, with shadowing
    /// resolved (coherence was checked at build time).
    pub fn resolved_methods(&self, class: Symbol) -> Vec<MethodSig> {
        self.resolve(class).expect("schema was validated at construction; evolution revalidates")
    }

    /// Mutable access used by evolution (crate-internal).
    pub(crate) fn classes_mut(&mut self) -> &mut FastHashMap<Symbol, ClassDef> {
        &mut self.classes
    }

    /// Re-validate after mutation (evolution).
    pub(crate) fn revalidate(self) -> Result<Schema, SchemaError> {
        Schema::from_classes(self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::sym;

    fn person_empl() -> Schema {
        Schema::builder()
            .class(
                "person",
                ClassDef {
                    parents: vec![],
                    methods: vec![
                        MethodSig::new("name", TypeRef::Sym).required(),
                        MethodSig::new("parents", TypeRef::Instance(sym("person"))).set_valued(),
                    ],
                },
            )
            .class(
                "empl",
                ClassDef {
                    parents: vec![sym("person")],
                    methods: vec![
                        MethodSig::new("sal", TypeRef::Num).required(),
                        MethodSig::new("boss", TypeRef::Instance(sym("empl"))),
                    ],
                },
            )
            .build()
            .unwrap()
    }

    #[test]
    fn inheritance_resolves() {
        let s = person_empl();
        let methods: Vec<&str> =
            s.resolved_methods(sym("empl")).iter().map(|m| m.name.as_str()).collect();
        assert!(methods.contains(&"sal"));
        assert!(methods.contains(&"name")); // inherited
        let anc: Vec<Symbol> = s.ancestors(sym("empl")).collect();
        assert!(anc.contains(&sym("person")));
        assert!(anc.contains(&sym("empl")));
    }

    #[test]
    fn unknown_parent_rejected() {
        let err = Schema::builder()
            .class("a", ClassDef { parents: vec![sym("ghost")], methods: vec![] })
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::UnknownParent { .. }));
    }

    #[test]
    fn cyclic_hierarchy_rejected() {
        let err = Schema::builder()
            .class("a", ClassDef { parents: vec![sym("b")], methods: vec![] })
            .class("b", ClassDef { parents: vec![sym("a")], methods: vec![] })
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::CyclicHierarchy(_)));
    }

    #[test]
    fn conflicting_inherited_signatures_rejected() {
        let err = Schema::builder()
            .class(
                "a",
                ClassDef { parents: vec![], methods: vec![MethodSig::new("m", TypeRef::Int)] },
            )
            .class(
                "b",
                ClassDef { parents: vec![], methods: vec![MethodSig::new("m", TypeRef::Sym)] },
            )
            .class("c", ClassDef { parents: vec![sym("a"), sym("b")], methods: vec![] })
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::ConflictingSignature { .. }));
    }

    #[test]
    fn own_declaration_overrides_inherited() {
        // Diamond with an override at the bottom is fine: the class's
        // own signature shadows both parents'.
        let s = Schema::builder()
            .class(
                "top",
                ClassDef { parents: vec![], methods: vec![MethodSig::new("m", TypeRef::Any)] },
            )
            .class(
                "bottom",
                ClassDef {
                    parents: vec![sym("top")],
                    methods: vec![MethodSig::new("m", TypeRef::Int)],
                },
            )
            .build()
            .unwrap();
        let m = s.resolved_methods(sym("bottom")).into_iter().find(|m| m.name == sym("m")).unwrap();
        assert_eq!(m.result, TypeRef::Int);
    }

    #[test]
    fn type_admission() {
        use ruvo_term::{int, num, oid};
        let mut membership: FastHashMap<Const, FastHashSet<Symbol>> = FastHashMap::default();
        membership.entry(oid("phil")).or_default().insert(sym("empl"));
        assert!(TypeRef::Int.admits(int(5), &membership));
        assert!(!TypeRef::Int.admits(num(5.5), &membership));
        assert!(TypeRef::Num.admits(num(5.5), &membership));
        assert!(TypeRef::Sym.admits(oid("x"), &membership));
        assert!(TypeRef::Instance(sym("empl")).admits(oid("phil"), &membership));
        assert!(!TypeRef::Instance(sym("hpe")).admits(oid("phil"), &membership));
        assert!(TypeRef::Any.admits(int(1), &membership));
    }
}
