//! Conformance of an object base against a schema.

use std::fmt;

use ruvo_obase::ObjectBase;
use ruvo_term::{Const, FastHashMap, FastHashSet, Symbol, Vid};

use crate::isa_sym;
use crate::types::{Schema, TypeRef};

/// What went wrong, object by object.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The offending object.
    pub object: Const,
    /// The specific problem.
    pub kind: ViolationKind,
}

/// The kinds of conformance violations.
#[derive(Clone, Debug, PartialEq)]
pub enum ViolationKind {
    /// `isa` names a class the schema does not define.
    UnknownClass(Symbol),
    /// A required method of one of the object's classes is absent.
    MissingRequired {
        /// The class requiring the method.
        class: Symbol,
        /// The missing method.
        method: Symbol,
    },
    /// A method result does not inhabit the declared type.
    WrongResultType {
        /// The method.
        method: Symbol,
        /// The offending result.
        value: Const,
        /// The declared type.
        expected: TypeRef,
    },
    /// A method argument does not inhabit the declared type.
    WrongArgType {
        /// The method.
        method: Symbol,
        /// Argument position (0-based).
        position: usize,
        /// The offending argument.
        value: Const,
        /// The declared type.
        expected: TypeRef,
    },
    /// A method-application has the wrong number of arguments.
    WrongArity {
        /// The method.
        method: Symbol,
        /// Observed argument count.
        got: usize,
        /// Declared arity.
        expected: usize,
    },
    /// A single-valued method holds several results for one argument
    /// tuple.
    MultiValued {
        /// The method.
        method: Symbol,
    },
    /// The object defines a method none of its classes declare.
    Undeclared {
        /// The method.
        method: Symbol,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.object)?;
        match &self.kind {
            ViolationKind::UnknownClass(c) => write!(f, "isa names unknown class {c}"),
            ViolationKind::MissingRequired { class, method } => {
                write!(f, "class {class} requires method {method}")
            }
            ViolationKind::WrongResultType { method, value, expected } => {
                write!(f, "{method} -> {value} does not inhabit {expected}")
            }
            ViolationKind::WrongArgType { method, position, value, expected } => {
                write!(f, "{method} argument {position} = {value} does not inhabit {expected}")
            }
            ViolationKind::WrongArity { method, got, expected } => {
                write!(f, "{method} applied to {got} arguments, declared with {expected}")
            }
            ViolationKind::MultiValued { method } => {
                write!(f, "{method} is single-valued but holds several results")
            }
            ViolationKind::Undeclared { method } => {
                write!(f, "method {method} is not declared by any of the object's classes")
            }
        }
    }
}

/// The transitive class membership of every object in `ob`: direct
/// `isa` results closed over the schema's ancestor relation. Classes
/// unknown to the schema still appear (as themselves) so evolution can
/// discover them.
pub(crate) fn membership(
    ob: &ObjectBase,
    schema: &Schema,
) -> FastHashMap<Const, FastHashSet<Symbol>> {
    let isa = isa_sym();
    let mut out: FastHashMap<Const, FastHashSet<Symbol>> = FastHashMap::default();
    for base in ob.objects() {
        let mut classes: FastHashSet<Symbol> = FastHashSet::default();
        for app in ob.apps(Vid::object(base), isa) {
            if let Const::Sym(class) = app.result {
                if schema.has_class(class) {
                    classes.extend(schema.ancestors(class));
                } else {
                    classes.insert(class);
                }
            }
        }
        out.insert(base, classes);
    }
    out
}

/// Check `ob` against `schema`, reporting every violation.
///
/// Only the *flat* (depth-0) versions are checked — conformance is a
/// property of object bases, and `ob` / `ob'` are flat by construction.
/// Objects without any `isa` fact are untyped and only checked for
/// nothing (the schema layer is opt-in per object).
pub fn check(schema: &Schema, ob: &ObjectBase) -> Vec<Violation> {
    let isa = isa_sym();
    let member_of = membership(ob, schema);
    let mut out = Vec::new();

    for base in ob.objects() {
        let vid = Vid::object(base);
        let Some(state) = ob.version(vid) else { continue };
        let classes = &member_of[&base];
        if classes.is_empty() {
            continue; // untyped object
        }
        // Unknown classes.
        let mut sorted_classes: Vec<Symbol> = classes.iter().copied().collect();
        sorted_classes.sort_by_key(|s| s.as_str().to_owned());
        for &class in &sorted_classes {
            if !schema.has_class(class) {
                out.push(Violation { object: base, kind: ViolationKind::UnknownClass(class) });
            }
        }
        // The union of signatures over all classes.
        let mut sigs: FastHashMap<Symbol, crate::MethodSig> = FastHashMap::default();
        for &class in &sorted_classes {
            for sig in schema.resolved_methods(class) {
                sigs.entry(sig.name).or_insert(sig);
            }
        }
        // Required methods.
        for &class in &sorted_classes {
            for sig in schema.resolved_methods(class) {
                if sig.required && !state.has_method(sig.name) {
                    out.push(Violation {
                        object: base,
                        kind: ViolationKind::MissingRequired { class, method: sig.name },
                    });
                }
            }
        }
        // Per-application checks.
        let mut seen_args: FastHashMap<(Symbol, Vec<Const>), usize> = FastHashMap::default();
        for (method, app) in state.iter() {
            if method == isa || method == ruvo_obase::exists_sym() {
                continue;
            }
            let Some(sig) = sigs.get(&method) else {
                out.push(Violation { object: base, kind: ViolationKind::Undeclared { method } });
                continue;
            };
            if app.args.len() != sig.arity {
                out.push(Violation {
                    object: base,
                    kind: ViolationKind::WrongArity {
                        method,
                        got: app.args.len(),
                        expected: sig.arity,
                    },
                });
                continue;
            }
            for (i, (&arg, &ty)) in app.args.iter().zip(&sig.arg_types).enumerate() {
                if !ty.admits(arg, &member_of) {
                    out.push(Violation {
                        object: base,
                        kind: ViolationKind::WrongArgType {
                            method,
                            position: i,
                            value: arg,
                            expected: ty,
                        },
                    });
                }
            }
            if !sig.result.admits(app.result, &member_of) {
                out.push(Violation {
                    object: base,
                    kind: ViolationKind::WrongResultType {
                        method,
                        value: app.result,
                        expected: sig.result,
                    },
                });
            }
            if !sig.set_valued {
                let key = (method, app.args.as_slice().to_vec());
                let n = seen_args.entry(key).or_insert(0);
                *n += 1;
                if *n == 2 {
                    out.push(Violation {
                        object: base,
                        kind: ViolationKind::MultiValued { method },
                    });
                }
            }
        }
    }
    out.sort_by_key(|v| format!("{v}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClassDef, MethodSig};
    use ruvo_term::{int, oid, sym};

    fn schema() -> Schema {
        Schema::builder()
            .class(
                "empl",
                ClassDef {
                    parents: vec![],
                    methods: vec![
                        MethodSig::new("sal", TypeRef::Num).required(),
                        MethodSig::new("boss", TypeRef::Instance(sym("empl"))),
                        MethodSig::new("tags", TypeRef::Any).set_valued(),
                    ],
                },
            )
            .build()
            .unwrap()
    }

    #[test]
    fn conforming_base_is_clean() {
        let ob = ObjectBase::parse(
            "phil.isa -> empl. phil.sal -> 4000.
             bob.isa -> empl. bob.sal -> 4200. bob.boss -> phil.
             untyped.whatever -> 1.",
        )
        .unwrap();
        assert_eq!(check(&schema(), &ob), vec![]);
    }

    #[test]
    fn missing_required_method() {
        let ob = ObjectBase::parse("bob.isa -> empl.").unwrap();
        let vs = check(&schema(), &ob);
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0].kind, ViolationKind::MissingRequired { .. }));
    }

    #[test]
    fn wrong_result_type_and_class_reference() {
        let ob = ObjectBase::parse(
            "bob.isa -> empl. bob.sal -> notanumber. bob.boss -> stranger.
             stranger.p -> 1.",
        )
        .unwrap();
        let vs = check(&schema(), &ob);
        // sal -> notanumber (not Num) and boss -> stranger (not an empl).
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| matches!(
            v.kind,
            ViolationKind::WrongResultType { expected: TypeRef::Num, .. }
        )));
        assert!(vs.iter().any(|v| matches!(
            v.kind,
            ViolationKind::WrongResultType { expected: TypeRef::Instance(_), .. }
        )));
    }

    #[test]
    fn multivalued_and_undeclared() {
        let ob = ObjectBase::parse(
            "bob.isa -> empl. bob.sal -> 1. bob.sal -> 2. bob.mystery -> 1.
             bob.tags -> a. bob.tags -> b.",
        )
        .unwrap();
        let vs = check(&schema(), &ob);
        assert!(vs.iter().any(|v| matches!(v.kind, ViolationKind::MultiValued { .. })));
        assert!(vs.iter().any(|v| matches!(v.kind, ViolationKind::Undeclared { .. })));
        // set-valued tags are fine: exactly the two violations above.
        assert_eq!(vs.len(), 2, "{vs:?}");
    }

    #[test]
    fn unknown_class_reported() {
        let ob = ObjectBase::parse("x.isa -> alien. x.sal -> 1.").unwrap();
        let vs = check(&schema(), &ob);
        assert!(vs.iter().any(|v| matches!(v.kind, ViolationKind::UnknownClass(_))));
    }

    #[test]
    fn arity_checked() {
        let s = Schema::builder()
            .class(
                "g",
                ClassDef {
                    parents: vec![],
                    methods: vec![
                        MethodSig::new("edge", TypeRef::Int).with_args(vec![TypeRef::Sym])
                    ],
                },
            )
            .build()
            .unwrap();
        let mut ob = ObjectBase::new();
        ob.insert(Vid::object(oid("n")), sym("isa"), ruvo_obase::Args::empty(), oid("g"));
        ob.insert(
            Vid::object(oid("n")),
            sym("edge"),
            ruvo_obase::Args::new(vec![oid("a"), oid("b")]),
            int(1),
        );
        let vs = check(&s, &ob);
        assert!(vs
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::WrongArity { got: 2, expected: 1, .. })));
        // Wrong argument type.
        let mut ob2 = ObjectBase::new();
        ob2.insert(Vid::object(oid("n")), sym("isa"), ruvo_obase::Args::empty(), oid("g"));
        ob2.insert(Vid::object(oid("n")), sym("edge"), ruvo_obase::Args::new(vec![int(7)]), int(1));
        let vs2 = check(&s, &ob2);
        assert!(vs2.iter().any(|v| matches!(v.kind, ViolationKind::WrongArgType { .. })));
    }
}
