//! # ruvo-schema — classes, conformance and schema evolution
//!
//! §2.4 of the paper: "There exists an interesting relationship between
//! our update approach and schema evolution. The way we consider
//! inserts and deletions would require changes of corresponding
//! class-definitions in a strongly typed environment, because methods
//! become undefined, respectively defined w.r.t. some objects according
//! to the type of the update. The techniques proposed in \[SZ87\] seem to
//! be a good starting point for an integration of our method into a
//! more general environment."
//!
//! The paper itself deliberately introduces no classes ("we are … not
//! interested in the interaction between updates and types"); this
//! crate supplies that more general environment as an *optional layer*
//! over the untyped object base:
//!
//! * [`Schema`] — class definitions with an isa-hierarchy (Skarra/
//!   Zdonik-style type lattice) and inherited method signatures,
//! * [`check`] — conformance of an object base against
//!   a schema (class membership via the paper's `isa ->` convention),
//! * [`diff`] — given the object bases before and after an
//!   update-program, infer the *schema delta* the program implies:
//!   which methods became defined/undefined for members of which
//!   class, which classes appeared or emptied,
//! * [`Schema::evolve`] — apply a delta, yielding the evolved schema.
//!
//! Nothing here feeds back into evaluation: the update semantics of
//! §2–§5 stay untyped, exactly as published. The layer answers the
//! DBA question the paper raises — *what did this update-program do to
//! my schema?*

mod check;
mod evolve;
mod types;

pub use check::{check, Violation, ViolationKind};
pub use evolve::{diff, SchemaDelta};
pub use types::{ClassDef, MethodSig, Schema, SchemaError, TypeRef};

/// The method that assigns class membership (`o.isa -> empl`),
/// following the paper's examples.
pub fn isa_sym() -> ruvo_term::Symbol {
    ruvo_term::sym("isa")
}
