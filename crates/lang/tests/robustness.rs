//! Robustness: the front end must return errors, never panic, on
//! arbitrary garbage — byte soup, token soup, and truncations of valid
//! programs.

use proptest::prelude::*;
use ruvo_lang::{parse_facts, Program};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: parse returns Ok or Err, never panics.
    #[test]
    fn program_parse_never_panics(src in "\\PC*") {
        let _ = Program::parse(&src);
    }

    /// ASCII soup biased toward the language's own alphabet.
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("ins".to_string()),
                Just("del".to_string()),
                Just("mod".to_string()),
                Just("not".to_string()),
                Just("<=".to_string()),
                Just("->".to_string()),
                Just(".".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("&".to_string()),
                Just("/".to_string()),
                Just("@".to_string()),
                Just(",".to_string()),
                Just("*".to_string()),
                Just("=".to_string()),
                Just("X".to_string()),
                Just("foo".to_string()),
                Just("4500".to_string()),
                Just("1.1".to_string()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = Program::parse(&src);
        let _ = parse_facts(&src);
    }

    /// Every prefix of a valid program parses or errors cleanly.
    #[test]
    fn truncations_never_panic(cut in 0usize..400) {
        let src = "rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.";
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            let _ = Program::parse(&src[..cut]);
        }
    }
}

/// A grab bag of adversarial inputs with specific failure modes.
#[test]
fn adversarial_inputs_error_cleanly() {
    let cases = [
        "",
        ".",
        "..",
        "ins",
        "ins[",
        "ins[x",
        "ins[x]",
        "ins[x].",
        "ins[x].*",
        "ins[x].m",
        "ins[x].m ->",
        "ins[x].m -> (",
        "mod[x].m -> (1",
        "mod[x].m -> (1,",
        "mod[x].m -> (1, 2",
        "ins[ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(ins(x)))))))))))))))))))))))))))))))))].m -> 1.",
        "ins[x].m -> 1 <=",
        "ins[x].m -> 1 <= &",
        "ins[x].m -> 1 <= not",
        "ins[x].m -> 1 <= 1 +",
        "ins[x].m -> 1 <= (1 + 2",
        "a.b -> c", // missing period in a program context (head must be update-term)
        "'unterminated",
        "ins[x].m -> 99999999999999999999999999999.",
        "x : : ins[x].m -> 1.",
    ];
    for src in cases {
        match Program::parse(src) {
            // The empty program is the only legitimately parsing entry.
            Ok(p) => {
                assert!(src.is_empty() && p.is_empty(), "unexpectedly parsed {src:?} -> {p:?}")
            }
            Err(e) => {
                // Error messages must be non-empty and renderable.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}
