//! Error types for lexing, parsing, validation and safety analysis.

use std::fmt;

/// Location in the source text (1-based line/column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A contiguous region of source text, from the first token of a
/// construct to (the start of) its last token, both inclusive.
///
/// Spans exist for diagnostics only — they never influence semantics,
/// and programmatically constructed AST nodes simply have none.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Position of the first token.
    pub start: Pos,
    /// Position of the last token (its first character).
    pub end: Pos,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// A lexing or parsing failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where it happened.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError { pos, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A violation of the structural restrictions of §2.1/§3 (e.g. `exists`
/// in a rule head, `del[V].*` in a body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Rule label or index description.
    pub rule: String,
    /// What was violated.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for ValidateError {}

/// The rule is unsafe (not range-restricted): some variable cannot be
/// bound by any admissible evaluation order (cf. \[Ull88\], required by
/// §2.1: "We require that rules are safe").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SafetyError {
    /// Rule label or index description.
    pub rule: String,
    /// Human-readable diagnosis, naming the offending variables.
    pub message: String,
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsafe rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for SafetyError {}

/// Any front-end failure.
#[derive(Clone, Debug, PartialEq)]
pub enum LangError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Structural validation failed.
    Validate(ValidateError),
    /// Safety analysis failed.
    Safety(SafetyError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Parse(e) => e.fmt(f),
            LangError::Validate(e) => e.fmt(f),
            LangError::Safety(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LangError {}

impl From<ParseError> for LangError {
    fn from(e: ParseError) -> Self {
        LangError::Parse(e)
    }
}

impl From<ValidateError> for LangError {
    fn from(e: ValidateError) -> Self {
        LangError::Validate(e)
    }
}

impl From<SafetyError> for LangError {
    fn from(e: SafetyError) -> Self {
        LangError::Safety(e)
    }
}
