//! Safety analysis (range restriction) and literal ordering.
//!
//! §2.1: "We require that rules are safe (cf. \[Ull88\])." Concretely:
//!
//! * every variable of the head must be bound by the body,
//! * every variable of a negated literal must be bound by positive
//!   literals (no floundering),
//! * every variable of a comparison built-in must be bound, except that
//!   `X = expr` may *bind* `X` when all of `expr`'s variables are bound
//!   (the paper's `S' = S * 1.1`).
//!
//! The analysis doubles as a query planner: it emits the order in which
//! the evaluator processes body literals ([`RulePlan`]), choosing
//! positive atoms greedily by the number of already-bound positions
//! (a classic bound-is-easier sideways-information-passing heuristic).

use ruvo_term::{ArgTerm, BaseTerm, VarId, VidVarId};

use crate::ast::{Atom, CmpOp, Rule, UpdateSpec};
use crate::error::SafetyError;

/// One step of the evaluation plan; indexes refer to `rule.body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlannedLiteral {
    /// Iterate matches of a positive version-/update-term, binding its
    /// unbound variables.
    Scan(usize),
    /// Evaluate a fully-bound literal (negated atom, or comparison with
    /// every variable bound) as a boolean test.
    Check(usize),
    /// `var = expr` with `expr` fully bound: evaluate and bind.
    Assign {
        /// Body literal index.
        lit: usize,
        /// The variable being bound.
        var: VarId,
    },
}

/// The evaluation order for one rule's body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RulePlan {
    /// Steps in execution order; every body literal appears exactly once.
    pub steps: Vec<PlannedLiteral>,
}

fn term_vars(t: ArgTerm, out: &mut Vec<VarId>) {
    if let BaseTerm::Var(v) = t {
        out.push(v);
    }
}

/// The VID variable of a body atom, if any (only version atoms can
/// carry one).
fn atom_vid_var(atom: &Atom) -> Option<VidVarId> {
    match atom {
        Atom::Version(va) => va.vid.as_vid_var(),
        _ => None,
    }
}

/// All variables of a body atom.
fn atom_vars(atom: &Atom) -> Vec<VarId> {
    let mut out = Vec::new();
    match atom {
        Atom::Version(va) => {
            if let Some(t) = va.vid.as_term() {
                term_vars(t.base, &mut out);
            }
            for &a in &va.args {
                term_vars(a, &mut out);
            }
            term_vars(va.result, &mut out);
        }
        Atom::Update(ua) => {
            term_vars(ua.target.base, &mut out);
            match &ua.spec {
                UpdateSpec::Ins { args, result, .. } | UpdateSpec::Del { args, result, .. } => {
                    for &a in args {
                        term_vars(a, &mut out);
                    }
                    term_vars(*result, &mut out);
                }
                UpdateSpec::Mod { args, from, to, .. } => {
                    for &a in args {
                        term_vars(a, &mut out);
                    }
                    term_vars(*from, &mut out);
                    term_vars(*to, &mut out);
                }
                UpdateSpec::DelAll => {}
            }
        }
        Atom::Cmp(b) => {
            b.lhs.collect_vars(&mut out);
            b.rhs.collect_vars(&mut out);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Variables of the rule head.
pub fn head_vars(rule: &Rule) -> Vec<VarId> {
    let mut out = Vec::new();
    term_vars(rule.head.target.base, &mut out);
    match &rule.head.spec {
        UpdateSpec::Ins { args, result, .. } | UpdateSpec::Del { args, result, .. } => {
            for &a in args {
                term_vars(a, &mut out);
            }
            term_vars(*result, &mut out);
        }
        UpdateSpec::Mod { args, from, to, .. } => {
            for &a in args {
                term_vars(a, &mut out);
            }
            term_vars(*from, &mut out);
            term_vars(*to, &mut out);
        }
        UpdateSpec::DelAll => {}
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn rule_name(rule: &Rule) -> String {
    rule.label.clone().unwrap_or_else(|| format!("<{}>", rule.head.target))
}

/// Selectivity score of a positive atom given the variables bound so
/// far — the scan-selection heuristic (higher = more selective).
///
/// A bound base is worth the most: it selects a single version. Among
/// argument/result positions, one bound through a *variable* is a join
/// with an already-scanned literal and usually far more selective than
/// a constant tag shared by many facts (`E.boss -> B` with `B` bound
/// names one boss's reports; `E.isa -> empl` names every employee), so
/// bound variables outscore constants. An unbound VID variable scores
/// 0 — an open scan.
fn bound_positions(atom: &Atom, bound: &[bool]) -> usize {
    const BASE: usize = 8;
    const JOIN_VAR: usize = 2;
    const CONST: usize = 1;
    let score = |t: ArgTerm| match t {
        BaseTerm::Const(_) => CONST,
        BaseTerm::Var(v) if bound[v.index()] => JOIN_VAR,
        BaseTerm::Var(_) => 0,
    };
    let base_score = |t: ArgTerm| match t {
        BaseTerm::Const(_) => BASE,
        BaseTerm::Var(v) if bound[v.index()] => BASE,
        BaseTerm::Var(_) => 0,
    };
    match atom {
        Atom::Version(va) => {
            let mut n = match va.vid.as_term() {
                Some(t) => base_score(t.base),
                None => 0,
            };
            n += va.args.iter().map(|&a| score(a)).sum::<usize>();
            n += score(va.result);
            n
        }
        Atom::Update(ua) => {
            let mut n = base_score(ua.target.base);
            match &ua.spec {
                UpdateSpec::Ins { args, result, .. } | UpdateSpec::Del { args, result, .. } => {
                    n += args.iter().map(|&a| score(a)).sum::<usize>();
                    n += score(*result);
                }
                UpdateSpec::Mod { args, from, to, .. } => {
                    n += args.iter().map(|&a| score(a)).sum::<usize>();
                    n += score(*from) + score(*to);
                }
                UpdateSpec::DelAll => {}
            }
            n
        }
        Atom::Cmp(_) => 0,
    }
}

/// Compute the evaluation plan for a rule, or report why it is unsafe.
pub fn analyze(rule: &Rule) -> Result<RulePlan, SafetyError> {
    let nvars = rule.vars.len();
    let mut bound = vec![false; nvars];
    let mut vid_bound = vec![false; rule.vid_vars.len()];
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    let mut steps = Vec::with_capacity(rule.body.len());

    let all_bound = |vars: &[VarId], bound: &[bool]| vars.iter().all(|v| bound[v.index()]);
    let vid_ok =
        |atom: &Atom, vid_bound: &[bool]| atom_vid_var(atom).is_none_or(|v| vid_bound[v.index()]);

    while !remaining.is_empty() {
        let mut chosen: Option<(usize, PlannedLiteral, Vec<VarId>, Option<VidVarId>)> = None;

        // Pass 1: anything that is a pure test or an assignment now.
        for (ri, &li) in remaining.iter().enumerate() {
            let lit = &rule.body[li];
            let vars = atom_vars(&lit.atom);
            match &lit.atom {
                Atom::Cmp(b) if lit.positive => {
                    if all_bound(&vars, &bound) {
                        chosen = Some((ri, PlannedLiteral::Check(li), vec![], None));
                        break;
                    }
                    if b.op == CmpOp::Eq {
                        // X = expr (or expr = X) with the other side bound.
                        let lhs_var = b.lhs.as_single_var();
                        let rhs_var = b.rhs.as_single_var();
                        let mut rhs_vars = Vec::new();
                        b.rhs.collect_vars(&mut rhs_vars);
                        let mut lhs_vars = Vec::new();
                        b.lhs.collect_vars(&mut lhs_vars);
                        if let Some(x) = lhs_var {
                            if !bound[x.index()] && all_bound(&rhs_vars, &bound) {
                                chosen = Some((ri, PlannedLiteral::Assign { lit: li, var: x }, vec![x], None));
                                break;
                            }
                        }
                        if let Some(x) = rhs_var {
                            if !bound[x.index()] && all_bound(&lhs_vars, &bound) {
                                chosen = Some((ri, PlannedLiteral::Assign { lit: li, var: x }, vec![x], None));
                                break;
                            }
                        }
                    }
                }
                Atom::Cmp(_)
                    // Negated built-in: needs everything bound.
                    if all_bound(&vars, &bound) => {
                        chosen = Some((ri, PlannedLiteral::Check(li), vec![], None));
                        break;
                    }
                _ if !lit.positive
                    && all_bound(&vars, &bound)
                    && vid_ok(&lit.atom, &vid_bound) => {
                        chosen = Some((ri, PlannedLiteral::Check(li), vec![], None));
                        break;
                    }
                _ => {}
            }
        }

        // Pass 2: otherwise scan the most-bound positive atom.
        if chosen.is_none() {
            let mut best: Option<(usize, usize)> = None; // (remaining-idx, score)
            for (ri, &li) in remaining.iter().enumerate() {
                let lit = &rule.body[li];
                if !lit.positive || matches!(lit.atom, Atom::Cmp(_)) {
                    continue;
                }
                let score = bound_positions(&lit.atom, &bound);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((ri, score));
                }
            }
            if let Some((ri, _)) = best {
                let li = remaining[ri];
                let vars = atom_vars(&rule.body[li].atom);
                let vid_var = atom_vid_var(&rule.body[li].atom);
                chosen = Some((ri, PlannedLiteral::Scan(li), vars, vid_var));
            }
        }

        match chosen {
            Some((ri, step, newly, newly_vid)) => {
                remaining.swap_remove(ri);
                for v in newly {
                    bound[v.index()] = true;
                }
                if let Some(v) = newly_vid {
                    vid_bound[v.index()] = true;
                }
                steps.push(step);
            }
            None => {
                // Name the variables that can never be bound.
                let mut stuck: Vec<String> = remaining
                    .iter()
                    .flat_map(|&li| atom_vars(&rule.body[li].atom))
                    .filter(|v| !bound[v.index()])
                    .map(|v| rule.vars.name(v).to_owned())
                    .collect();
                stuck.extend(
                    remaining
                        .iter()
                        .filter_map(|&li| atom_vid_var(&rule.body[li].atom))
                        .filter(|v| !vid_bound[v.index()])
                        .map(|v| format!("${}", rule.vid_vars.name(VarId(v.0)))),
                );
                return Err(SafetyError {
                    rule: rule_name(rule),
                    message: format!(
                        "cannot bind variable(s) {:?}: negated literals and built-ins require \
                         their variables to be bound by positive version- or update-terms",
                        stuck
                    ),
                });
            }
        }
    }

    // Head variables must now be bound.
    let unbound_head: Vec<String> = head_vars(rule)
        .into_iter()
        .filter(|v| !bound[v.index()])
        .map(|v| rule.vars.name(v).to_owned())
        .collect();
    if !unbound_head.is_empty() {
        return Err(SafetyError {
            rule: rule_name(rule),
            message: format!("head variable(s) {unbound_head:?} are not bound by the body"),
        });
    }

    Ok(RulePlan { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Program;

    fn plan_of(src: &str) -> RulePlan {
        Program::parse(src).unwrap().rules.pop_if_single()
    }

    trait PopSingle {
        fn pop_if_single(self) -> RulePlan;
    }
    impl PopSingle for Vec<crate::ast::Rule> {
        fn pop_if_single(mut self) -> RulePlan {
            assert_eq!(self.len(), 1);
            self.pop().unwrap().plan
        }
    }

    #[test]
    fn salary_rule_plan_orders_assign_last() {
        let plan = plan_of("mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.");
        assert_eq!(plan.steps.len(), 3);
        // The assignment must come after the scan that binds S.
        let assign_pos =
            plan.steps.iter().position(|s| matches!(s, PlannedLiteral::Assign { .. })).unwrap();
        let scan_sal =
            plan.steps.iter().position(|s| matches!(s, PlannedLiteral::Scan(1))).unwrap();
        assert!(assign_pos > scan_sal);
    }

    #[test]
    fn negation_is_scheduled_after_binding() {
        let p = Program::parse(
            "ins[mod(E)].isa -> hpe <= not del[mod(E)].isa -> empl & mod(E).isa -> empl / sal -> S & S > 4500.",
        )
        .unwrap();
        let plan = &p.rules[0].plan;
        // The negated literal (body index 0) must be evaluated after E is
        // bound by a scan.
        let neg_pos = plan.steps.iter().position(|s| *s == PlannedLiteral::Check(0)).unwrap();
        let first_scan =
            plan.steps.iter().position(|s| matches!(s, PlannedLiteral::Scan(_))).unwrap();
        assert!(neg_pos > first_scan);
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let err = Program::parse("ins[E].a -> R <= E.p -> 1.").unwrap_err();
        assert!(err.to_string().contains("R"), "got: {err}");
    }

    #[test]
    fn unbound_negated_variable_is_unsafe() {
        let err = Program::parse("ins[e].a -> 1 <= not X.p -> 1.").unwrap_err();
        assert!(err.to_string().contains("X"), "got: {err}");
    }

    #[test]
    fn circular_assignments_are_unsafe() {
        let err = Program::parse("ins[e].a -> 1 <= X = Y + 1 & Y = X + 1.").unwrap_err();
        assert!(err.to_string().to_lowercase().contains("cannot bind"), "got: {err}");
    }

    #[test]
    fn equality_scheduled_as_test_or_assign() {
        // The planner may either bind Y := X (assignment) and scan
        // E.b -> Y with Y bound, or scan both and test X = Y; both are
        // correct. It must schedule literal 2 somehow.
        let p = Program::parse("ins[E].eq -> yes <= E.a -> X & E.b -> Y & X = Y.").unwrap();
        let plan = &p.rules[0].plan;
        assert!(plan.steps.iter().any(|s| matches!(
            s,
            PlannedLiteral::Check(2) | PlannedLiteral::Assign { lit: 2, .. }
        )));
        assert_eq!(plan.steps.len(), 3);
    }

    #[test]
    fn reversed_assignment_direction() {
        // expr = X binds X too.
        let p = Program::parse("ins[E].twice -> T <= E.v -> V & V * 2 = T.").unwrap();
        let plan = &p.rules[0].plan;
        assert!(plan.steps.iter().any(|s| matches!(s, PlannedLiteral::Assign { lit: 1, .. })));
    }

    #[test]
    fn update_facts_have_empty_plans() {
        let p = Program::parse("ins[henry].isa -> empl.").unwrap();
        assert!(p.rules[0].plan.steps.is_empty());
    }

    #[test]
    fn ground_negated_literal_is_fine() {
        let p = Program::parse("ins[e].a -> 1 <= not e.p -> 1.").unwrap();
        assert_eq!(p.rules[0].plan.steps, vec![PlannedLiteral::Check(0)]);
    }

    #[test]
    fn scan_prefers_bound_base() {
        // After scanning E.boss -> B, the second atom should be scanned
        // with its base bound (B), before the unrelated open scan.
        let p = Program::parse(
            "ins[E].flag -> 1 <= E.boss -> B & B.sal -> S & Other.unrelated -> U & S > 10 & U > 0.",
        )
        .unwrap();
        let plan = &p.rules[0].plan;
        let pos_b = plan.steps.iter().position(|s| *s == PlannedLiteral::Scan(1)).unwrap();
        let pos_other = plan.steps.iter().position(|s| *s == PlannedLiteral::Scan(2)).unwrap();
        assert!(pos_b < pos_other, "plan: {:?}", plan.steps);
    }
}
