//! Abstract syntax of update-programs (§2.1 of the paper).

use ruvo_term::{ArgTerm, Bindings, Const, FastHashMap, Symbol, VarId, VidRef, VidTerm};

use crate::error::LangError;
use crate::safety::RulePlan;

/// Arithmetic operators usable in built-in expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Comparison operators of the arithmetic built-in atoms.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `=<`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Surface spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "=<",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }

    /// Evaluate the comparison on two ground OIDs (numeric coercion
    /// applies between `Int` and `Num`).
    pub fn test(self, lhs: Const, rhs: Const) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.compare(rhs);
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        }
    }
}

/// An arithmetic expression over variables and value-OIDs.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A ground OID.
    Const(Const),
    /// A rule variable.
    Var(VarId),
    /// A binary arithmetic operation.
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Evaluate under `bindings`.
    ///
    /// Returns `None` if a variable is unbound, if a non-numeric OID
    /// meets an arithmetic operator, or on division by zero — the paper
    /// leaves such ground instances undefined, and an undefined built-in
    /// simply fails to hold (fail-soft).
    pub fn eval(&self, bindings: &Bindings) -> Option<Const> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Var(v) => bindings.get(*v),
            Expr::Neg(e) => {
                let v = e.eval(bindings)?.as_f64()?;
                Const::from_f64_normalized(-v)
            }
            Expr::Binary(l, op, r) => {
                let a = l.eval(bindings)?.as_f64()?;
                let b = r.eval(bindings)?.as_f64()?;
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => {
                        if b == 0.0 {
                            return None;
                        }
                        a / b
                    }
                };
                Const::from_f64_normalized(v)
            }
        }
    }

    /// Collect the variables occurring in the expression.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Neg(e) => e.collect_vars(out),
            Expr::Binary(l, _, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// True if the expression is exactly one variable.
    pub fn as_single_var(&self) -> Option<VarId> {
        match self {
            Expr::Var(v) => Some(*v),
            _ => None,
        }
    }
}

/// A version-term atom: `V.m @ A1,...,Ak -> R` (§2.1).
///
/// The referenced version is usually a version-id-term; with the §6
/// extension it may also be a VID variable `$V` (body atoms only).
#[derive(Clone, PartialEq, Debug)]
pub struct VersionAtom {
    /// The referenced version.
    pub vid: VidRef,
    /// Method name.
    pub method: Symbol,
    /// Method arguments (object-id-terms; possibly empty).
    pub args: Vec<ArgTerm>,
    /// Method result (an object-id-term — never a version-id-term,
    /// footnote 1 of the paper).
    pub result: ArgTerm,
}

/// What an update-term does to its target version.
#[derive(Clone, PartialEq, Debug)]
pub enum UpdateSpec {
    /// `ins[V].m@args -> r`
    Ins {
        /// Method name.
        method: Symbol,
        /// Method arguments.
        args: Vec<ArgTerm>,
        /// Inserted result.
        result: ArgTerm,
    },
    /// `del[V].m@args -> r`
    Del {
        /// Method name.
        method: Symbol,
        /// Method arguments.
        args: Vec<ArgTerm>,
        /// Deleted result.
        result: ArgTerm,
    },
    /// `del[V].*` — "we write del[…]: to express the deletion of all
    /// method-applications of the respective version" (§2.3). Heads only.
    DelAll,
    /// `mod[V].m@args -> (r, r2)`
    Mod {
        /// Method name.
        method: Symbol,
        /// Method arguments.
        args: Vec<ArgTerm>,
        /// Old result.
        from: ArgTerm,
        /// New result.
        to: ArgTerm,
    },
}

impl UpdateSpec {
    /// The update kind this spec performs.
    pub fn kind(&self) -> ruvo_term::UpdateKind {
        match self {
            UpdateSpec::Ins { .. } => ruvo_term::UpdateKind::Ins,
            UpdateSpec::Del { .. } | UpdateSpec::DelAll => ruvo_term::UpdateKind::Del,
            UpdateSpec::Mod { .. } => ruvo_term::UpdateKind::Mod,
        }
    }

    /// The method updated, if the spec names one (`DelAll` does not).
    pub fn method(&self) -> Option<Symbol> {
        match self {
            UpdateSpec::Ins { method, .. }
            | UpdateSpec::Del { method, .. }
            | UpdateSpec::Mod { method, .. } => Some(*method),
            UpdateSpec::DelAll => None,
        }
    }
}

/// An update-term atom: kind, target version-id-term, and spec.
///
/// In a rule head it *initiates* an update; in a rule body it *asks*
/// whether the update has been performed (§2.4).
#[derive(Clone, PartialEq, Debug)]
pub struct UpdateAtom {
    /// The version the update is applied to (the `V` in `ins[V]`).
    pub target: VidTerm,
    /// The performed change.
    pub spec: UpdateSpec,
}

impl UpdateAtom {
    /// The version *created* by this update: `φ(target)`.
    pub fn created_term(&self) -> Result<VidTerm, ruvo_term::ChainOverflow> {
        self.target.apply(self.spec.kind())
    }
}

/// A body atom.
#[derive(Clone, PartialEq, Debug)]
pub enum Atom {
    /// A version-term.
    Version(VersionAtom),
    /// An update-term (in a body: asks whether the update occurred).
    Update(UpdateAtom),
    /// An arithmetic built-in.
    Cmp(Builtin),
}

/// An arithmetic built-in atom `lhs op rhs`.
///
/// `X = expr` doubles as an assignment when `X` is not yet bound at
/// evaluation time; the safety analysis decides per rule (see
/// [`crate::safety`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Builtin {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// A possibly negated body atom.
#[derive(Clone, PartialEq, Debug)]
pub struct Literal {
    /// False for `not A`.
    pub positive: bool,
    /// The atom.
    pub atom: Atom,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Literal {
        Literal { positive: true, atom }
    }

    /// A negated literal.
    pub fn neg(atom: Atom) -> Literal {
        Literal { positive: false, atom }
    }
}

/// The rule-local variable name table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarTable {
    names: Vec<String>,
    index: FastHashMap<String, VarId>,
}

impl VarTable {
    /// Empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Intern a variable name, returning its rule-local id.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an existing variable.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of a variable.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Number of distinct variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the rule has no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An update-rule `H <= B1 & ... & Bk .` (an update-fact when `k = 0`).
#[derive(Clone, Debug)]
pub struct Rule {
    /// The head update-term.
    pub head: UpdateAtom,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
    /// Rule-local variable names.
    pub vars: VarTable,
    /// Rule-local VID variable names (`$V`; §6 extension, body-only).
    pub vid_vars: VarTable,
    /// Optional source label (`rule3:`), used in traces and reports.
    pub label: Option<String>,
    /// The safety plan (literal evaluation order), filled in by
    /// [`crate::safety::analyze`].
    pub plan: RulePlan,
    /// Source span of the whole rule, when it was parsed from text
    /// (`None` for programmatically constructed rules). Used by the
    /// diagnostics of [`crate::analysis`].
    pub span: Option<crate::error::Span>,
}

// Spans are diagnostic metadata, not part of a rule's identity: the
// same rule pretty-printed and re-parsed must compare equal even
// though its source coordinates moved.
impl PartialEq for Rule {
    fn eq(&self, other: &Rule) -> bool {
        self.head == other.head
            && self.body == other.body
            && self.vars == other.vars
            && self.vid_vars == other.vid_vars
            && self.label == other.label
            && self.plan == other.plan
    }
}

impl Rule {
    /// Construct and safety-check a rule programmatically.
    pub fn new(
        head: UpdateAtom,
        body: Vec<Literal>,
        vars: VarTable,
        label: Option<String>,
    ) -> Result<Rule, LangError> {
        Rule::with_vid_vars(head, body, vars, VarTable::new(), label)
    }

    /// Construct a rule that uses VID variables (§6 extension).
    pub fn with_vid_vars(
        head: UpdateAtom,
        body: Vec<Literal>,
        vars: VarTable,
        vid_vars: VarTable,
        label: Option<String>,
    ) -> Result<Rule, LangError> {
        let mut rule =
            Rule { head, body, vars, vid_vars, label, plan: RulePlan::default(), span: None };
        crate::validate::validate_rule(&rule)?;
        rule.plan = crate::safety::analyze(&rule)?;
        Ok(rule)
    }

    /// A display name: the label if present, else `rule#<i>` is supplied
    /// by the program context (this returns `None` then).
    pub fn display_label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Iterate over every version-id-term occurring in the rule after
    /// the §4 rewrite (`[V] → (V)`): the head's created version plus,
    /// for each body atom, the version-id-terms it mentions.
    ///
    /// Used by the stratifier. Yields `(term, negated)` pairs for body
    /// terms; the head is *not* included, and version atoms whose vid
    /// is a VID variable are reported by
    /// [`Rule::body_vid_wildcards`] instead.
    pub fn body_vid_terms(&self) -> Vec<(VidTerm, bool)> {
        let mut out = Vec::new();
        for lit in &self.body {
            match &lit.atom {
                Atom::Version(va) => {
                    if let Some(t) = va.vid.as_term() {
                        out.push((t, !lit.positive));
                    }
                }
                Atom::Update(ua) => {
                    // §4: "we replace in the given program P each
                    // construct [V] by (V)" — an update-term atom
                    // contributes the created version's term.
                    if let Ok(t) = ua.created_term() {
                        out.push((t, !lit.positive));
                    }
                }
                Atom::Cmp(_) => {}
            }
        }
        out
    }

    /// Body version atoms whose vid is a VID variable — each entry is
    /// the literal's negation flag. A VID variable may denote *any*
    /// version, so the stratifier must treat such an atom as unifying
    /// with every head (see `stratify::edges`).
    pub fn body_vid_wildcards(&self) -> Vec<bool> {
        let mut out = Vec::new();
        for lit in &self.body {
            if let Atom::Version(va) = &lit.atom {
                if va.vid.as_vid_var().is_some() {
                    out.push(!lit.positive);
                }
            }
        }
        out
    }

    /// The head's created version-id-term (`φ(V)` for head `φ[V]...`).
    pub fn head_created_term(&self) -> Result<VidTerm, ruvo_term::ChainOverflow> {
        self.head.created_term()
    }
}

/// An update-program: a set of update-rules (§2.1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Parse, validate and safety-check a program from source text.
    pub fn parse(src: &str) -> Result<Program, LangError> {
        let tokens = crate::lexer::lex(src)?;
        let mut program = crate::parser::parse_program(&tokens)?;
        crate::validate::validate_program(&program)?;
        for rule in &mut program.rules {
            rule.plan = crate::safety::analyze(rule)?;
        }
        Ok(program)
    }

    /// The display name of rule `i` (its label, or `rule<i+1>`).
    pub fn rule_name(&self, i: usize) -> String {
        match &self.rules[i].label {
            Some(l) => l.clone(),
            None => format!("rule{}", i + 1),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, num, oid};

    #[test]
    fn cmp_op_numeric_coercion() {
        assert!(CmpOp::Eq.test(int(3), num(3.0)));
        assert!(CmpOp::Lt.test(int(2), num(2.5)));
        assert!(CmpOp::Ne.test(oid("a"), oid("b")));
        assert!(CmpOp::Ge.test(int(5), int(5)));
    }

    #[test]
    fn expr_eval_arithmetic() {
        let mut b = Bindings::new(1);
        b.bind(VarId(0), int(100));
        // S * 1.1 + 200 → 310 (normalized back to Int).
        let e = Expr::Binary(
            Box::new(Expr::Binary(
                Box::new(Expr::Var(VarId(0))),
                BinOp::Mul,
                Box::new(Expr::Const(num(1.1))),
            )),
            BinOp::Add,
            Box::new(Expr::Const(int(200))),
        );
        // 100*1.1 = 110.00000000000001 in f64; + 200 rounds back to the
        // representable 310.0, which normalizes to Int.
        assert_eq!(e.eval(&b), Some(int(310)));
    }

    #[test]
    fn expr_eval_fail_soft() {
        let b = Bindings::new(1);
        // Unbound variable.
        assert_eq!(Expr::Var(VarId(0)).eval(&b), None);
        // Symbol in arithmetic.
        let e = Expr::Binary(
            Box::new(Expr::Const(oid("henry"))),
            BinOp::Add,
            Box::new(Expr::Const(int(1))),
        );
        assert_eq!(e.eval(&b), None);
        // Division by zero.
        let z =
            Expr::Binary(Box::new(Expr::Const(int(1))), BinOp::Div, Box::new(Expr::Const(int(0))));
        assert_eq!(z.eval(&b), None);
    }

    #[test]
    fn expr_integral_results_normalize_to_int() {
        let b = Bindings::new(0);
        let e = Expr::Binary(
            Box::new(Expr::Const(int(100))),
            BinOp::Mul,
            Box::new(Expr::Const(num(1.5))),
        );
        assert_eq!(e.eval(&b), Some(int(150)));
    }

    #[test]
    fn var_table_interns() {
        let mut t = VarTable::new();
        let a = t.var("E");
        let b = t.var("S");
        let a2 = t.var("E");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "E");
        assert_eq!(t.len(), 2);
    }
}
