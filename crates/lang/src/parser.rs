//! Recursive-descent parser for update-programs.
//!
//! See the crate docs for the concrete syntax. The parser resolves the
//! two syntactic overloads:
//!
//! * `ins`/`del`/`mod` followed by `[` starts an *update-term*;
//!   followed by `(` it is a version-id-term functor inside a
//!   *version-term* (`mod(E).sal -> S`).
//! * `/` directly after a version-term's result continues a method
//!   *path* (`E.isa -> empl / sal -> S`, §2.3's shorthand); `/` inside
//!   a built-in expression is division.

use ruvo_term::{num, ArgTerm, BaseTerm, Const, Symbol, UpdateKind, VidRef, VidTerm};

use crate::ast::{
    Atom, BinOp, Builtin, CmpOp, Expr, Literal, Program, Rule, UpdateAtom, UpdateSpec, VarTable,
    VersionAtom,
};
use crate::error::{ParseError, Pos, Span};
use crate::token::{Tok, Token};

pub(crate) struct Parser<'t> {
    toks: &'t [Token],
    i: usize,
    vars: VarTable,
    vid_vars: VarTable,
    anon: u32,
    /// When true, variables are rejected (ground facts mode).
    ground_only: bool,
}

impl<'t> Parser<'t> {
    pub(crate) fn new(toks: &'t [Token]) -> Parser<'t> {
        Parser {
            toks,
            i: 0,
            vars: VarTable::new(),
            vid_vars: VarTable::new(),
            anon: 0,
            ground_only: false,
        }
    }

    pub(crate) fn ground(toks: &'t [Token]) -> Parser<'t> {
        Parser { ground_only: true, ..Parser::new(toks) }
    }

    fn pos(&self) -> Pos {
        self.toks.get(self.i).map(|t| t.pos).unwrap_or(Pos { line: u32::MAX, col: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.i + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.i).map(|t| &t.tok);
        self.i += 1;
        t
    }

    pub(crate) fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), msg)
    }

    pub(crate) fn expect_tok(&mut self, tok: Tok) -> Result<(), ParseError> {
        self.expect(tok)
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{tok}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{tok}`, found end of input"))),
        }
    }

    fn var(&mut self, name: &str) -> Result<BaseTerm, ParseError> {
        if self.ground_only {
            return Err(self.err(format!("variable `{name}` not allowed in ground facts")));
        }
        if name == "_" {
            self.anon += 1;
            let fresh = format!("_#{}", self.anon);
            return Ok(BaseTerm::Var(self.vars.var(&fresh)));
        }
        Ok(BaseTerm::Var(self.vars.var(name)))
    }

    fn method_name(&mut self) -> Result<Symbol, ParseError> {
        match self.bump().cloned() {
            Some(Tok::Ident(s)) => Ok(ruvo_term::sym(&s)),
            Some(t) => Err(ParseError::new(
                self.toks[self.i - 1].pos,
                format!("expected method name, found `{t}`"),
            )),
            None => Err(self.err("expected method name, found end of input")),
        }
    }

    /// An object-id-term: variable or constant (incl. negative numbers).
    fn arg_term(&mut self) -> Result<ArgTerm, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Var(name)) => {
                self.bump();
                self.var(&name)
            }
            Some(Tok::Ident(s)) => {
                self.bump();
                Ok(BaseTerm::Const(ruvo_term::oid(&s)))
            }
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(BaseTerm::Const(Const::Int(v)))
            }
            Some(Tok::Float(v)) => {
                self.bump();
                Ok(BaseTerm::Const(num(v)))
            }
            Some(Tok::Minus) => {
                self.bump();
                match self.bump().cloned() {
                    Some(Tok::Int(v)) => Ok(BaseTerm::Const(Const::Int(-v))),
                    Some(Tok::Float(v)) => Ok(BaseTerm::Const(num(-v))),
                    _ => Err(self.err("expected number after `-`")),
                }
            }
            Some(Tok::VidVar(name)) => Err(self.err(format!(
                "VID variable `${name}` may only appear as the version of a body \
                 version-term (never in heads, update-term targets, arguments or results)"
            ))),
            Some(t) => Err(self.err(format!("expected object-id-term, found `{t}`"))),
            None => Err(self.err("expected object-id-term, found end of input")),
        }
    }

    /// A version-id-term: update functors over an object-id-term.
    pub(crate) fn vid_term(&mut self) -> Result<VidTerm, ParseError> {
        match self.peek() {
            Some(Tok::Ins) | Some(Tok::Del) | Some(Tok::Mod) => {
                let kind = match self.bump().unwrap() {
                    Tok::Ins => UpdateKind::Ins,
                    Tok::Del => UpdateKind::Del,
                    Tok::Mod => UpdateKind::Mod,
                    _ => unreachable!(),
                };
                self.expect(Tok::LParen)?;
                let inner = self.vid_term()?;
                self.expect(Tok::RParen)?;
                inner.apply(kind).map_err(|_| self.err("version-id-term nests too deeply"))
            }
            _ => Ok(VidTerm::object(self.arg_term()?)),
        }
    }

    /// Method application suffix: `[@ args] -> result`.
    fn method_app(&mut self) -> Result<(Vec<ArgTerm>, ArgTerm), ParseError> {
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::At) {
            self.bump();
            args.push(self.arg_term()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                args.push(self.arg_term()?);
            }
        }
        self.expect(Tok::Arrow)?;
        let result = self.arg_term()?;
        Ok((args, result))
    }

    /// A version-term with optional `/` path sugar; returns one atom per
    /// path segment, all over the same version reference.
    pub(crate) fn version_path(&mut self) -> Result<Vec<VersionAtom>, ParseError> {
        let vid = match self.peek().cloned() {
            Some(Tok::VidVar(name)) => {
                if self.ground_only {
                    return Err(
                        self.err(format!("VID variable `${name}` not allowed in ground facts"))
                    );
                }
                self.bump();
                VidRef::Var(ruvo_term::VidVarId(self.vid_vars.var(&name).0))
            }
            _ => VidRef::Term(self.vid_term()?),
        };
        self.expect(Tok::DotSep)?;
        let mut out = Vec::new();
        loop {
            let method = self.method_name()?;
            let (args, result) = self.method_app()?;
            out.push(VersionAtom { vid, method, args, result });
            if self.peek() == Some(&Tok::Slash) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// An update-term: `kind [ V ] . spec`.
    fn update_term(&mut self) -> Result<UpdateAtom, ParseError> {
        let kind = match self.bump() {
            Some(Tok::Ins) => UpdateKind::Ins,
            Some(Tok::Del) => UpdateKind::Del,
            Some(Tok::Mod) => UpdateKind::Mod,
            _ => return Err(self.err("expected `ins`, `del` or `mod`")),
        };
        self.expect(Tok::LBracket)?;
        let target = self.vid_term()?;
        self.expect(Tok::RBracket)?;
        self.expect(Tok::DotSep)?;
        if self.peek() == Some(&Tok::Star) {
            self.bump();
            if kind != UpdateKind::Del {
                return Err(self.err("`.*` (delete all) is only valid on `del[...]`"));
            }
            return Ok(UpdateAtom { target, spec: UpdateSpec::DelAll });
        }
        let method = self.method_name()?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::At) {
            self.bump();
            args.push(self.arg_term()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                args.push(self.arg_term()?);
            }
        }
        self.expect(Tok::Arrow)?;
        let spec = match kind {
            UpdateKind::Mod => {
                self.expect(Tok::LParen)?;
                let from = self.arg_term()?;
                self.expect(Tok::Comma)?;
                let to = self.arg_term()?;
                self.expect(Tok::RParen)?;
                UpdateSpec::Mod { method, args, from, to }
            }
            UpdateKind::Ins => UpdateSpec::Ins { method, args, result: self.arg_term()? },
            UpdateKind::Del => UpdateSpec::Del { method, args, result: self.arg_term()? },
        };
        Ok(UpdateAtom { target, spec })
    }

    // ----- built-in expressions -------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_term()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.expr_factor()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Minus) => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.expr_factor()?)))
            }
            Some(Tok::Var(name)) => {
                self.bump();
                match self.var(&name)? {
                    BaseTerm::Var(v) => Ok(Expr::Var(v)),
                    BaseTerm::Const(_) => unreachable!(),
                }
            }
            Some(Tok::Ident(s)) => {
                self.bump();
                Ok(Expr::Const(ruvo_term::oid(&s)))
            }
            Some(Tok::Int(v)) => {
                self.bump();
                Ok(Expr::Const(Const::Int(v)))
            }
            Some(Tok::Float(v)) => {
                self.bump();
                Ok(Expr::Const(num(v)))
            }
            Some(t) => Err(self.err(format!("expected expression, found `{t}`"))),
            None => Err(self.err("expected expression, found end of input")),
        }
    }

    fn builtin(&mut self) -> Result<Builtin, ParseError> {
        let lhs = self.expr()?;
        let op = match self.bump() {
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(t) => {
                let t = t.clone();
                return Err(ParseError::new(
                    self.toks[self.i - 1].pos,
                    format!("expected comparison operator, found `{t}`"),
                ));
            }
            None => return Err(self.err("expected comparison operator, found end of input")),
        };
        let rhs = self.expr()?;
        Ok(Builtin { op, lhs, rhs })
    }

    // ----- literals, rules, programs --------------------------------

    /// One body literal, which may expand to several (path sugar).
    fn literal(&mut self) -> Result<Vec<Literal>, ParseError> {
        let positive = match self.peek() {
            Some(Tok::Not) | Some(Tok::Bang) => {
                self.bump();
                false
            }
            _ => true,
        };
        let atoms: Vec<Atom> = match (self.peek(), self.peek2()) {
            (Some(Tok::Ins) | Some(Tok::Del) | Some(Tok::Mod), Some(Tok::LBracket)) => {
                vec![Atom::Update(self.update_term()?)]
            }
            (Some(Tok::Ins) | Some(Tok::Del) | Some(Tok::Mod), Some(Tok::LParen)) => {
                self.version_path()?.into_iter().map(Atom::Version).collect()
            }
            (
                Some(Tok::Var(_)) | Some(Tok::Ident(_)) | Some(Tok::Int(_)) | Some(Tok::Float(_)),
                Some(Tok::DotSep),
            ) => self.version_path()?.into_iter().map(Atom::Version).collect(),
            (Some(Tok::VidVar(_)), Some(Tok::DotSep)) => {
                self.version_path()?.into_iter().map(Atom::Version).collect()
            }
            _ => vec![Atom::Cmp(self.builtin()?)],
        };
        if !positive && atoms.len() > 1 {
            // `not v.m1->r1/m2->r2` would be ¬(A ∧ B); the language has
            // no disjunction, so we reject rather than silently produce
            // ¬A ∧ ¬B.
            return Err(self.err("method paths cannot be negated as a whole; negate each method-application separately"));
        }
        Ok(atoms.into_iter().map(|a| Literal { positive, atom: a }).collect())
    }

    /// One rule, including the terminating period.
    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.vars = VarTable::new();
        self.vid_vars = VarTable::new();
        self.anon = 0;
        let start = self.pos();
        // Optional `label:` prefix.
        let label = match (self.peek(), self.peek2()) {
            (Some(Tok::Ident(name)), Some(Tok::Colon)) => {
                let name = name.clone();
                self.bump();
                self.bump();
                Some(name)
            }
            _ => None,
        };
        let head = self.update_term()?;
        let mut body = Vec::new();
        // `end` is the position of the terminating period.
        let end;
        match self.peek() {
            Some(Tok::Implies) => {
                self.bump();
                body.extend(self.literal()?);
                while self.peek() == Some(&Tok::Amp) {
                    self.bump();
                    body.extend(self.literal()?);
                }
                end = self.pos();
                self.expect(Tok::Period)?;
            }
            Some(Tok::Period) => {
                end = self.pos();
                self.bump();
            }
            Some(t) => return Err(self.err(format!("expected `<=` or `.`, found `{t}`"))),
            None => return Err(self.err("expected `<=` or `.`, found end of input")),
        }
        Ok(Rule {
            head,
            body,
            vars: std::mem::take(&mut self.vars),
            vid_vars: std::mem::take(&mut self.vid_vars),
            label,
            plan: crate::safety::RulePlan::default(),
            span: Some(Span { start, end }),
        })
    }
}

/// Parse a query-goal body: an optional `?-` prefix, `&`-separated
/// body literals, and the terminating period. Returns the literals and
/// the goal's variable tables (regular and VID).
pub(crate) fn parse_goal_literals(
    toks: &[Token],
) -> Result<(Vec<Literal>, VarTable, VarTable), ParseError> {
    let mut p = Parser::new(toks);
    if p.peek() == Some(&Tok::Query) {
        p.bump();
    }
    let mut body = Vec::new();
    body.extend(p.literal()?);
    while p.peek() == Some(&Tok::Amp) {
        p.bump();
        body.extend(p.literal()?);
    }
    p.expect(Tok::Period)?;
    if !p.at_end() {
        return Err(p.err("unexpected input after the goal's terminating `.`"));
    }
    Ok((body, p.vars, p.vid_vars))
}

/// Parse a whole program (without validation/safety; see
/// [`Program::parse`] for the full pipeline).
pub fn parse_program(toks: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser::new(toks);
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(Program { rules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn program(src: &str) -> Program {
        parse_program(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_salary_raise_rule() {
        let p = program("mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.");
        assert_eq!(p.rules.len(), 1);
        let r = &p.rules[0];
        assert!(matches!(r.head.spec, UpdateSpec::Mod { .. }));
        assert_eq!(r.body.len(), 3);
        assert_eq!(r.vars.len(), 3); // E, S, S2
    }

    #[test]
    fn parses_update_fact() {
        let p = program("ins[henry].isa -> empl.");
        assert_eq!(p.rules.len(), 1);
        assert!(p.rules[0].body.is_empty());
        assert!(p.rules[0].head.target.is_ground());
    }

    #[test]
    fn path_sugar_expands() {
        let p = program(
            "del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.",
        );
        let r = &p.rules[0];
        assert!(matches!(r.head.spec, UpdateSpec::DelAll));
        // 3 + 2 version atoms + 1 builtin.
        assert_eq!(r.body.len(), 6);
        // All three first atoms share the vid term mod(E).
        let vids: Vec<_> = r
            .body
            .iter()
            .filter_map(|l| match &l.atom {
                Atom::Version(v) => Some(v.vid),
                _ => None,
            })
            .collect();
        assert_eq!(vids.len(), 5);
        assert_eq!(vids[0], vids[1]);
        assert_eq!(vids[1], vids[2]);
    }

    #[test]
    fn negated_update_term_in_body() {
        let p = program(
            "ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.",
        );
        let r = &p.rules[0];
        let last = r.body.last().unwrap();
        assert!(!last.positive);
        assert!(matches!(last.atom, Atom::Update(_)));
    }

    #[test]
    fn labels_are_recorded() {
        let p = program("rule3: del[mod(E)].* <= mod(E).sal -> S & S > 10.");
        assert_eq!(p.rules[0].label.as_deref(), Some("rule3"));
    }

    #[test]
    fn nested_vid_terms() {
        let p = program(
            "ins[ins(mod(mod(peter)))].richest -> yes <= not ins(mod(mod(peter))).richest -> no.",
        );
        let r = &p.rules[0];
        assert_eq!(r.head.target.depth(), 3);
        assert_eq!(r.head.created_term().unwrap().depth(), 4);
    }

    #[test]
    fn method_arguments() {
        let p = program("ins[X].dist@a, b -> D <= X.edge@a -> B & D = 1 + 2.");
        match &p.rules[0].head.spec {
            UpdateSpec::Ins { args, .. } => assert_eq!(args.len(), 2),
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn negated_path_is_rejected() {
        let toks = lex("ins[E].a -> b <= not E.x -> 1 / y -> 2.").unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn delete_all_requires_del() {
        let toks = lex("ins[E].* <= E.a -> 1.").unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let p = program("ins[E].seen -> yes <= E.p -> _ & E.q -> _.");
        // E plus two distinct anonymous variables.
        assert_eq!(p.rules[0].vars.len(), 3);
    }

    #[test]
    fn division_inside_builtin() {
        let p = program("ins[E].half -> H <= E.sal -> S & H = S / 2.");
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn arithmetic_precedence() {
        let p = program("ins[e].v -> X <= X = 1 + 2 * 3.");
        match &p.rules[0].body[0].atom {
            Atom::Cmp(Builtin { rhs, .. }) => {
                // 1 + (2 * 3)
                match rhs {
                    Expr::Binary(_, BinOp::Add, r) => match &**r {
                        Expr::Binary(_, BinOp::Mul, _) => {}
                        other => panic!("expected Mul on the right, got {other:?}"),
                    },
                    other => panic!("expected Add at top, got {other:?}"),
                }
            }
            other => panic!("unexpected atom {other:?}"),
        }
    }

    #[test]
    fn comparison_chain_is_error() {
        let toks = lex("ins[e].v -> 1 <= 1 < 2 < 3.").unwrap();
        assert!(parse_program(&toks).is_err());
    }

    #[test]
    fn ground_mode_rejects_variables() {
        let toks = lex("henry.sal -> S.").unwrap();
        let mut p = Parser::ground(&toks);
        assert!(p.version_path().is_err());
    }
}
