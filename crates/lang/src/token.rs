//! Token stream produced by the lexer.

use std::fmt;

use crate::error::Pos;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Lower-case identifier or quoted symbol: method names, OIDs.
    Ident(String),
    /// Upper-case / underscore identifier: a rule variable.
    Var(String),
    /// `$`-prefixed identifier: a VID-quantified variable (§6
    /// extension; body-only).
    VidVar(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `ins` keyword.
    Ins,
    /// `del` keyword.
    Del,
    /// `mod` keyword.
    Mod,
    /// `not` keyword.
    Not,
    /// `.` used as method accessor (tight: `v.m`).
    DotSep,
    /// `.` used as rule/fact terminator (followed by whitespace/EOF).
    Period,
    /// `->`
    Arrow,
    /// `<=` (rule implication) — also written `:-`.
    Implies,
    /// `&`
    Amp,
    /// `@`
    At,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `/` in a method path (shorthand for conjunction) or division —
    /// disambiguated by the parser from context.
    Slash,
    /// `*` — multiplication, or delete-all after a DotSep.
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `!` (negation prefix)
    Bang,
    /// `<`
    Lt,
    /// `=<`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `:` (rule label separator)
    Colon,
    /// `?-` (query-goal prefix)
    Query,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::VidVar(s) => write!(f, "${s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Ins => write!(f, "ins"),
            Tok::Del => write!(f, "del"),
            Tok::Mod => write!(f, "mod"),
            Tok::Not => write!(f, "not"),
            Tok::DotSep => write!(f, "."),
            Tok::Period => write!(f, "."),
            Tok::Arrow => write!(f, "->"),
            Tok::Implies => write!(f, "<="),
            Tok::Amp => write!(f, "&"),
            Tok::At => write!(f, "@"),
            Tok::Comma => write!(f, ","),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Slash => write!(f, "/"),
            Tok::Star => write!(f, "*"),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Bang => write!(f, "!"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "=<"),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Colon => write!(f, ":"),
            Tok::Query => write!(f, "?-"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
