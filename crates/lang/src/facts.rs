//! Parsing of ground version-terms — the textual object-base format.
//!
//! An object base is written as one ground version-term per statement:
//!
//! ```text
//! % the paper's §2.3 example
//! phil.isa -> empl.   phil.pos -> mgr.    phil.sal -> 4000.
//! bob.isa -> empl.    bob.boss -> phil.   bob.sal -> 4200.
//! ```
//!
//! Path sugar works here too (`phil.isa -> empl / pos -> mgr.`), and
//! version-terms over non-trivial VIDs (`mod(phil).sal -> 4600.`) are
//! accepted so intermediate evaluation states can be loaded in tests.

use ruvo_term::{BaseTerm, Bindings, Const, Symbol, Vid};

use crate::error::ParseError;
use crate::parser::Parser;
use crate::token::Tok;

/// A ground method-application fact `vid.m@args -> result`.
#[derive(Clone, Debug, PartialEq)]
pub struct GroundFact {
    /// The version carrying the method-application.
    pub vid: Vid,
    /// Method name.
    pub method: Symbol,
    /// Ground arguments.
    pub args: Vec<Const>,
    /// Ground result.
    pub result: Const,
}

impl std::fmt::Display for GroundFact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.vid, crate::pretty::symbol_str(self.method))?;
        if !self.args.is_empty() {
            let args: Vec<String> =
                self.args.iter().map(|&a| crate::pretty::const_str(a)).collect();
            write!(f, " @ {}", args.join(", "))?;
        }
        write!(f, " -> {} .", crate::pretty::const_str(self.result))
    }
}

fn ground_base(t: BaseTerm) -> Const {
    match t {
        BaseTerm::Const(c) => c,
        // Parser::ground rejects variables before we get here.
        BaseTerm::Var(_) => unreachable!("ground parser produced a variable"),
    }
}

/// Parse a sequence of ground facts.
pub fn parse_facts(src: &str) -> Result<Vec<GroundFact>, ParseError> {
    let toks = crate::lexer::lex(src)?;
    let mut parser = Parser::ground(&toks);
    let empty = Bindings::new(0);
    let mut out = Vec::new();
    while !parser.at_end() {
        let atoms = parser.version_path()?;
        parser.expect_period()?;
        for va in atoms {
            let vid = va.vid.ground(&empty).expect("ground parser produced a variable");
            out.push(GroundFact {
                vid,
                method: va.method,
                args: va.args.into_iter().map(ground_base).collect(),
                result: ground_base(va.result),
            });
        }
    }
    Ok(out)
}

impl Parser<'_> {
    pub(crate) fn expect_period(&mut self) -> Result<(), ParseError> {
        self.expect_tok(Tok::Period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid, UpdateKind};

    #[test]
    fn parses_simple_facts() {
        let facts = parse_facts("henry.sal -> 250. henry.isa -> empl.").unwrap();
        assert_eq!(facts.len(), 2);
        assert_eq!(facts[0].vid, Vid::object(oid("henry")));
        assert_eq!(facts[0].method, ruvo_term::sym("sal"));
        assert_eq!(facts[0].result, int(250));
    }

    #[test]
    fn parses_path_sugar() {
        let facts = parse_facts("phil.isa -> empl / pos -> mgr / sal -> 4000.").unwrap();
        assert_eq!(facts.len(), 3);
        assert!(facts.iter().all(|f| f.vid == Vid::object(oid("phil"))));
    }

    #[test]
    fn parses_versioned_facts() {
        let facts = parse_facts("mod(phil).sal -> 4600.").unwrap();
        assert_eq!(facts[0].vid, Vid::object(oid("phil")).apply(UpdateKind::Mod).unwrap());
    }

    #[test]
    fn parses_method_arguments() {
        let facts = parse_facts("g.edge @ a, b -> 1.").unwrap();
        assert_eq!(facts[0].args, vec![oid("a"), oid("b")]);
    }

    #[test]
    fn rejects_variables() {
        assert!(parse_facts("henry.sal -> S.").is_err());
        assert!(parse_facts("E.sal -> 1.").is_err());
    }

    #[test]
    fn rejects_missing_period() {
        assert!(parse_facts("henry.sal -> 250").is_err());
    }

    #[test]
    fn display_reparses() {
        let facts = parse_facts("mod(phil).sal -> 4600. g.edge @ a, b -> 1.").unwrap();
        for f in &facts {
            let printed = f.to_string();
            let back = parse_facts(&printed).unwrap();
            assert_eq!(back.len(), 1);
            assert_eq!(&back[0], f, "printed: {printed}");
        }
    }

    #[test]
    fn comments_and_whitespace() {
        let facts = parse_facts("% header\nhenry.sal -> 250. % trailing\n").unwrap();
        assert_eq!(facts.len(), 1);
    }
}
