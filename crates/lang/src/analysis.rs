//! Structured diagnostics and front-end static analysis.
//!
//! [`crate::validate`] and [`crate::safety`] enforce the paper's hard
//! side conditions by failing fast; this module is the *advisory*
//! layer on top: every finding — hard or soft — becomes a
//! [`Diagnostic`] carrying a [`Lint`] identity, a [`Severity`], an
//! optional source [`Span`], and free-form notes, so tooling
//! (`ruvo check`, the REPL's `:check`, CI) can render rustc-style
//! reports or machine-readable JSON instead of stopping at the first
//! error.
//!
//! The front-end analyses here cover everything decidable without
//! stratification: structural violations (§2.1/§3), *all* duplicate
//! labels, duplicate (shadowing) rules, method-arity consistency, and
//! safety (range restriction). The stratification-dependent analyses —
//! write-write conflicts, commutativity, dead rules, cycle-policy
//! advisories — live in `ruvo-core`'s `check` module, which reuses
//! these types.

use std::fmt;

use ruvo_term::Symbol;

use crate::ast::{Atom, Program, UpdateSpec};
use crate::error::Span;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the program runs, but something is suspicious.
    Warning,
    /// The program is rejected (by `Program::parse`, or because the
    /// lint was denied via `DatabaseBuilder::deny_lints`).
    Error,
}

impl Severity {
    /// The lowercase label used in rendered output (`warning`/`error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The reporting level of a lint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// Suppressed entirely.
    Allow,
    /// Reported as a [`Severity::Warning`].
    Warn,
    /// Reported as a [`Severity::Error`].
    Deny,
}

impl Level {
    /// The severity a diagnostic reported at this level carries
    /// (`Allow` produces no diagnostic at all).
    pub fn severity(self) -> Severity {
        match self {
            Level::Deny => Severity::Error,
            Level::Allow | Level::Warn => Severity::Warning,
        }
    }
}

/// Every static-analysis finding the toolchain can report.
///
/// Deny-by-default lints are the paper's hard side conditions (a
/// program triggering one is rejected by [`Program::parse`]);
/// warn-by-default lints are advisory and surface through
/// `Database::prepare` warnings and `ruvo check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lint {
    /// The source text does not lex/parse.
    Syntax,
    /// Two rules carry the same label (§2.1 rules are named uniquely).
    DuplicateLabel,
    /// An update-term on the system method `exists` (§3 forbids both
    /// updating it in heads and asking update-terms about it).
    ExistsUpdate,
    /// `del[V].*` used in a rule body (§2.3: heads only).
    DelAllInBody,
    /// The rule is not range-restricted (§2.1 safety, cf. \[Ull88\]).
    UnsafeRule,
    /// A method is used with two different argument counts.
    ArityMismatch,
    /// Two same-stratum rules may write the same `(version, method)`
    /// with conflicting results — firing order becomes observable.
    WriteWriteConflict,
    /// A rule's body requires a version or update that no rule can
    /// produce; it can only fire if the initial base already holds it.
    DeadRule,
    /// Two rules have identical heads and bodies; the later one is
    /// shadowed (it can never contribute a new instance).
    DuplicateRule,
    /// The program is statically stratifiable but was compiled under
    /// `CyclePolicy::RuntimeStability` — the paranoid policy buys
    /// nothing and costs a runtime stability check.
    NeedlessDynamicPolicy,
    /// The program is rejected by strict stratification but accepted
    /// under the relaxed policy with a runtime stability check.
    DynamicPolicyRequired,
    /// Two same-stratum rules where one reads what the other writes —
    /// an engine that fires rules in order (instead of the paper's
    /// simultaneous `T_P`) could produce a different result set.
    OrderSensitiveRules,
    /// A rule whose body reads the relation chain its own head writes
    /// (e.g. §4(b) ins-recursion, or a `$V` atom); it forms a
    /// single-rule dependency component.
    SelfDependentRule,
    /// A stratum with two or more rules that split into independent
    /// dependency components — intra-stratum rule parallelism applies.
    ParallelOpportunity,
}

impl Lint {
    /// Every known lint, in registry order.
    pub const ALL: [Lint; 14] = [
        Lint::Syntax,
        Lint::DuplicateLabel,
        Lint::ExistsUpdate,
        Lint::DelAllInBody,
        Lint::UnsafeRule,
        Lint::ArityMismatch,
        Lint::WriteWriteConflict,
        Lint::DeadRule,
        Lint::DuplicateRule,
        Lint::NeedlessDynamicPolicy,
        Lint::DynamicPolicyRequired,
        Lint::OrderSensitiveRules,
        Lint::SelfDependentRule,
        Lint::ParallelOpportunity,
    ];

    /// Stable kebab-case name (the `[...]` tag in rendered output).
    pub fn name(self) -> &'static str {
        match self {
            Lint::Syntax => "syntax",
            Lint::DuplicateLabel => "duplicate-label",
            Lint::ExistsUpdate => "exists-update",
            Lint::DelAllInBody => "del-all-in-body",
            Lint::UnsafeRule => "unsafe-rule",
            Lint::ArityMismatch => "arity-mismatch",
            Lint::WriteWriteConflict => "write-write-conflict",
            Lint::DeadRule => "dead-rule",
            Lint::DuplicateRule => "duplicate-rule",
            Lint::NeedlessDynamicPolicy => "needless-dynamic-policy",
            Lint::DynamicPolicyRequired => "dynamic-policy-required",
            Lint::OrderSensitiveRules => "order-sensitive-rules",
            Lint::SelfDependentRule => "self-dependent-rule",
            Lint::ParallelOpportunity => "parallel-opportunity",
        }
    }

    /// Resolve a lint by its [`Lint::name`].
    pub fn from_name(name: &str) -> Option<Lint> {
        Lint::ALL.into_iter().find(|l| l.name() == name)
    }

    /// The default reporting level.
    pub fn default_level(self) -> Level {
        match self {
            Lint::Syntax
            | Lint::DuplicateLabel
            | Lint::ExistsUpdate
            | Lint::DelAllInBody
            | Lint::UnsafeRule
            | Lint::DynamicPolicyRequired => Level::Deny,
            Lint::ArityMismatch
            | Lint::WriteWriteConflict
            | Lint::DeadRule
            | Lint::DuplicateRule
            | Lint::NeedlessDynamicPolicy
            | Lint::OrderSensitiveRules => Level::Warn,
            // Advisory-only: truthful observations about healthy
            // programs (sanctioned recursion, parallelism notes);
            // reported through the `advisories` channel, never through
            // `Prepared::warnings()`.
            Lint::SelfDependentRule | Lint::ParallelOpportunity => Level::Allow,
        }
    }

    /// One-line description for `ruvo check --lints` style listings.
    pub fn description(self) -> &'static str {
        match self {
            Lint::Syntax => "the source text does not lex or parse",
            Lint::DuplicateLabel => "two rules carry the same label",
            Lint::ExistsUpdate => "an update-term on the system method `exists`",
            Lint::DelAllInBody => "`del[V].*` used in a rule body",
            Lint::UnsafeRule => "the rule is not range-restricted (unsafe)",
            Lint::ArityMismatch => "a method is used with differing argument counts",
            Lint::WriteWriteConflict => {
                "two same-stratum rules may write conflicting results to one (version, method)"
            }
            Lint::DeadRule => "the rule depends on versions or updates no rule produces",
            Lint::DuplicateRule => "two rules are identical; the later one is shadowed",
            Lint::NeedlessDynamicPolicy => {
                "statically stratifiable program run under the relaxed cycle policy"
            }
            Lint::DynamicPolicyRequired => {
                "program needs CyclePolicy::RuntimeStability to be accepted"
            }
            Lint::OrderSensitiveRules => {
                "a same-stratum rule reads what another writes; rule order could matter"
            }
            Lint::SelfDependentRule => "the rule reads the relation chain its own head writes",
            Lint::ParallelOpportunity => {
                "a stratum splits into independent rule components that can evaluate in parallel"
            }
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One static-analysis finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// How it is reported (derived from the lint's level).
    pub severity: Severity,
    /// Where in the source, when known.
    pub span: Option<Span>,
    /// The primary message.
    pub message: String,
    /// Secondary `= note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic at the lint's default level.
    pub fn new(lint: Lint, span: Option<Span>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            severity: lint.default_level().severity(),
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a `= note:` line (builder style).
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// True if this diagnostic rejects the program.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render rustc-style. With `source`, the offending line is quoted
    /// and underlined; with `file`, locations are `file:line:col`.
    ///
    /// ```text
    /// warning[write-write-conflict]: rules `r1` and `r2` ...
    ///  --> conflict.rv:2:1
    ///   |
    /// 2 | r2: mod[x].p -> (V, 2) <= x.p -> V.
    ///   | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
    ///   = note: ...
    /// ```
    pub fn render(&self, source: Option<&str>, file: Option<&str>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{}[{}]: {}", self.severity.label(), self.lint.name(), self.message);
        let mut w = 1; // gutter width (digits of the quoted line number)
        if let Some(span) = self.span {
            let num = span.start.line.to_string();
            w = num.len();
            match file {
                Some(f) => {
                    let _ = writeln!(out, "{:>w$}--> {f}:{}", "", span.start);
                }
                None => {
                    let _ = writeln!(out, "{:>w$}--> {}", "", span.start);
                }
            }
            let line = source.and_then(|s| s.lines().nth(span.start.line as usize - 1));
            if let Some(line) = line {
                let start = (span.start.col as usize).saturating_sub(1);
                let width = if span.end.line == span.start.line && span.end.col >= span.start.col {
                    (span.end.col - span.start.col) as usize + 1
                } else {
                    line.chars().count().saturating_sub(start)
                }
                .max(1);
                let _ = writeln!(out, "{:>w$} |", "");
                let _ = writeln!(out, "{num} | {line}");
                let _ = writeln!(out, "{:>w$} | {:start$}{}", "", "", "^".repeat(width));
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "{:>w$} = note: {note}", "");
        }
        out
    }

    /// One JSON object (hand-rolled; the build environment has no
    /// serde). Stable field order: lint, severity, span, message, notes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"lint\":\"{}\",\"severity\":\"{}\",",
            self.lint.name(),
            self.severity.label()
        );
        match self.span {
            Some(s) => {
                let _ = write!(
                    out,
                    "\"span\":{{\"line\":{},\"col\":{},\"end_line\":{},\"end_col\":{}}},",
                    s.start.line, s.start.col, s.end.line, s.end.col
                );
            }
            None => out.push_str("\"span\":null,"),
        }
        let _ = write!(out, "\"message\":\"{}\",\"notes\":[", json_escape(&self.message));
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(n));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.label(), self.lint.name(), self.message)
    }
}

/// Render a batch of diagnostics, blank-line separated.
pub fn render_all(diags: &[Diagnostic], source: Option<&str>, file: Option<&str>) -> String {
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&d.render(source, file));
    }
    out
}

/// Serialize a batch of diagnostics as a JSON array.
pub fn json_array(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-database lint-level overrides (`DatabaseBuilder::deny_lints`
/// hands these to `Database::prepare`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintLevels {
    overrides: Vec<(Lint, Level)>,
}

impl LintLevels {
    /// Defaults only.
    pub fn new() -> LintLevels {
        LintLevels::default()
    }

    /// Set a lint's level (later overrides win).
    pub fn set(&mut self, lint: Lint, level: Level) {
        self.overrides.push((lint, level));
    }

    /// The effective level of a lint.
    pub fn level(&self, lint: Lint) -> Level {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == lint)
            .map(|(_, lv)| *lv)
            .unwrap_or_else(|| lint.default_level())
    }

    /// Re-level a batch of diagnostics: `Allow` drops, `Warn`/`Deny`
    /// adjust the severity.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter_map(|mut d| match self.level(d.lint) {
                Level::Allow => None,
                lv => {
                    d.severity = lv.severity();
                    Some(d)
                }
            })
            .collect()
    }
}

fn rule_name(program: &Program, i: usize) -> String {
    program.rule_name(i)
}

/// Structural diagnostics of one rule (mirrors
/// [`crate::validate::validate_rule`], but collects instead of
/// stopping at the first violation).
fn rule_structural(program: &Program, i: usize, out: &mut Vec<Diagnostic>) {
    let rule = &program.rules[i];
    let exists = ruvo_term::sym("exists");
    let name = rule_name(program, i);
    if rule.head.spec.method() == Some(exists) {
        out.push(
            Diagnostic::new(
                Lint::ExistsUpdate,
                rule.span,
                format!("rule `{name}`: the system method `exists` cannot be updated"),
            )
            .note("§3 reserves `exists`: `o.exists -> o` is maintained by the engine"),
        );
    }
    for (j, lit) in rule.body.iter().enumerate() {
        if let Atom::Update(ua) = &lit.atom {
            if matches!(ua.spec, UpdateSpec::DelAll) {
                out.push(
                    Diagnostic::new(
                        Lint::DelAllInBody,
                        rule.span,
                        format!(
                            "rule `{name}`, body literal {}: `del[...].*` (delete all) \
                             is only meaningful in rule heads",
                            j + 1
                        ),
                    )
                    .note("ask `del[V].m -> r` about a specific deletion instead"),
                );
            }
            if ua.spec.method() == Some(exists) {
                out.push(Diagnostic::new(
                    Lint::ExistsUpdate,
                    rule.span,
                    format!(
                        "rule `{name}`, body literal {}: update-terms on the system \
                         method `exists` are not allowed",
                        j + 1
                    ),
                ));
            }
        }
    }
}

/// All duplicate-label diagnostics — one per *extra* occurrence, so a
/// label used three times yields two diagnostics.
pub fn duplicate_labels(program: &Program) -> Vec<Diagnostic> {
    let mut first: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    let mut out = Vec::new();
    for (i, rule) in program.rules.iter().enumerate() {
        let Some(label) = rule.label.as_deref() else { continue };
        match first.get(label) {
            None => {
                first.insert(label, i);
            }
            Some(&orig) => {
                let mut d = Diagnostic::new(
                    Lint::DuplicateLabel,
                    rule.span,
                    format!("duplicate rule label `{label}` (first used by rule {})", orig + 1),
                );
                if let Some(span) = program.rules[orig].span {
                    d = d.note(format!("first definition at {}", span.start));
                }
                out.push(d);
            }
        }
    }
    out
}

/// Duplicate (shadowed) rules: identical head and body up to variable
/// naming. The later rule can never contribute an instance the earlier
/// one does not.
///
/// Candidate pairs are found through a hash of the normalized rule
/// (its head + body, which already compare alpha-equivalent because
/// variable ids are assigned by first occurrence), so a clean
/// 1k-rule generated program costs 1k hashes instead of ~500k
/// pairwise comparisons; full equality is still confirmed per bucket
/// in insertion order, preserving the first-match diagnostics.
fn duplicate_rules(program: &Program, out: &mut Vec<Diagnostic>) {
    use std::hash::{Hash, Hasher};
    // `Rule` derives PartialEq but not Hash (spans must not take part
    // in equality); hash the Debug render of the semantic fields.
    let rule_key = |r: &crate::ast::Rule| {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{:?}{:?}", r.head, r.body).hash(&mut h);
        h.finish()
    };
    let mut buckets: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for j in 0..program.rules.len() {
        let rj = &program.rules[j];
        let bucket = buckets.entry(rule_key(rj)).or_default();
        for &i in bucket.iter() {
            let ri = &program.rules[i];
            if ri.head == rj.head && ri.body == rj.body {
                out.push(
                    Diagnostic::new(
                        Lint::DuplicateRule,
                        rj.span,
                        format!(
                            "rule `{}` duplicates rule `{}` (identical head and body)",
                            rule_name(program, j),
                            rule_name(program, i)
                        ),
                    )
                    .note(
                        "both rules fire on exactly the same instances; \
                         the later one is shadowed",
                    ),
                );
                break;
            }
        }
        bucket.push(j);
    }
}

/// Method-arity consistency: every use of a method (version-terms and
/// update-terms, heads and bodies) should agree on the argument count.
fn arity_mismatches(program: &Program, out: &mut Vec<Diagnostic>) {
    // method -> (arity, rule index of first sighting)
    let mut seen: std::collections::HashMap<Symbol, (usize, usize)> =
        std::collections::HashMap::new();
    let mut flagged: std::collections::HashSet<Symbol> = std::collections::HashSet::new();
    for (i, rule) in program.rules.iter().enumerate() {
        let mut uses: Vec<(Symbol, usize)> = Vec::new();
        if let Some(m) = rule.head.spec.method() {
            uses.push((m, spec_arity(&rule.head.spec)));
        }
        for lit in &rule.body {
            match &lit.atom {
                Atom::Version(va) => uses.push((va.method, va.args.len())),
                Atom::Update(ua) => {
                    if let Some(m) = ua.spec.method() {
                        uses.push((m, spec_arity(&ua.spec)));
                    }
                }
                Atom::Cmp(_) => {}
            }
        }
        for (m, arity) in uses {
            match seen.get(&m) {
                None => {
                    seen.insert(m, (arity, i));
                }
                Some(&(prev, orig)) if prev != arity && flagged.insert(m) => {
                    out.push(
                        Diagnostic::new(
                            Lint::ArityMismatch,
                            rule.span,
                            format!(
                                "method `{m}` is used with {arity} argument(s) in rule `{}` \
                                 but with {prev} argument(s) in rule `{}`",
                                rule_name(program, i),
                                rule_name(program, orig)
                            ),
                        )
                        .note(
                            "method-applications with different argument counts never match \
                             each other; this is usually a typo",
                        ),
                    );
                }
                Some(_) => {}
            }
        }
    }
}

fn spec_arity(spec: &UpdateSpec) -> usize {
    match spec {
        UpdateSpec::Ins { args, .. }
        | UpdateSpec::Del { args, .. }
        | UpdateSpec::Mod { args, .. } => args.len(),
        UpdateSpec::DelAll => 0,
    }
}

/// Every front-end diagnostic of an already-parsed program: structural
/// violations, all duplicate labels, safety failures, duplicate rules,
/// arity mismatches. Does *not* require rule plans to be filled in.
pub fn program_diagnostics(program: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..program.rules.len() {
        rule_structural(program, i, &mut out);
    }
    out.extend(duplicate_labels(program));
    for (i, rule) in program.rules.iter().enumerate() {
        if let Err(e) = crate::safety::analyze(rule) {
            out.push(
                Diagnostic::new(
                    Lint::UnsafeRule,
                    rule.span,
                    format!("unsafe rule {}: {}", rule_name(program, i), e.message),
                )
                .note("§2.1 requires rules to be safe (range-restricted, cf. [Ull88])"),
            );
        }
    }
    duplicate_rules(program, &mut out);
    arity_mismatches(program, &mut out);
    out
}

/// Parse and analyze `src`, collecting every front-end diagnostic
/// instead of stopping at the first failure.
///
/// Returns the parsed program (with safety plans filled in) when no
/// error-severity diagnostic was found; lex/parse failures surface as
/// a single [`Lint::Syntax`] diagnostic.
pub fn check_source(src: &str) -> (Option<Program>, Vec<Diagnostic>) {
    let toks = match crate::lexer::lex(src) {
        Ok(t) => t,
        Err(e) => return (None, vec![syntax_diagnostic(&e)]),
    };
    let mut program = match crate::parser::parse_program(&toks) {
        Ok(p) => p,
        Err(e) => return (None, vec![syntax_diagnostic(&e)]),
    };
    let diags = program_diagnostics(&program);
    if diags.iter().any(Diagnostic::is_error) {
        return (None, diags);
    }
    for rule in &mut program.rules {
        match crate::safety::analyze(rule) {
            Ok(plan) => rule.plan = plan,
            Err(_) => unreachable!("unsafe rules produce error diagnostics above"),
        }
    }
    (Some(program), diags)
}

fn syntax_diagnostic(e: &crate::error::ParseError) -> Diagnostic {
    let span = (e.pos.line != u32::MAX).then_some(Span { start: e.pos, end: e.pos });
    Diagnostic::new(Lint::Syntax, span, e.message.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_names_round_trip() {
        for lint in Lint::ALL {
            assert_eq!(Lint::from_name(lint.name()), Some(lint), "{lint:?}");
            assert!(!lint.description().is_empty());
        }
        assert_eq!(Lint::from_name("no-such-lint"), None);
    }

    #[test]
    fn all_duplicate_labels_reported() {
        let (_, diags) = check_source("r: ins[a].p -> 1. r: ins[b].p -> 2. r: ins[c].p -> 3.");
        let dups: Vec<_> = diags.iter().filter(|d| d.lint == Lint::DuplicateLabel).collect();
        assert_eq!(dups.len(), 2, "{diags:?}");
        assert!(dups.iter().all(|d| d.is_error()));
        assert!(dups[0].message.contains("duplicate rule label `r`"));
    }

    #[test]
    fn check_source_collects_multiple_errors() {
        // exists-update AND del-all-in-body in one pass.
        let (program, diags) = check_source(
            "ins[E].exists -> E <= E.isa -> empl.\n\
             ins[E].a -> 1 <= E.isa -> empl & del[mod(E)].* .",
        );
        assert!(program.is_none());
        assert!(diags.iter().any(|d| d.lint == Lint::ExistsUpdate));
        assert!(diags.iter().any(|d| d.lint == Lint::DelAllInBody));
    }

    #[test]
    fn arity_mismatch_warns_once_per_method() {
        let (program, diags) = check_source(
            "ins[E].likes @ a -> 1 <= E.isa -> empl.\n\
             ins[E].likes -> 2 <= E.isa -> empl.\n\
             ins[E].likes -> 3 <= E.isa -> mgr.",
        );
        assert!(program.is_some(), "warnings must not reject: {diags:?}");
        let hits: Vec<_> = diags.iter().filter(|d| d.lint == Lint::ArityMismatch).collect();
        assert_eq!(hits.len(), 1, "{diags:?}");
        assert!(hits[0].message.contains("`likes`"));
    }

    #[test]
    fn duplicate_rule_detected_up_to_variable_names() {
        let (program, diags) = check_source(
            "ins[X].p -> 1 <= X.isa -> empl.\n\
             ins[Y].p -> 1 <= Y.isa -> empl.",
        );
        assert!(program.is_some());
        assert!(diags.iter().any(|d| d.lint == Lint::DuplicateRule), "{diags:?}");
    }

    /// Regression guard for the hash-bucketed duplicate scan: a large
    /// generated program must stay far from the old all-pairs cost.
    /// 4000 clean rules plus two seeded duplicates: ~4k hashes and two
    /// in-bucket comparisons, versus ~8M pairwise comparisons before —
    /// the time budget is generous for CI but a quadratic scan in a
    /// debug build blows it by an order of magnitude.
    #[test]
    fn duplicate_scan_stays_linear_on_large_programs() {
        let n = 4000;
        let mut src = String::with_capacity(n * 48);
        for i in 0..n {
            src.push_str(&format!("r{i}: ins[X].m{i} -> {i} <= X.isa -> c{i}.\n"));
        }
        // Two exact duplicates of existing rules, alpha-renamed.
        src.push_str("dup1: ins[Y].m7 -> 7 <= Y.isa -> c7.\n");
        src.push_str("dup2: ins[Y].m42 -> 42 <= Y.isa -> c42.\n");
        let program = Program::parse(&src).unwrap();
        let started = std::time::Instant::now();
        let mut out = Vec::new();
        duplicate_rules(&program, &mut out);
        let elapsed = started.elapsed();
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.lint == Lint::DuplicateRule));
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "duplicate scan took {elapsed:?} on {n} rules — quadratic regression?"
        );
    }

    #[test]
    fn spans_point_at_the_offending_rule() {
        let (_, diags) = check_source("r: ins[a].p -> 1.\nr: ins[b].p -> 2.");
        let dup = diags.iter().find(|d| d.lint == Lint::DuplicateLabel).unwrap();
        let span = dup.span.expect("parsed rules carry spans");
        assert_eq!((span.start.line, span.start.col), (2, 1));
        assert_eq!((span.end.line, span.end.col), (2, 17));
    }

    #[test]
    fn render_quotes_and_underlines() {
        let src = "r: ins[a].p -> 1.\nr: ins[b].p -> 2.";
        let (_, diags) = check_source(src);
        let dup = diags.iter().find(|d| d.lint == Lint::DuplicateLabel).unwrap();
        let rendered = dup.render(Some(src), Some("dup.rv"));
        assert!(rendered.contains("error[duplicate-label]:"), "{rendered}");
        assert!(rendered.contains("--> dup.rv:2:1"), "{rendered}");
        assert!(rendered.contains("2 | r: ins[b].p -> 2."), "{rendered}");
        assert!(rendered.contains("^^^^^^^^^^^^^^^^^"), "{rendered}");
        assert!(rendered.contains("= note: first definition at 1:1"), "{rendered}");
    }

    #[test]
    fn json_output_is_escaped_and_stable() {
        let d = Diagnostic::new(Lint::Syntax, None, "expected `\"` \\ here").note("a\nb");
        assert_eq!(
            d.to_json(),
            "{\"lint\":\"syntax\",\"severity\":\"error\",\"span\":null,\
             \"message\":\"expected `\\\"` \\\\ here\",\"notes\":[\"a\\nb\"]}"
        );
        assert_eq!(json_array(&[]), "[]");
    }

    #[test]
    fn lint_levels_override_and_drop() {
        let mut levels = LintLevels::new();
        levels.set(Lint::DeadRule, Level::Deny);
        levels.set(Lint::DuplicateRule, Level::Allow);
        assert_eq!(levels.level(Lint::DeadRule), Level::Deny);
        assert_eq!(levels.level(Lint::ArityMismatch), Level::Warn);
        let diags = vec![
            Diagnostic::new(Lint::DeadRule, None, "a"),
            Diagnostic::new(Lint::DuplicateRule, None, "b"),
        ];
        let out = levels.apply(diags);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, Lint::DeadRule);
        assert_eq!(out[0].severity, Severity::Error);
    }

    #[test]
    fn unsafe_rule_becomes_diagnostic() {
        let (program, diags) = check_source("ins[E].p -> X <= E.isa -> empl.");
        assert!(program.is_none());
        let unsafe_d = diags.iter().find(|d| d.lint == Lint::UnsafeRule).unwrap();
        assert!(unsafe_d.message.contains("unsafe rule"), "{}", unsafe_d.message);
    }
}
