//! Query goals: `?- B1 & ... & Bk .`
//!
//! A goal is a body-only conjunction asked against the *result* of
//! evaluating a program — the demand-driven query entry point of the
//! engine. Internally a goal is a synthetic rule with a ground head
//! (never evaluated), so it inherits the full body pipeline for free:
//! validation, the safety/range-restriction analysis and its literal
//! ordering plan. Every named goal variable is therefore bound in each
//! answer.
//!
//! VID variables (`$V`) are rejected in goals: a `$V` atom reads every
//! version of every object, which defeats the demand analysis (and a
//! goal over "any version" is better asked as a program rule).

use ruvo_term::{int, sym, BaseTerm, VarId, VidTerm};

use crate::ast::{Atom, Literal, Rule, UpdateAtom, UpdateSpec, VarTable};
use crate::error::{LangError, ParseError, Pos};
use crate::pretty::literal_str;

/// The method name of the synthetic goal head. It never reaches an
/// object base — the head only exists to drive the body analyses.
pub const GOAL_HEAD_METHOD: &str = "?goal";

/// A parsed query goal: a conjunction of body literals.
#[derive(Clone, Debug, PartialEq)]
pub struct Goal {
    rule: Rule,
}

impl Goal {
    /// Parse a goal from `?- B1 & ... & Bk .` (the `?-` prefix is
    /// optional, the terminating `.` is not).
    pub fn parse(src: &str) -> Result<Goal, LangError> {
        let toks = crate::lexer::lex(src)?;
        let (body, vars, vid_vars) = crate::parser::parse_goal_literals(&toks)?;
        Goal::from_body_tables(body, vars, vid_vars)
    }

    /// Build a goal from pre-parsed literals (used by the parser and by
    /// programmatic construction).
    pub fn from_body(body: Vec<Literal>, vars: VarTable) -> Result<Goal, LangError> {
        Goal::from_body_tables(body, vars, VarTable::new())
    }

    fn from_body_tables(
        body: Vec<Literal>,
        vars: VarTable,
        vid_vars: VarTable,
    ) -> Result<Goal, LangError> {
        if !vid_vars.is_empty() {
            return Err(LangError::Parse(ParseError::new(
                Pos { line: 1, col: 1 },
                "VID variables (`$V`) are not allowed in query goals",
            )));
        }
        let head = UpdateAtom {
            target: VidTerm::object(BaseTerm::Const(ruvo_term::oid(GOAL_HEAD_METHOD))),
            spec: UpdateSpec::Ins {
                method: sym(GOAL_HEAD_METHOD),
                args: Vec::new(),
                result: BaseTerm::Const(int(1)),
            },
        };
        let rule = Rule::new(head, body, vars, None)?;
        Ok(Goal { rule })
    }

    /// The goal's literals, in source order.
    pub fn body(&self) -> &[Literal] {
        &self.rule.body
    }

    /// The goal's variable table.
    pub fn vars(&self) -> &VarTable {
        &self.rule.vars
    }

    /// The synthetic rule carrying the goal body (ground head, never
    /// evaluated). Exposes the safety plan to the matcher.
    pub fn as_rule(&self) -> &Rule {
        &self.rule
    }

    /// The named (non-anonymous) goal variables, in first-occurrence
    /// order — the columns of an answer row.
    pub fn named_vars(&self) -> Vec<VarId> {
        (0..self.rule.vars.len() as u32)
            .map(VarId)
            .filter(|&v| !self.rule.vars.name(v).starts_with("_#"))
            .collect()
    }

    /// The goal's bound/free adornment: one `b` (ground) or `f`
    /// (variable) per literal target, in source order — the classic
    /// magic-set notation, lifted to version-id-term targets.
    pub fn adornment(&self) -> String {
        let mut s = String::new();
        for lit in &self.rule.body {
            match &lit.atom {
                Atom::Version(va) => match va.vid.as_term() {
                    Some(t) => s.push(if t.base.is_ground() { 'b' } else { 'f' }),
                    None => s.push('f'),
                },
                Atom::Update(ua) => s.push(if ua.target.base.is_ground() { 'b' } else { 'f' }),
                Atom::Cmp(_) => {}
            }
        }
        s
    }
}

impl std::fmt::Display for Goal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "?-")?;
        for (i, lit) in self.rule.body.iter().enumerate() {
            if i > 0 {
                write!(f, " &")?;
            }
            write!(f, " {}", literal_str(lit, &self.rule.vars, &self.rule.vid_vars))?;
        }
        write!(f, " .")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_point_goal() {
        let g = Goal::parse("?- ins(e17).chief -> C.").unwrap();
        assert_eq!(g.body().len(), 1);
        assert_eq!(g.named_vars().len(), 1);
        assert_eq!(g.adornment(), "b");
    }

    #[test]
    fn query_prefix_is_optional() {
        let a = Goal::parse("?- x.m -> R.").unwrap();
        let b = Goal::parse("x.m -> R.").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn conjunction_negation_and_builtins() {
        let g = Goal::parse("?- X.isa -> empl & X.sal -> S & not X.pos -> mgr & S > 100.").unwrap();
        assert_eq!(g.body().len(), 4);
        assert_eq!(g.adornment(), "fff");
        // E, S named; answers carry both.
        assert_eq!(g.named_vars().len(), 2);
    }

    #[test]
    fn update_atoms_allowed_in_goals() {
        let g = Goal::parse("?- del[mod(E)].sal -> S.").unwrap();
        assert_eq!(g.adornment(), "f");
    }

    #[test]
    fn unsafe_goals_rejected() {
        // Var bound only under negation.
        assert!(Goal::parse("?- not X.p -> 1.").is_err());
        // Circular assignment.
        assert!(Goal::parse("?- X = Y + 1 & Y = X + 1.").is_err());
    }

    #[test]
    fn vid_vars_rejected() {
        let err = Goal::parse("?- $V.sal -> S.").unwrap_err();
        assert!(err.to_string().contains("VID"), "got: {err}");
    }

    #[test]
    fn missing_period_rejected() {
        assert!(Goal::parse("?- x.m -> R").is_err());
        assert!(Goal::parse("").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Goal::parse("?- x.m -> R. y.n -> 1.").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for src in [
            "?- ins(e17).chief -> C.",
            "?- X.isa -> empl & X.sal -> S & not X.pos -> mgr & S > 100.",
            "?- del[mod(E)].sal -> S & mod(phil).sal -> S2.",
            "?- x.'it''s' -> V.",
        ] {
            let g = Goal::parse(src).unwrap();
            let printed = g.to_string();
            let g2 = Goal::parse(&printed)
                .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
            assert_eq!(g, g2, "printed: {printed}");
        }
    }
}
