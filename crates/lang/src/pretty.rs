//! Pretty-printing of programs in re-parsable concrete syntax.
//!
//! `Program::parse(&program.to_string())` reproduces the same AST
//! (verified by property tests in the workspace test suite).

use std::fmt::{self, Write as _};

use ruvo_term::{BaseTerm, Const, Symbol, VarId, VidRef, VidTerm};

use crate::ast::{
    Atom, Builtin, Expr, Literal, Program, Rule, UpdateAtom, UpdateSpec, VarTable, VersionAtom,
};

/// True if a symbol needs `'...'` quoting to re-lex as one identifier.
pub fn needs_quotes(s: &str) -> bool {
    let mut chars = s.chars();
    let Some(first) = chars.next() else { return true };
    if !first.is_ascii_lowercase() {
        return true;
    }
    if !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return true;
    }
    matches!(s, "ins" | "del" | "mod" | "not")
}

/// Render a symbol, quoting when necessary. Quotes inside the symbol
/// are escaped by doubling (`it's` → `'it''s'`), mirroring the lexer,
/// so generated names — e.g. the magic-predicate names of the
/// demand-driven query rewrite — re-parse to the same symbol.
pub fn symbol_str(s: Symbol) -> String {
    let text = s.as_str();
    if needs_quotes(text) {
        format!("'{}'", text.replace('\'', "''"))
    } else {
        text.to_owned()
    }
}

/// Render a ground OID.
pub fn const_str(c: Const) -> String {
    match c {
        Const::Sym(s) => symbol_str(s),
        other => other.to_string(),
    }
}

/// Render an object-id-term with variable names from `vars`.
pub fn base_term_str(t: BaseTerm, vars: &VarTable) -> String {
    match t {
        BaseTerm::Const(c) => const_str(c),
        BaseTerm::Var(v) => {
            let name = vars.name(v);
            // Anonymous variables got fresh internal names `_#k`;
            // print them back as `_`.
            if name.starts_with("_#") {
                "_".to_owned()
            } else {
                name.to_owned()
            }
        }
    }
}

/// Render a version-id-term.
pub fn vid_term_str(t: VidTerm, vars: &VarTable) -> String {
    let mut s = String::new();
    let n = t.chain.len();
    for i in (0..n).rev() {
        let _ = write!(s, "{}(", t.chain.get(i));
    }
    s.push_str(&base_term_str(t.base, vars));
    for _ in 0..n {
        s.push(')');
    }
    s
}

fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Const(_) | Expr::Var(_) => 3,
        Expr::Neg(_) => 2,
        Expr::Binary(_, op, _) => match op {
            crate::ast::BinOp::Mul | crate::ast::BinOp::Div => 2,
            crate::ast::BinOp::Add | crate::ast::BinOp::Sub => 1,
        },
    }
}

/// Render an expression with minimal parentheses.
pub fn expr_str(e: &Expr, vars: &VarTable) -> String {
    fn go(e: &Expr, vars: &VarTable, out: &mut String) {
        match e {
            Expr::Const(c) => out.push_str(&const_str(*c)),
            Expr::Var(v) => out.push_str(&base_term_str(BaseTerm::Var(*v), vars)),
            Expr::Neg(inner) => {
                out.push('-');
                if expr_prec(inner) < 3 {
                    out.push('(');
                    go(inner, vars, out);
                    out.push(')');
                } else {
                    go(inner, vars, out);
                }
            }
            Expr::Binary(l, op, r) => {
                let prec = expr_prec(e);
                if expr_prec(l) < prec {
                    out.push('(');
                    go(l, vars, out);
                    out.push(')');
                } else {
                    go(l, vars, out);
                }
                let _ = write!(out, " {} ", op.symbol());
                // Right child needs parens at equal precedence to keep
                // left associativity on re-parse (a - (b - c)).
                if expr_prec(r) <= prec {
                    out.push('(');
                    go(r, vars, out);
                    out.push(')');
                } else {
                    go(r, vars, out);
                }
            }
        }
    }
    let mut s = String::new();
    go(e, vars, &mut s);
    s
}

fn method_app_str(method: Symbol, args: &[BaseTerm], vars: &VarTable) -> String {
    let mut s = symbol_str(method);
    if !args.is_empty() {
        s.push_str(" @ ");
        let rendered: Vec<String> = args.iter().map(|&a| base_term_str(a, vars)).collect();
        s.push_str(&rendered.join(", "));
    }
    s
}

/// Render a version reference: a version-id-term or a VID variable.
pub fn vid_ref_str(t: VidRef, vars: &VarTable, vid_vars: &VarTable) -> String {
    match t {
        VidRef::Term(t) => vid_term_str(t, vars),
        VidRef::Var(v) => format!("${}", vid_vars.name(VarId(v.0))),
    }
}

/// Render a version-term atom.
pub fn version_atom_str(va: &VersionAtom, vars: &VarTable, vid_vars: &VarTable) -> String {
    format!(
        "{}.{} -> {}",
        vid_ref_str(va.vid, vars, vid_vars),
        method_app_str(va.method, &va.args, vars),
        base_term_str(va.result, vars)
    )
}

/// Render an update-term atom.
pub fn update_atom_str(ua: &UpdateAtom, vars: &VarTable) -> String {
    let kind = ua.spec.kind();
    let target = vid_term_str(ua.target, vars);
    match &ua.spec {
        UpdateSpec::DelAll => format!("del[{target}].*"),
        UpdateSpec::Ins { method, args, result } | UpdateSpec::Del { method, args, result } => {
            format!(
                "{}[{}].{} -> {}",
                kind.keyword(),
                target,
                method_app_str(*method, args, vars),
                base_term_str(*result, vars)
            )
        }
        UpdateSpec::Mod { method, args, from, to } => format!(
            "mod[{}].{} -> ({}, {})",
            target,
            method_app_str(*method, args, vars),
            base_term_str(*from, vars),
            base_term_str(*to, vars)
        ),
    }
}

/// Render a built-in atom.
pub fn builtin_str(b: &Builtin, vars: &VarTable) -> String {
    format!("{} {} {}", expr_str(&b.lhs, vars), b.op.symbol(), expr_str(&b.rhs, vars))
}

/// Render any body atom.
pub fn atom_str(atom: &Atom, vars: &VarTable, vid_vars: &VarTable) -> String {
    match atom {
        Atom::Version(va) => version_atom_str(va, vars, vid_vars),
        Atom::Update(ua) => update_atom_str(ua, vars),
        Atom::Cmp(b) => builtin_str(b, vars),
    }
}

/// Render a literal.
pub fn literal_str(lit: &Literal, vars: &VarTable, vid_vars: &VarTable) -> String {
    if lit.positive {
        atom_str(&lit.atom, vars, vid_vars)
    } else {
        format!("not {}", atom_str(&lit.atom, vars, vid_vars))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            write!(f, "{label}: ")?;
        }
        write!(f, "{}", update_atom_str(&self.head, &self.vars))?;
        if !self.body.is_empty() {
            write!(f, " <=")?;
            for (i, lit) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, " &")?;
                }
                write!(f, " {}", literal_str(lit, &self.vars, &self.vid_vars))?;
            }
        }
        write!(f, " .")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Program;

    fn roundtrip(src: &str) {
        let p1 = Program::parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = Program::parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
        assert_eq!(p1, p2, "printed: {printed}");
    }

    #[test]
    fn roundtrip_salary_rule() {
        roundtrip("mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.");
    }

    #[test]
    fn roundtrip_enterprise_program() {
        roundtrip(
            "rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
             rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
             rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
             rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.",
        );
    }

    #[test]
    fn roundtrip_facts_and_args() {
        roundtrip("ins[henry].likes @ mary, 3 -> much.");
        roundtrip("ins[x].v -> -5.");
    }

    #[test]
    fn roundtrip_nested_expressions() {
        roundtrip("ins[e].v -> X <= X = (1 + 2) * 3 - 4 / 5.");
        roundtrip("ins[e].v -> X <= X = 1 - (2 - 3).");
    }

    #[test]
    fn roundtrip_quoted_symbols() {
        roundtrip("ins[x].'weird name' -> 'Strange Value'.");
        // Reserved word as a symbol must be quoted.
        roundtrip("ins[x].kind -> 'mod'.");
    }

    #[test]
    fn roundtrip_symbols_containing_quotes() {
        // Regression: symbols with embedded quotes used to print as
        // `'it's'`, which does not re-lex. The printer doubles them now.
        roundtrip("ins[x].'it''s' -> 'a ''quoted'' value'.");
        roundtrip("ins['?d[x]''s'].m -> 1.");
    }

    #[test]
    fn generated_symbol_roundtrip() {
        use ruvo_term::sym;
        // Any generated symbol (magic predicates include `?`, brackets
        // and quotes) must survive print → lex.
        for name in ["?demand", "?demand[m#2]", "odd'name", "'", "a b", "mod"] {
            let s = sym(name);
            let printed = crate::pretty::symbol_str(s);
            let toks = crate::lexer::lex(&printed).unwrap();
            assert_eq!(toks.len(), 1, "{printed:?}");
            match &toks[0].tok {
                crate::token::Tok::Ident(t) => assert_eq!(t, name, "printed: {printed:?}"),
                other => panic!("expected Ident, got {other:?}"),
            }
        }
    }

    #[test]
    fn roundtrip_anonymous_vars() {
        roundtrip("ins[E].seen -> yes <= E.p -> _ & E.q -> _.");
    }

    #[test]
    fn precedence_left_associativity_preserved() {
        let p = Program::parse("ins[e].v -> X <= X = 10 - 3 - 2.").unwrap();
        let printed = p.to_string();
        let p2 = Program::parse(&printed).unwrap();
        assert_eq!(p, p2, "printed: {printed}");
    }
}
