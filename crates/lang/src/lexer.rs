//! Hand-written lexer for the update language.
//!
//! The only delicate decision is the two readings of `.`:
//! a dot *immediately* followed by an identifier character or `*` is a
//! method accessor ([`Tok::DotSep`]); any other dot is a rule/fact
//! terminator ([`Tok::Period`]). Numbers consume a dot only when a digit
//! follows (`1.1` is a float, `250.` is `250` + terminator).

use crate::error::{ParseError, Pos};
use crate::token::{Tok, Token};

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), i: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.i]).into_owned()
    }

    fn quoted(&mut self, pos: Pos) -> Result<String, ParseError> {
        self.bump(); // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.peek() {
                Some(b'\'') => {
                    self.bump();
                    // A doubled quote is an escaped quote (SQL style):
                    // `'it''s'` lexes as the symbol `it's`.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        bytes.push(b'\'');
                    } else {
                        return Ok(String::from_utf8_lossy(&bytes).into_owned());
                    }
                }
                Some(b'\n') | None => {
                    return Err(ParseError::new(pos, "unterminated quoted symbol"));
                }
                Some(c) => {
                    bytes.push(c);
                    self.bump();
                }
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, ParseError> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump(); // '.'
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && self.peek2().is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_float = true;
            self.bump(); // e
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.i])
            .map_err(|_| ParseError::new(pos, "invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| ParseError::new(pos, format!("invalid float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| ParseError::new(pos, format!("invalid integer literal: {e}")))
        }
    }
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        lx.skip_trivia();
        let pos = lx.pos();
        let Some(c) = lx.peek() else { break };
        let tok = match c {
            b'a'..=b'z' => {
                let word = lx.ident();
                match word.as_str() {
                    "ins" => Tok::Ins,
                    "del" => Tok::Del,
                    "mod" => Tok::Mod,
                    "not" => Tok::Not,
                    _ => Tok::Ident(word),
                }
            }
            b'A'..=b'Z' | b'_' => Tok::Var(lx.ident()),
            b'$' => {
                lx.bump();
                if !lx.peek().is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                    return Err(ParseError::new(pos, "expected a VID variable name after `$`"));
                }
                Tok::VidVar(lx.ident())
            }
            b'\'' => Tok::Ident(lx.quoted(pos)?),
            b'0'..=b'9' => lx.number(pos)?,
            b'.' => {
                lx.bump();
                // Tight dot = accessor; anything else = terminator.
                match lx.peek() {
                    Some(ch)
                        if ch.is_ascii_alphabetic() || ch == b'_' || ch == b'*' || ch == b'\'' =>
                    {
                        Tok::DotSep
                    }
                    _ => Tok::Period,
                }
            }
            b'-' => {
                lx.bump();
                if lx.peek() == Some(b'>') {
                    lx.bump();
                    Tok::Arrow
                } else {
                    Tok::Minus
                }
            }
            b'<' => {
                lx.bump();
                match lx.peek() {
                    Some(b'=') => {
                        lx.bump();
                        Tok::Implies
                    }
                    Some(b'>') => {
                        lx.bump();
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                }
            }
            b'=' => {
                lx.bump();
                match lx.peek() {
                    Some(b'<') => {
                        lx.bump();
                        Tok::Le
                    }
                    _ => Tok::Eq,
                }
            }
            b'>' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'!' => {
                lx.bump();
                if lx.peek() == Some(b'=') {
                    lx.bump();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            b':' => {
                lx.bump();
                if lx.peek() == Some(b'-') {
                    lx.bump();
                    Tok::Implies
                } else {
                    Tok::Colon
                }
            }
            b'&' => {
                lx.bump();
                Tok::Amp
            }
            b'@' => {
                lx.bump();
                Tok::At
            }
            b',' => {
                lx.bump();
                Tok::Comma
            }
            b'(' => {
                lx.bump();
                Tok::LParen
            }
            b')' => {
                lx.bump();
                Tok::RParen
            }
            b'[' => {
                lx.bump();
                Tok::LBracket
            }
            b']' => {
                lx.bump();
                Tok::RBracket
            }
            b'/' => {
                lx.bump();
                Tok::Slash
            }
            b'*' => {
                lx.bump();
                Tok::Star
            }
            b'+' => {
                lx.bump();
                Tok::Plus
            }
            b'?' => {
                lx.bump();
                if lx.peek() == Some(b'-') {
                    lx.bump();
                    Tok::Query
                } else {
                    return Err(ParseError::new(
                        pos,
                        "unexpected character '?' (did you mean `?-`?)",
                    ));
                }
            }
            other => {
                return Err(ParseError::new(
                    pos,
                    format!("unexpected character {:?}", other as char),
                ));
            }
        };
        out.push(Token { tok, pos });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn method_access_vs_terminator() {
        assert_eq!(
            toks("henry.sal -> 250."),
            vec![
                Tok::Ident("henry".into()),
                Tok::DotSep,
                Tok::Ident("sal".into()),
                Tok::Arrow,
                Tok::Int(250),
                Tok::Period,
            ]
        );
    }

    #[test]
    fn floats_and_terminators() {
        assert_eq!(
            toks("S2 = S * 1.1."),
            vec![
                Tok::Var("S2".into()),
                Tok::Eq,
                Tok::Var("S".into()),
                Tok::Star,
                Tok::Float(1.1),
                Tok::Period,
            ]
        );
        // `250.` is int + terminator, not a float.
        assert_eq!(toks("250."), vec![Tok::Int(250), Tok::Period]);
        assert_eq!(toks("2.5e3."), vec![Tok::Float(2500.0), Tok::Period]);
    }

    #[test]
    fn keywords_and_update_terms() {
        assert_eq!(
            toks("mod[E].sal"),
            vec![
                Tok::Mod,
                Tok::LBracket,
                Tok::Var("E".into()),
                Tok::RBracket,
                Tok::DotSep,
                Tok::Ident("sal".into()),
            ]
        );
    }

    #[test]
    fn delete_all_star() {
        assert_eq!(
            toks("del[mod(E)].*"),
            vec![
                Tok::Del,
                Tok::LBracket,
                Tok::Mod,
                Tok::LParen,
                Tok::Var("E".into()),
                Tok::RParen,
                Tok::RBracket,
                Tok::DotSep,
                Tok::Star,
            ]
        );
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(
            toks("< =< > >= = != <>"),
            vec![Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Ne, Tok::Ne]
        );
    }

    #[test]
    fn implies_both_spellings() {
        assert_eq!(toks("<= :-"), vec![Tok::Implies, Tok::Implies]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a % comment to end of line\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn quoted_symbols() {
        assert_eq!(
            toks("'Hello world'.m"),
            vec![Tok::Ident("Hello world".into()), Tok::DotSep, Tok::Ident("m".into())]
        );
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn negation_tokens() {
        assert_eq!(toks("not !x !="), vec![Tok::Not, Tok::Bang, Tok::Ident("x".into()), Tok::Ne,]);
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("a $ b").is_err());
    }

    #[test]
    fn query_prefix_token() {
        assert_eq!(
            toks("?- x.m -> R"),
            vec![
                Tok::Query,
                Tok::Ident("x".into()),
                Tok::DotSep,
                Tok::Ident("m".into()),
                Tok::Arrow,
                Tok::Var("R".into()),
            ]
        );
        // A lone `?` is still a lex error (the syntax-lint appendix
        // example `ins[X].p -> ??? .` depends on this).
        assert!(lex("ins[X].p -> ??? .").is_err());
        assert!(lex("?").is_err());
    }

    #[test]
    fn doubled_quote_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Ident("it's".into())]);
        assert_eq!(toks("''''"), vec![Tok::Ident("'".into())]);
        // Empty quoted symbol stays empty.
        assert_eq!(toks("''"), vec![Tok::Ident(String::new())]);
        assert!(lex("'odd''").is_err());
    }

    #[test]
    fn dot_before_quoted_is_accessor() {
        assert_eq!(
            toks("x.'weird method'"),
            vec![Tok::Ident("x".into()), Tok::DotSep, Tok::Ident("weird method".into())]
        );
    }
}
