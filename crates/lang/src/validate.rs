//! Structural validation of programs (§2.1/§3 side conditions).

use ruvo_term::sym;

use crate::ast::{Atom, Program, Rule, UpdateSpec};
use crate::error::ValidateError;

fn rule_name(rule: &Rule, idx: Option<usize>) -> String {
    match (&rule.label, idx) {
        (Some(l), _) => l.clone(),
        (None, Some(i)) => format!("rule{}", i + 1),
        (None, None) => format!("<{}>", rule.head.target),
    }
}

/// Validate a single rule.
pub fn validate_rule(rule: &Rule) -> Result<(), ValidateError> {
    validate_rule_at(rule, None)
}

fn validate_rule_at(rule: &Rule, idx: Option<usize>) -> Result<(), ValidateError> {
    let exists = sym("exists");
    // §3: "we require, that for all programs P, this 'system-method'
    // exists does not occur in the head of any rule".
    if rule.head.spec.method() == Some(exists) {
        return Err(ValidateError {
            rule: rule_name(rule, idx),
            message: "the system method `exists` cannot be updated".into(),
        });
    }
    for (i, lit) in rule.body.iter().enumerate() {
        if let Atom::Update(ua) = &lit.atom {
            if matches!(ua.spec, UpdateSpec::DelAll) {
                return Err(ValidateError {
                    rule: rule_name(rule, idx),
                    message: format!(
                        "body literal {}: `del[...].*` (delete all) is only meaningful in rule heads",
                        i + 1
                    ),
                });
            }
            if ua.spec.method() == Some(exists) {
                return Err(ValidateError {
                    rule: rule_name(rule, idx),
                    message: format!(
                        "body literal {}: update-terms on the system method `exists` are not allowed",
                        i + 1
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Validate a whole program: every rule, plus label uniqueness.
///
/// Label duplicates are gathered through [`crate::analysis`], which
/// reports *every* duplicate occurrence; the error summarizes them all
/// instead of stopping at the first (tooling that wants the individual
/// findings uses [`crate::analysis::duplicate_labels`] directly).
pub fn validate_program(program: &Program) -> Result<(), ValidateError> {
    for (i, rule) in program.rules.iter().enumerate() {
        validate_rule_at(rule, Some(i))?;
    }
    let dups = crate::analysis::duplicate_labels(program);
    if let Some(first) = dups.first() {
        let mut message = String::from("duplicate rule label");
        if dups.len() > 1 {
            message = format!("{} duplicate rule labels", dups.len());
        }
        for d in &dups {
            message.push_str("; ");
            message.push_str(&d.message);
        }
        // The offending label is quoted inside the first diagnostic's
        // message; recover it for the error's `rule` field.
        let label = first.message.split('`').nth(1).unwrap_or("<unlabeled>").to_owned();
        return Err(ValidateError { rule: label, message });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Program;

    #[test]
    fn exists_in_head_rejected() {
        let err = Program::parse("ins[E].exists -> E <= E.isa -> empl.").unwrap_err();
        assert!(err.to_string().contains("exists"), "got: {err}");
    }

    #[test]
    fn mod_exists_in_head_rejected() {
        let err = Program::parse("mod[E].exists -> (E, E) <= E.isa -> empl.").unwrap_err();
        assert!(err.to_string().contains("exists"), "got: {err}");
    }

    #[test]
    fn del_all_in_body_rejected() {
        // `del[mod(E)].*` cannot be asked as a body condition.
        let err = Program::parse("ins[E].a -> 1 <= E.isa -> empl & del[mod(E)].* .").unwrap_err();
        assert!(err.to_string().contains("delete all"), "got: {err}");
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = Program::parse("r: ins[a].p -> 1. r: ins[b].p -> 2.").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "got: {err}");
    }

    #[test]
    fn all_duplicate_labels_reported_in_one_error() {
        let err = Program::parse(
            "r: ins[a].p -> 1. r: ins[b].p -> 2. s: ins[c].p -> 3. s: ins[d].p -> 4.",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2 duplicate rule labels"), "got: {msg}");
        assert!(msg.contains("`r`") && msg.contains("`s`"), "got: {msg}");
    }

    #[test]
    fn exists_in_body_version_term_allowed() {
        // Asking about existence is fine; updating it is not.
        assert!(Program::parse("ins[E].seen -> 1 <= E.exists -> E.").is_ok());
    }

    #[test]
    fn exists_update_term_in_body_rejected() {
        let err = Program::parse("ins[E].a -> 1 <= E.isa -> x & ins[E].exists -> E.").unwrap_err();
        assert!(err.to_string().contains("exists"), "got: {err}");
    }
}
