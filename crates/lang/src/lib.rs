//! # ruvo-lang — syntax of the VLDB'92 update language
//!
//! Lexer, parser, AST, pretty-printer and safety analysis for
//! update-programs as defined in §2.1 of Kramer/Lausen/Saake (VLDB'92).
//!
//! ## Concrete syntax
//!
//! The paper's mathematical notation maps to ASCII as follows:
//!
//! | paper | ruvo |
//! |---|---|
//! | `v:m@a1,…,ak → r` | `v.m @ a1, ..., ak -> r` |
//! | `ins[V]:m→r` | `ins[V].m -> r` |
//! | `del[V]:m→r` | `del[V].m -> r` |
//! | `mod[V]:m→(r,r')` | `mod[V].m -> (r, r2)` |
//! | `del[V]:` (delete all) | `del[V].*` |
//! | `H ⇐ B1 ∧ … ∧ Bk` | `H <= B1 & ... & Bk .` |
//! | `¬A` | `not A` or `!A` |
//! | path sugar `v:m1→r1/m2→r2` | `v.m1 -> r1 / m2 -> r2` |
//! | `≤`, `≥`, `≠` | `=<`, `>=`, `!=` |
//!
//! Rules end with `.` followed by whitespace or end of input (so method
//! access `v.m` — no space — is unambiguous). Comments run from `%` to
//! end of line. An optional label (`rule3: del[...] <= ... .`) names a
//! rule for traces and stratification reports.
//!
//! Variables start with an upper-case letter or `_`; symbolic OIDs and
//! method names start with a lower-case letter (or are `'quoted'`).
//! `ins`, `del`, `mod` and `not` are reserved words.
//!
//! ## VID variables (§6 extension)
//!
//! `$V` is a *VID-quantified* variable: it ranges over the ground
//! version identities present in the interpretation, not over OIDs —
//! `$V.sal -> S` reads the `sal` method of *any* version of any
//! object, at any stage of its update process. To preserve the paper's
//! termination argument, `$V` may appear **only as the version of a
//! body version-term**: never in rule heads, update-term targets,
//! arguments or results. Negated `$V`-atoms require `$V` to be bound
//! by a positive atom first (safety).
//!
//! ## Entry points
//!
//! * [`Program::parse`] — parse, validate and safety-check a program,
//! * [`parse_facts`] — parse ground version-terms (object-base text),
//! * [`safety::analyze`] — the range-restriction / literal-ordering
//!   analysis (run automatically by [`Program::parse`]).

pub mod analysis;
pub mod ast;
pub mod error;
pub mod facts;
pub mod goal;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod safety;
pub mod token;
pub mod validate;

pub use analysis::{Diagnostic, Level, Lint, LintLevels, Severity};
pub use ast::{
    Atom, BinOp, Builtin, CmpOp, Expr, Literal, Program, Rule, UpdateAtom, UpdateSpec, VarTable,
    VersionAtom,
};
pub use error::{LangError, ParseError, Pos, SafetyError, Span, ValidateError};
pub use facts::{parse_facts, GroundFact};
pub use goal::Goal;
pub use safety::{analyze, PlannedLiteral, RulePlan};
