//! The concurrent serving layer: a [`ServingDatabase`] is a cloneable,
//! `Send + Sync` handle over one evolving object base, built for the
//! many-readers / few-writers shape of a served workload.
//!
//! [`Database`] is a single-owner `&mut self` type: sound, but no
//! reader can run while a writer commits. The paper's §2.2 semantics —
//! an update-program maps an (old) object-base to a (new) object-base
//! — combined with the copy-on-write store makes the concurrent
//! version almost free, because a committed base is an immutable value
//! behind an `Arc`:
//!
//! * **Reads never wait on a committing writer.** The committed head
//!   lives in an epoch-stamped slot ring (`HeadCell`); publishing a
//!   commit is one slot store plus one atomic index store, and
//!   [`ServingDatabase::snapshot`] / [`ServingDatabase::current`] just
//!   load the active slot and bump an `Arc`. A snapshot stays valid
//!   and bit-identical forever, however many commits land after it.
//! * **Writes are serialized through one writer with group commit.**
//!   [`ServingDatabase::apply`] enqueues the prepared program and
//!   joins the writer queue; whichever thread holds the writer lock
//!   drains the whole queue as one batch — each program its own
//!   all-or-nothing transaction, reusing the session's cached
//!   prepared working copy ([`crate::Session::prepared_work`]) — and
//!   publishes the new head **once** per batch.
//! * **Multi-step atomicity is unchanged.**
//!   [`ServingDatabase::transact`] runs the existing
//!   [`Database::transact`] savepoint machinery under the writer lock
//!   (which is **not reentrant** — write through the closure's
//!   handle, never through the database, or the thread deadlocks;
//!   see the method's deadlock note).
//!
//! * **Durability rides the same batch boundary.** Serving a database
//!   opened with [`Database::open_dir`] (or upgraded via
//!   [`Database::into_serving_durable`]), a drained batch is appended
//!   and fsynced to the write-ahead log as **one** record — inside
//!   [`crate::Session::apply_compiled_batch`], before the head is
//!   published and before any ticket is acknowledged. Group commit
//!   thus amortizes the fsync across every writer in the batch, and a
//!   crash can never lose an acknowledged commit (see
//!   [`crate::store`]).
//!
//! A thread that panics while holding the writer lock poisons it; the
//! published head is unaffected (it only moves at batch end), reads
//! keep serving, and later writes fail with
//! [`ErrorKind::Poisoned`](crate::ErrorKind::Poisoned) instead of
//! panicking.
//!
//! ```
//! use std::thread;
//! use ruvo_core::ServingDatabase;
//! use ruvo_term::{int, oid};
//!
//! let db = ServingDatabase::open_src(
//!     "henry.isa -> empl. henry.sal -> 250.",
//! ).unwrap();
//! let raise = db.prepare(
//!     "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
//! ).unwrap();
//!
//! let reader = db.clone();                   // Send + Sync handle
//! thread::scope(|s| {
//!     s.spawn(|| {
//!         // Any snapshot is some committed state: 250 or 275.
//!         let sal = reader.snapshot().lookup1(oid("henry"), "sal");
//!         assert!(sal == vec![int(250)] || sal == vec![int(275)]);
//!     });
//!     s.spawn(|| { db.apply(&raise).unwrap(); });
//! });
//! assert_eq!(db.snapshot().lookup1(oid("henry"), "sal"), vec![int(275)]);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use ruvo_obase::{ObjectBase, Snapshot};

use crate::database::{Database, Error, Prepared, Transaction};
use crate::engine::EngineConfig;
use crate::store::{encode_checkpoint_plan, CheckpointMode, CheckpointOutcome};

/// Slots in the head ring. The single writer reuses a slot only every
/// `HEAD_SLOTS` commits, so a reader cloning the `Arc` out of the
/// active slot is never contended by the publish that is happening
/// *now* — at worst by one eight-commits-younger writer, for the
/// nanoseconds the clone takes.
const HEAD_SLOTS: usize = 8;

/// The atomically swapped head: an epoch-indexed ring of shared
/// object-base handles.
///
/// Readers load the active index (one `Acquire` load) and clone the
/// `Arc` in that slot; the slot lock is only ever contended when the
/// writer laps the ring, so reads never wait on the commit being
/// published. Publication (writer-only, externally serialized) writes
/// the *next* slot and then moves the index with one `Release` store.
struct HeadCell {
    slots: [RwLock<Arc<ObjectBase>>; HEAD_SLOTS],
    /// Monotone publish count; `active % HEAD_SLOTS` is the live slot.
    active: AtomicUsize,
}

impl HeadCell {
    fn new(head: Arc<ObjectBase>) -> HeadCell {
        HeadCell {
            slots: std::array::from_fn(|_| RwLock::new(Arc::clone(&head))),
            active: AtomicUsize::new(0),
        }
    }

    /// The current head. Lock-free in the steady state: one atomic
    /// load plus an uncontended read guard around an `Arc` clone.
    /// A load racing a publish may return the head from just before
    /// the swap — ordinary snapshot semantics; every returned value is
    /// some fully committed, published state.
    fn load(&self) -> Arc<ObjectBase> {
        let n = self.active.load(Ordering::Acquire);
        // A poisoned slot still holds a fully published Arc (the store
        // is a single assignment), so the value is always usable.
        let guard = self.slots[n % HEAD_SLOTS].read().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&guard)
    }

    /// Install a new head (called only with the writer lock held).
    fn publish(&self, head: Arc<ObjectBase>) {
        let next = self.active.load(Ordering::Relaxed).wrapping_add(1);
        *self.slots[next % HEAD_SLOTS].write().unwrap_or_else(|e| e.into_inner()) = head;
        self.active.store(next, Ordering::Release);
    }
}

/// One queued write waiting for the group-commit leader.
struct QueueEntry {
    prepared: Prepared,
    ticket: Arc<Ticket>,
}

/// Completion slot for a queued write.
#[derive(Default)]
struct Ticket {
    result: Mutex<Option<Result<Applied, Error>>>,
}

impl Ticket {
    fn fill(&self, result: Result<Applied, Error>) {
        *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
    }

    fn take(&self) -> Option<Result<Applied, Error>> {
        self.result.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// The receipt for one committed program application.
#[derive(Clone, Debug)]
pub struct Applied {
    /// Transaction sequence number in the writer's log (0-based).
    pub seq: usize,
    /// Facts in the committed base right after this transaction.
    pub facts_after: usize,
    /// The publish epoch this transaction became visible in. Several
    /// transactions of one group-commit batch share an epoch.
    pub epoch: u64,
    /// The committed state right after this transaction (which may be
    /// older than the published head if later batch members committed
    /// on top of it).
    pub at: Snapshot,
}

struct Shared {
    head: HeadCell,
    /// Publish count; bumped once per batch, after the head moved.
    epoch: AtomicU64,
    /// Committed transactions, mirrored out of the writer's log so
    /// readers can see progress without the writer lock.
    commits: AtomicUsize,
    /// Pending writes awaiting a group-commit leader.
    queue: Mutex<Vec<QueueEntry>>,
    /// The single writer. Deliberately a `std` mutex: a panic inside a
    /// commit batch poisons it, which the serving layer reports as
    /// [`Error::PoisonedWriter`] while reads keep working off the last
    /// published head.
    writer: Mutex<Database>,
    /// Engine configuration, fixed at open (shared so
    /// [`ServingDatabase::prepare`] needs no lock).
    config: EngineConfig,
    /// Background checkpoint worker: at most one encoder thread in
    /// flight, plus the outcomes of completed runs for `ruvo serve`
    /// to log. Lock ordering: `ckpt` before `writer` (the encoder
    /// thread itself takes only `writer`).
    ckpt: Mutex<BackgroundCheckpoint>,
}

/// State of the background checkpoint worker (see
/// [`ServingDatabase::checkpoint_background`]).
#[derive(Default)]
struct BackgroundCheckpoint {
    /// The in-flight encoder thread, if any.
    handle: Option<std::thread::JoinHandle<Result<CheckpointOutcome, Error>>>,
    /// Outcomes of finished background checkpoints, oldest first,
    /// awaiting collection by [`ServingDatabase::take_checkpoint_completions`].
    completed: Vec<CheckpointOutcome>,
}

/// A cloneable, thread-safe serving handle over one evolving object
/// base: lock-free snapshot reads, single-writer group commit. See the
/// [module docs](self) for the model and a threaded example.
///
/// Handles are cheap to clone and all observe the same database.
/// Dropping the last handle drops the store.
#[derive(Clone)]
pub struct ServingDatabase {
    shared: Arc<Shared>,
}

// The serving layer is only useful if the handle crosses threads; keep
// that guarantee checked at compile time (see also the assertions in
// ruvo-obase for the storage types this builds on).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServingDatabase>();
    assert_send_sync::<Applied>();
    assert_send_sync::<Prepared>();
};

impl ServingDatabase {
    /// Wrap a single-owner [`Database`] into a serving handle, taking
    /// over its committed state, log and configuration.
    pub fn new(db: Database) -> ServingDatabase {
        let head = db.session().current_shared();
        let shared = Shared {
            head: HeadCell::new(head),
            epoch: AtomicU64::new(0),
            commits: AtomicUsize::new(db.len()),
            queue: Mutex::new(Vec::new()),
            config: db.config().clone(),
            writer: Mutex::new(db),
            ckpt: Mutex::new(BackgroundCheckpoint::default()),
        };
        ServingDatabase { shared: Arc::new(shared) }
    }

    /// Open a serving database over `ob` with the default engine
    /// configuration (use [`ServingDatabase::new`] with a configured
    /// [`Database`] for anything else).
    pub fn open(ob: ObjectBase) -> ServingDatabase {
        ServingDatabase::new(Database::open(ob))
    }

    /// Parse object-base text and open a serving database over it.
    pub fn open_src(src: &str) -> Result<ServingDatabase, Error> {
        Ok(ServingDatabase::new(Database::open_src(src)?))
    }

    // ----- reads (no writer lock) ------------------------------------

    /// An O(1) point-in-time read view of the latest published head.
    /// Never waits on a committing writer; the view stays stable while
    /// the database keeps committing.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.shared.head.load())
    }

    /// The latest published head as a shared handle.
    pub fn current(&self) -> Arc<ObjectBase> {
        self.shared.head.load()
    }

    /// Number of head publications so far (one per group-commit
    /// batch, so under write contention this lags [`Self::commits`]).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Number of committed transactions.
    pub fn commits(&self) -> usize {
        self.shared.commits.load(Ordering::Acquire)
    }

    /// The engine configuration writes run under.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Compile program text once for repeated [`ServingDatabase::apply`]
    /// (no lock taken; compilation is independent of the store).
    pub fn prepare(&self, src: &str) -> Result<Prepared, Error> {
        Prepared::compile(ruvo_lang::Program::parse(src)?, self.shared.config.cycles)
    }

    /// Ask `goal` against the result of evaluating `prepared` on the
    /// latest published head, without committing and **without the
    /// writer lock** — the demand-driven read path of the serving
    /// layer (see [`Database::query`]). The evaluation runs on a
    /// copy-on-write clone of the head snapshot, so concurrent commits
    /// neither block this read nor show up in its answers.
    pub fn query(
        &self,
        prepared: &Prepared,
        goal: ruvo_lang::Goal,
    ) -> Result<crate::query::QueryAnswers, Error> {
        if !self.shared.config.demand {
            let mut work = (*self.shared.head.load()).clone();
            work.ensure_exists();
            let outcome =
                crate::engine::run_compiled(prepared.compiled(), &self.shared.config, work)?;
            return Ok(crate::query::match_goal(outcome.result(), &goal));
        }
        self.run_query_plan(&prepared.query_plan(goal))
    }

    /// [`ServingDatabase::query`] for goal text.
    pub fn query_src(
        &self,
        prepared: &Prepared,
        goal: &str,
    ) -> Result<crate::query::QueryAnswers, Error> {
        self.query(prepared, ruvo_lang::Goal::parse(goal)?)
    }

    /// Run a pre-built [`crate::QueryPlan`] against the latest
    /// published head (build one via [`Prepared::query_plan`] so
    /// repeated asks — a polling reader, a serving loop — pay the
    /// rewrite once). Lock-free like every other read.
    pub fn run_query_plan(
        &self,
        plan: &crate::query::QueryPlan,
    ) -> Result<crate::query::QueryAnswers, Error> {
        let work = (*self.shared.head.load()).clone();
        Ok(crate::query::run_query(plan, &self.shared.config, work)?)
    }

    // ----- writes (single writer, group commit) ----------------------

    /// Apply a prepared program as one all-or-nothing transaction.
    ///
    /// Concurrent callers form a group: the program is queued, and the
    /// thread that wins the writer lock commits **every** queued
    /// program as one batch, publishing the new head once. Blocks
    /// until this program's own transaction has been decided; on
    /// success the receipt carries the transaction's sequence number,
    /// publish epoch and post-state.
    ///
    /// An error affects only this program — earlier and later batch
    /// members commit independently (use
    /// [`ServingDatabase::transact`] for multi-program atomicity).
    ///
    /// Blocks on the (non-reentrant) writer lock: do not call from
    /// inside a [`ServingDatabase::transact`] closure on the same
    /// database — see the deadlock note there.
    pub fn apply(&self, prepared: &Prepared) -> Result<Applied, Error> {
        let ticket = Arc::new(Ticket::default());
        self.queue().push(QueueEntry { prepared: prepared.clone(), ticket: Arc::clone(&ticket) });
        match self.shared.writer.lock() {
            Ok(mut writer) => {
                // A previous leader may have served our ticket while we
                // waited for the lock; otherwise we lead the batch that
                // contains it.
                if let Some(result) = ticket.take() {
                    return result;
                }
                self.drain(&mut writer);
            }
            Err(_poisoned) => {
                // Withdraw the unserved entry so it cannot linger.
                self.queue().retain(|e| !Arc::ptr_eq(&e.ticket, &ticket));
                return match ticket.take() {
                    Some(result) => result,
                    None => Err(Error::PoisonedWriter),
                };
            }
        }
        ticket.take().expect("group-commit drain fills every queued ticket")
    }

    /// Prepare and apply program text in one step (no compilation
    /// reuse — prefer [`ServingDatabase::prepare`] +
    /// [`ServingDatabase::apply`] for repeated application).
    pub fn apply_src(&self, src: &str) -> Result<Applied, Error> {
        let prepared = self.prepare(src)?;
        self.apply(&prepared)
    }

    /// Apply several prepared programs as **one** group-commit batch:
    /// each is its own transaction (a failure affects only its slot),
    /// and the head is published once at the end, so all receipts
    /// share a publish epoch (a concurrent leader that picks the batch
    /// up may fold *more* queued programs into the same publication,
    /// never split these apart — they enter the queue atomically).
    pub fn apply_batch(&self, batch: &[&Prepared]) -> Vec<Result<Applied, Error>> {
        let tickets: Vec<Arc<Ticket>> = {
            // One guard for all pushes: a leader draining concurrently
            // must see either none or all of this batch.
            let mut queue = self.queue();
            batch
                .iter()
                .map(|prepared| {
                    let ticket = Arc::new(Ticket::default());
                    queue.push(QueueEntry {
                        prepared: (*prepared).clone(),
                        ticket: Arc::clone(&ticket),
                    });
                    ticket
                })
                .collect()
        };
        match self.shared.writer.lock() {
            Ok(mut writer) => self.drain(&mut writer),
            Err(_poisoned) => {
                self.queue().retain(|e| !tickets.iter().any(|t| Arc::ptr_eq(t, &e.ticket)));
            }
        }
        tickets.into_iter().map(|t| t.take().unwrap_or(Err(Error::PoisonedWriter))).collect()
    }

    /// Run several applications as one atomic unit under the writer
    /// lock, with the savepoint semantics of [`Database::transact`]:
    /// if the closure errs, everything it applied is rolled back. The
    /// head is published once, at the end, so readers never observe an
    /// intermediate state of the transaction.
    ///
    /// # Deadlock
    ///
    /// Write *through the closure's [`Transaction`] handle only*. The
    /// writer lock is not reentrant: calling [`ServingDatabase::apply`],
    /// `transact` or [`ServingDatabase::log_tail`] on any handle to
    /// this database from inside the closure deadlocks the thread
    /// (reads — [`ServingDatabase::snapshot`] and friends — are
    /// always safe).
    pub fn transact<T>(
        &self,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, Error>,
    ) -> Result<T, Error> {
        let mut writer = self.lock_writer()?;
        // Serve any queued writes first so the exclusive section does
        // not starve them (their owners are blocked on the lock).
        self.drain(&mut writer);
        let result = writer.transact(f);
        self.publish(&writer);
        result
    }

    /// Force a durable checkpoint of the committed state (no-op on a
    /// volatile database): queued writes are drained and published
    /// first, then the head state is written to the data directory
    /// (a delta generation when the chain permits, a full rewrite
    /// otherwise) and the WAL truncated. Synchronous — takes the
    /// writer lock for the whole encode. Prefer
    /// [`ServingDatabase::checkpoint_background`] on a serving path.
    pub fn checkpoint(&self) -> Result<CheckpointOutcome, Error> {
        let mut writer = self.lock_writer()?;
        self.drain(&mut writer);
        writer.checkpoint()
    }

    /// Start a checkpoint of the committed state **without blocking
    /// the writer for the encode**: the writer lock is held only for
    /// an O(shards) plan (and to drain queued writes first); the
    /// snapshot is then serialized on a background thread, which
    /// re-takes the lock at the end only to install the finished
    /// generation. Commits proceed concurrently; if they race the
    /// install, the WAL simply keeps covering them (see
    /// `core::store` for the exact truncation rule).
    ///
    /// At most one background checkpoint runs at a time: starting a
    /// new one first joins the previous thread, surfacing its error
    /// here rather than losing it. Returns `true` if an encoder was
    /// started (`false` on a volatile database, which has nothing to
    /// checkpoint). Use [`ServingDatabase::checkpoint_flush`] to wait
    /// for completion.
    pub fn checkpoint_background(&self) -> Result<bool, Error> {
        let mut ckpt = self.ckpt_lock();
        if let Some(handle) = ckpt.handle.take() {
            let outcome = handle.join().map_err(|_| Error::PoisonedWriter)??;
            ckpt.completed.push(outcome);
        }
        let plan = {
            let mut writer = self.lock_writer()?;
            self.drain(&mut writer);
            writer.plan_checkpoint(CheckpointMode::Auto)
        };
        let Some((plan, at)) = plan else { return Ok(false) };
        let shared = Arc::clone(&self.shared);
        ckpt.handle = Some(std::thread::spawn(move || {
            // Pure CPU: encode against the pinned snapshot, no locks.
            let encoded = encode_checkpoint_plan(&plan, &at);
            drop(at);
            let mut writer = shared.writer.lock().map_err(|_| Error::PoisonedWriter)?;
            writer.install_checkpoint(encoded)
        }));
        Ok(true)
    }

    /// Wait for the in-flight background checkpoint (if any) to
    /// finish and return its outcome; `Ok(None)` when none was
    /// running. Tests and shutdown paths call this to make
    /// [`ServingDatabase::checkpoint_background`] durable-by-now.
    pub fn checkpoint_flush(&self) -> Result<Option<CheckpointOutcome>, Error> {
        let mut ckpt = self.ckpt_lock();
        let Some(handle) = ckpt.handle.take() else { return Ok(None) };
        let outcome = handle.join().map_err(|_| Error::PoisonedWriter)??;
        ckpt.completed.push(outcome);
        Ok(Some(outcome))
    }

    /// Drain the log of completed background checkpoints, oldest
    /// first. `ruvo serve` polls this to report completions.
    pub fn take_checkpoint_completions(&self) -> Vec<CheckpointOutcome> {
        std::mem::take(&mut self.ckpt_lock().completed)
    }

    /// Compact the checkpoint chain into one fresh full generation,
    /// synchronously, after draining queued writes. Joins any
    /// in-flight background checkpoint first so the forced full
    /// generation is the one that lands last.
    pub fn compact(&self) -> Result<CheckpointOutcome, Error> {
        self.checkpoint_flush()?;
        let mut writer = self.lock_writer()?;
        self.drain(&mut writer);
        writer.compact()
    }

    /// Recent committed transactions, newest last: the final `n`
    /// entries of the writer's log, cloned out under the writer lock
    /// (so this waits for a running batch; prefer counters/snapshots
    /// on the serving path).
    pub fn log_tail(&self, n: usize) -> Result<Vec<crate::session::Txn>, Error> {
        let writer = self.lock_writer()?;
        let log = writer.log();
        Ok(log[log.len().saturating_sub(n)..].to_vec())
    }

    /// Unwrap back into the single-owner [`Database`] — possible only
    /// when this is the last handle; otherwise returns `self` back.
    pub fn into_database(self) -> Result<Database, ServingDatabase> {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => Ok(shared.writer.into_inner().unwrap_or_else(|e| e.into_inner())),
            Err(shared) => Err(ServingDatabase { shared }),
        }
    }

    // ----- internals -------------------------------------------------

    fn queue(&self) -> MutexGuard<'_, Vec<QueueEntry>> {
        // The queue mutex only guards Vec operations; a poisoned guard
        // still holds a structurally sound queue.
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_writer(&self) -> Result<MutexGuard<'_, Database>, Error> {
        self.shared.writer.lock().map_err(|_| Error::PoisonedWriter)
    }

    fn ckpt_lock(&self) -> MutexGuard<'_, BackgroundCheckpoint> {
        // The worker slot stays structurally sound across a panic in
        // an unrelated holder; a panicked *encoder thread* is
        // reported by join() on the handle, not via poisoning here.
        self.shared.ckpt.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Commit everything currently queued as one batch (through
    /// [`crate::Session::apply_compiled_batch`]) and publish the head
    /// once. Entries enqueued *after* the drain picked up the queue
    /// are served by their own (currently lock-blocked) owners.
    ///
    /// Tickets are filled only **after** the publication: if a batch
    /// member panics and poisons the writer, no caller has been
    /// acknowledged for a state that will never become visible —
    /// every member of the aborted batch reports
    /// [`Error::PoisonedWriter`].
    fn drain(&self, writer: &mut Database) {
        let batch: Vec<QueueEntry> = std::mem::take(&mut *self.queue());
        if batch.is_empty() {
            return;
        }
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        let compiled: Vec<_> = batch.iter().map(|e| e.prepared.compiled()).collect();
        let results = writer.session_mut().apply_compiled_batch(&compiled);
        self.publish(writer);
        for (entry, result) in batch.iter().zip(results) {
            entry.ticket.fill(
                result
                    .map(|(seq, facts_after, at)| Applied { seq, facts_after, epoch, at })
                    .map_err(Error::from),
            );
        }
    }

    /// Publish the writer's committed state as the new head, if it
    /// moved since the last publication.
    fn publish(&self, writer: &Database) {
        let head = writer.session().current_shared();
        if Arc::ptr_eq(&head, &self.shared.head.load()) {
            return;
        }
        self.shared.head.publish(head);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        self.shared.commits.store(writer.len(), Ordering::Release);
    }
}

impl std::fmt::Debug for ServingDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingDatabase")
            .field("epoch", &self.epoch())
            .field("commits", &self.commits())
            .field("facts", &self.current().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ErrorKind;
    use ruvo_term::{int, oid};

    const BASE: &str = "henry.isa -> empl. henry.sal -> 250. mary.isa -> empl. mary.sal -> 300.";
    const RAISE: &str = "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.";

    #[test]
    fn reads_observe_published_commits() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        let raise = db.prepare(RAISE).unwrap();
        let before = db.snapshot();
        let applied = db.apply(&raise).unwrap();
        assert_eq!(applied.seq, 0);
        assert_eq!(applied.epoch, 1);
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.commits(), 1);
        assert_eq!(db.snapshot().lookup1(oid("henry"), "sal"), vec![int(275)]);
        assert_eq!(before.lookup1(oid("henry"), "sal"), vec![int(250)]);
        assert_eq!(applied.at.lookup1(oid("henry"), "sal"), vec![int(275)]);
    }

    #[test]
    fn parallel_config_flows_through_serving_and_matches_serial() {
        let ob = ObjectBase::parse(BASE).unwrap();
        let serial = ServingDatabase::open(ob.clone());
        let parallel =
            ServingDatabase::new(crate::Database::builder().parallel(true).threads(2).open(ob));
        assert!(parallel.config().parallel);
        assert_eq!(parallel.config().threads, 2);
        let p1 = serial.prepare(RAISE).unwrap();
        let p2 = parallel.prepare(RAISE).unwrap();
        for _ in 0..3 {
            serial.apply(&p1).unwrap();
            parallel.apply(&p2).unwrap();
        }
        // The group-commit writer runs under the parallel config; the
        // published state must be bit-identical to serial commits.
        assert_eq!(*serial.current(), *parallel.current());
    }

    #[test]
    fn handles_share_one_database() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        let raise = db.prepare(RAISE).unwrap();
        let other = db.clone();
        db.apply(&raise).unwrap();
        assert_eq!(other.commits(), 1);
        assert_eq!(other.snapshot().lookup1(oid("henry"), "sal"), vec![int(275)]);
    }

    #[test]
    fn apply_batch_publishes_once() {
        let db = ServingDatabase::open_src("acct.balance -> 100.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 50.").unwrap();
        let results = db.apply_batch(&[&credit, &credit, &credit]);
        let receipts: Vec<Applied> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(receipts.len(), 3);
        // One batch, one publication: every receipt shares the epoch.
        assert!(receipts.iter().all(|a| a.epoch == 1), "epochs: {receipts:?}");
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.commits(), 3);
        assert_eq!(db.snapshot().lookup1(oid("acct"), "balance"), vec![int(250)]);
        // Per-member post-states are the sequential intermediates.
        assert_eq!(receipts[0].at.lookup1(oid("acct"), "balance"), vec![int(150)]);
        assert_eq!(receipts[1].at.lookup1(oid("acct"), "balance"), vec![int(200)]);
    }

    #[test]
    fn batch_member_failure_is_isolated() {
        let db = ServingDatabase::open_src("acct.balance -> 100.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 50.").unwrap();
        // A non-version-linear program: rejected at its own commit
        // gate, leaving the neighbouring batch members untouched.
        let branchy = db
            .prepare("mod[acct].balance -> (B, 1) <= acct.balance -> B. del[acct].balance -> B <= acct.balance -> B.")
            .unwrap();
        let results = db.apply_batch(&[&credit, &branchy, &credit]);
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().unwrap_err().kind(), ErrorKind::Linearity);
        assert!(results[2].is_ok());
        assert_eq!(db.snapshot().lookup1(oid("acct"), "balance"), vec![int(200)]);
        assert_eq!(db.commits(), 2);
    }

    #[test]
    fn transact_is_atomic_and_publishes_once() {
        let db = ServingDatabase::open_src("acct.balance -> 100.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 50.").unwrap();
        db.transact(|txn| {
            txn.apply(&credit)?;
            txn.apply(&credit)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(db.epoch(), 1, "one publication for the whole transaction");
        assert_eq!(db.snapshot().lookup1(oid("acct"), "balance"), vec![int(200)]);

        let err = db.transact(|txn| {
            txn.apply(&credit)?;
            txn.apply_src("this does not parse")?;
            Ok(())
        });
        assert!(err.is_err());
        // Rolled back: no new state was ever published.
        assert_eq!(db.epoch(), 1);
        assert_eq!(db.snapshot().lookup1(oid("acct"), "balance"), vec![int(200)]);
        assert_eq!(db.commits(), 2);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = ServingDatabase::open_src("acct.balance -> 100.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 50.").unwrap();
        const WRITES: usize = 20;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reader = db.clone();
                s.spawn(move || {
                    loop {
                        let snap = reader.snapshot();
                        let bal = snap.lookup1(oid("acct"), "balance");
                        // Every observed balance is some committed state.
                        assert_eq!(bal.len(), 1);
                        let v = match bal[0] {
                            ruvo_term::Const::Int(v) => v,
                            other => panic!("non-integer balance {other}"),
                        };
                        assert_eq!(v % 50, 0, "torn read: {v}");
                        assert!((100..=100 + 50 * WRITES as i64).contains(&v));
                        if v == 100 + 50 * WRITES as i64 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
            let writer = db.clone();
            let credit = credit.clone();
            s.spawn(move || {
                for _ in 0..WRITES {
                    writer.apply(&credit).unwrap();
                }
            });
        });
        assert_eq!(db.commits(), WRITES);
        assert_eq!(
            db.snapshot().lookup1(oid("acct"), "balance"),
            vec![int(100 + 50 * WRITES as i64)]
        );
    }

    #[test]
    fn concurrent_writers_all_commit() {
        let db = ServingDatabase::open_src("acct.balance -> 0.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
        const THREADS: usize = 4;
        const EACH: usize = 5;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let handle = db.clone();
                let credit = credit.clone();
                s.spawn(move || {
                    for _ in 0..EACH {
                        handle.apply(&credit).unwrap();
                    }
                });
            }
        });
        // Serialized writers: every increment landed exactly once.
        assert_eq!(db.commits(), THREADS * EACH);
        assert_eq!(
            db.snapshot().lookup1(oid("acct"), "balance"),
            vec![int((THREADS * EACH) as i64)]
        );
        // Group commit may have folded several commits per publish.
        assert!(db.epoch() <= db.commits() as u64);
        assert!(db.epoch() >= 1);
    }

    #[test]
    fn poisoned_writer_is_an_error_not_a_panic() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        let raise = db.prepare(RAISE).unwrap();
        let poisoner = db.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shared.writer.lock().unwrap();
            panic!("die while holding the writer");
        })
        .join();
        let err = db.apply(&raise).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Poisoned);
        assert!(err.to_string().contains("poisoned"));
        // Reads keep serving the last published head.
        assert_eq!(db.snapshot().lookup1(oid("henry"), "sal"), vec![int(250)]);
        let err = db.transact(|_| Ok(())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Poisoned);
    }

    #[test]
    fn query_reads_from_published_head_without_committing() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        let raise = db.prepare(RAISE).unwrap();
        let before = db.query_src(&raise, "?- mod(henry).sal -> S.").unwrap();
        assert_eq!(before.rows, vec![vec![int(275)]]);
        assert_eq!(db.commits(), 0, "queries never commit");
        // After a commit the same query reads the new head.
        db.apply(&raise).unwrap();
        let after = db.query_src(&raise, "?- mod(henry).sal -> S.").unwrap();
        assert_eq!(after.rows, vec![vec![ruvo_term::num(302.5)]]);
    }

    #[test]
    fn into_database_round_trip() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        let raise = db.prepare(RAISE).unwrap();
        db.apply(&raise).unwrap();
        let clone = db.clone();
        let db = db.into_database().expect_err("second handle alive");
        drop(clone);
        let owned = db.into_database().expect("sole handle");
        assert_eq!(owned.len(), 1);
        assert_eq!(owned.current().lookup1(oid("henry"), "sal"), vec![int(275)]);
    }

    #[test]
    fn head_ring_wraps_cleanly() {
        let db = ServingDatabase::open_src("acct.balance -> 0.").unwrap();
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
        // More publishes than slots: the ring must lap without readers
        // ever observing a stale or torn head at the end.
        for i in 1..=(HEAD_SLOTS as i64 * 3) {
            db.apply(&credit).unwrap();
            assert_eq!(db.snapshot().lookup1(oid("acct"), "balance"), vec![int(i)]);
        }
        assert_eq!(db.epoch(), HEAD_SLOTS as u64 * 3);
    }

    fn serving_tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ruvo-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn background_checkpoint_on_a_volatile_database_is_a_noop() {
        let db = ServingDatabase::open_src(BASE).unwrap();
        assert!(!db.checkpoint_background().unwrap(), "nothing to checkpoint");
        assert_eq!(db.checkpoint_flush().unwrap(), None);
        assert!(db.take_checkpoint_completions().is_empty());
        assert_eq!(db.checkpoint().unwrap(), CheckpointOutcome::Skipped);
    }

    #[test]
    fn background_checkpoint_is_durable_after_flush() {
        let dir = serving_tmp_dir("bg-ckpt");
        let db = crate::Database::builder()
            .data_dir(&dir)
            .seed_src("acct.balance -> 100.")
            .unwrap()
            .open_dir()
            .unwrap();
        let db = ServingDatabase::new(db);
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 50.").unwrap();
        db.apply(&credit).unwrap();
        assert!(db.checkpoint_background().unwrap(), "an encoder was started");
        // Commits keep landing while the encoder runs; if they beat
        // the install, the WAL covers them (exercised by timing, not
        // asserted — both interleavings must recover identically).
        db.apply(&credit).unwrap();
        let outcome = db.checkpoint_flush().unwrap().expect("one encoder in flight");
        assert_ne!(outcome, CheckpointOutcome::Skipped);
        assert_eq!(db.take_checkpoint_completions(), vec![outcome]);
        assert!(db.take_checkpoint_completions().is_empty(), "completions drain once");

        let live = db.current();
        drop(db);
        let reopened = crate::Database::open_dir(&dir).unwrap();
        assert_eq!(reopened.current(), &*live, "recovered state matches the live head");
        assert_eq!(reopened.current().lookup1(oid("acct"), "balance"), vec![int(200)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_background_checkpoints_stack_deltas_and_recover() {
        let dir = serving_tmp_dir("bg-chain");
        let db = crate::Database::builder()
            .data_dir(&dir)
            .seed_src("acct.balance -> 0.")
            .unwrap()
            .open_dir()
            .unwrap();
        let db = ServingDatabase::new(db);
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
        for _ in 0..4 {
            db.apply(&credit).unwrap();
            db.checkpoint_background().unwrap();
        }
        db.checkpoint_flush().unwrap();
        // Starting each round joined the previous one: every outcome
        // is on the completion log, none lost.
        assert_eq!(db.take_checkpoint_completions().len(), 4);

        let live = db.current();
        drop(db);
        let reopened = crate::Database::open_dir(&dir).unwrap();
        assert_eq!(reopened.current(), &*live);
        assert_eq!(reopened.current().lookup1(oid("acct"), "balance"), vec![int(4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serving_compact_folds_the_chain() {
        let dir = serving_tmp_dir("bg-compact");
        let db = crate::Database::builder()
            .data_dir(&dir)
            .seed_src("acct.balance -> 0.")
            .unwrap()
            .open_dir()
            .unwrap();
        let db = ServingDatabase::new(db);
        let credit =
            db.prepare("mod[A].balance -> (B, B2) <= A.balance -> B & B2 = B + 1.").unwrap();
        for _ in 0..3 {
            db.apply(&credit).unwrap();
            db.checkpoint_background().unwrap();
        }
        assert!(matches!(db.compact().unwrap(), CheckpointOutcome::Full { .. }));
        drop(db);
        let state = crate::store::read_state(dir.as_path()).unwrap();
        let ckpt = state.checkpoint.expect("chain present");
        assert_eq!(ckpt.generations.len(), 1, "compaction folded the chain");
        assert_eq!(ckpt.base.lookup1(oid("acct"), "balance"), vec![int(3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
