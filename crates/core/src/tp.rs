//! The immediate consequence operator `T_P` (§3).
//!
//! `T_P(I)` is computed in three steps:
//!
//! 1. **Collect** (`T¹`): the set of fired ground update-terms — heads
//!    of ground rule instances whose body literals and head are true
//!    w.r.t. `I` ([`collect_rule`]; the truth of heads is
//!    [`crate::truth::update_head`]).
//! 2. **Copy** (`T²`): for each *relevant* VID `φ(v)` (one that some
//!    fired update creates), prepare a state to update — the current
//!    state of `φ(v)` if it is *active* (already exists), otherwise a
//!    copy of the state of `v*` ("by copying old states only for the
//!    objects being updated … we keep the unavoidable overhead low" —
//!    the paper's frame-problem note).
//! 3. **Apply**: inserts add method-applications, deletes remove them,
//!    modifies replace old results with new ones ([`apply_updates`]).
//!
//! Each round the engine re-applies the *full accumulated* update set
//! of every version the round's delta touches (not just the delta):
//! step 3 is defined over the whole `T¹`, and for chained modifies on
//! one version — `(a,b)` fired in round 1, `(b,c)` in round 2 — only
//! whole-set application reaches the paper's fixpoint `{b,c}`.
//! Re-application is idempotent: for removal set `R` and insertion set
//! `A`, `((X \ R) ∪ A) \ R ∪ A = (X \ R) ∪ A`.

use std::sync::Arc;

use ruvo_lang::{Rule, UpdateSpec};
use ruvo_obase::{exists_sym, Args, ChangedSince, MethodApp, ObjectBase, VersionState};
use ruvo_term::{ArgTerm, Bindings, Const, FastHashMap, FastHashSet, Symbol, UpdateKind, Vid};

use crate::plan::RuleIndexPlan;
use crate::{matcher, truth};

/// A fired ground update-term (an element of `T¹`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Fired {
    /// `ins[target].method@args -> result`
    Ins {
        /// Bracketed target version `v`.
        target: Vid,
        /// Method updated.
        method: Symbol,
        /// Ground arguments.
        args: Args,
        /// Inserted result.
        result: Const,
    },
    /// `del[target].method@args -> result`
    Del {
        /// Bracketed target version `v`.
        target: Vid,
        /// Method updated.
        method: Symbol,
        /// Ground arguments.
        args: Args,
        /// Deleted result.
        result: Const,
    },
    /// `mod[target].method@args -> (from, to)`
    Mod {
        /// Bracketed target version `v`.
        target: Vid,
        /// Method updated.
        method: Symbol,
        /// Ground arguments.
        args: Args,
        /// Old result.
        from: Const,
        /// New result.
        to: Const,
    },
}

impl Fired {
    /// The update kind.
    pub fn kind(&self) -> UpdateKind {
        match self {
            Fired::Ins { .. } => UpdateKind::Ins,
            Fired::Del { .. } => UpdateKind::Del,
            Fired::Mod { .. } => UpdateKind::Mod,
        }
    }

    /// The bracketed target version `v`.
    pub fn target(&self) -> Vid {
        match self {
            Fired::Ins { target, .. } | Fired::Del { target, .. } | Fired::Mod { target, .. } => {
                *target
            }
        }
    }

    /// The *relevant* VID this update creates: `φ(v)`.
    ///
    /// # Panics
    /// Chain overflow is impossible for updates produced by parsed
    /// rules (chain depth is checked statically), so this unwraps.
    pub fn created(&self) -> Vid {
        self.target().apply(self.kind()).expect("chain depth checked at parse time")
    }

    /// The method updated.
    pub fn method(&self) -> Symbol {
        match self {
            Fired::Ins { method, .. } | Fired::Del { method, .. } | Fired::Mod { method, .. } => {
                *method
            }
        }
    }
}

impl std::fmt::Display for Fired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fired::Ins { target, method, args, result } => {
                write!(f, "ins[{target}].{method}")?;
                if !args.is_empty() {
                    write!(f, " @ {args}")?;
                }
                write!(f, " -> {result}")
            }
            Fired::Del { target, method, args, result } => {
                write!(f, "del[{target}].{method}")?;
                if !args.is_empty() {
                    write!(f, " @ {args}")?;
                }
                write!(f, " -> {result}")
            }
            Fired::Mod { target, method, args, from, to } => {
                write!(f, "mod[{target}].{method}")?;
                if !args.is_empty() {
                    write!(f, " @ {args}")?;
                }
                write!(f, " -> ({from}, {to})")
            }
        }
    }
}

/// The accumulated `T¹` of a stratum, with O(1) dedup.
#[derive(Clone, Debug, Default)]
pub struct FiredSet {
    set: FastHashSet<Fired>,
}

impl FiredSet {
    /// An empty set.
    pub fn new() -> FiredSet {
        FiredSet::default()
    }

    /// Insert; true if the update is new.
    pub fn insert(&mut self, fired: Fired) -> bool {
        self.set.insert(fired)
    }

    /// Membership.
    pub fn contains(&self, fired: &Fired) -> bool {
        self.set.contains(fired)
    }

    /// Number of distinct fired updates.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if nothing fired.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Fired> {
        self.set.iter()
    }
}

fn ground_arg(t: ArgTerm, b: &Bindings) -> Const {
    t.ground(b).expect("safety analysis guarantees head variables are bound")
}

fn ground_args(args: &[ArgTerm], b: &Bindings) -> Args {
    Args::new(args.iter().map(|&a| ground_arg(a, b)).collect())
}

/// Step 1 for one rule: enumerate body matches, ground the head, check
/// head truth, and emit fired updates into `out`. Scans are naive full
/// relation sweeps; see [`collect_rule_planned`] for the indexed path.
///
/// A `del[V].*` head expands into one `Del` per method-application of
/// `v*` (excluding `exists`, which is not updatable) — "we write
/// del[…]: to express the deletion of all method-applications of the
/// respective version" (§2.3).
pub fn collect_rule(ob: &ObjectBase, rule: &Rule, out: &mut Vec<Fired>) {
    matcher::for_each_match(ob, rule, &mut |b| fire_head(ob, rule, b, out));
}

/// [`collect_rule`] with scans driven through the value-keyed method
/// index per the rule's compile-time [`RuleIndexPlan`].
pub fn collect_rule_planned(
    ob: &ObjectBase,
    rule: &Rule,
    plan: &RuleIndexPlan,
    out: &mut Vec<Fired>,
) {
    matcher::for_each_match_planned(ob, rule, plan, &mut |b| fire_head(ob, rule, b, out));
}

/// [`collect_rule_planned`] with the scan at plan step `seed_step`
/// restricted to the objects in `seed` and executed first — the
/// semi-naive delta join (matches not involving a seeded object at
/// that literal are skipped; the engine issues one seeded pass per
/// changed body literal).
pub fn collect_rule_seeded(
    ob: &ObjectBase,
    rule: &Rule,
    plan: &RuleIndexPlan,
    seed_step: usize,
    seed: &FastHashSet<Const>,
    out: &mut Vec<Fired>,
) {
    matcher::for_each_match_seeded(ob, rule, plan, seed_step, seed, &mut |b| {
        fire_head(ob, rule, b, out)
    });
}

/// Ground the head under a complete body match, check §3 head truth,
/// and emit the fired update(s).
fn fire_head(ob: &ObjectBase, rule: &Rule, b: &Bindings, out: &mut Vec<Fired>) {
    let exists = exists_sym();
    let target =
        rule.head.target.ground(b).expect("safety analysis guarantees head variables are bound");
    match &rule.head.spec {
        UpdateSpec::Ins { method, args, result } => {
            // §3: an ins head is always true.
            out.push(Fired::Ins {
                target,
                method: *method,
                args: ground_args(args, b),
                result: ground_arg(*result, b),
            });
        }
        UpdateSpec::Del { method, args, result } => {
            let args = ground_args(args, b);
            let result = ground_arg(*result, b);
            if truth::update_head(ob, UpdateKind::Del, target, *method, args.as_slice(), result) {
                out.push(Fired::Del { target, method: *method, args, result });
            }
        }
        UpdateSpec::DelAll => {
            if let Some(v_star) = ob.v_star(target) {
                if let Some(state) = ob.version(v_star) {
                    for (method, app) in state.iter() {
                        if method == exists {
                            continue;
                        }
                        out.push(Fired::Del {
                            target,
                            method,
                            args: app.args.clone(),
                            result: app.result,
                        });
                    }
                }
            }
        }
        UpdateSpec::Mod { method, args, from, to } => {
            let args = ground_args(args, b);
            let from = ground_arg(*from, b);
            let to = ground_arg(*to, b);
            if truth::update_head(ob, UpdateKind::Mod, target, *method, args.as_slice(), from) {
                out.push(Fired::Mod { target, method: *method, args, from, to });
            }
        }
    }
}

/// Bookkeeping produced by [`apply_updates`], consumed by the engine.
#[derive(Debug, Default)]
pub struct ApplyReport {
    /// Versions whose state was (re)computed this round.
    pub touched: Vec<Vid>,
    /// Versions that did not exist before this round.
    pub created: Vec<Vid>,
    /// The round's semantic delta: per `(chain, method)` relation, the
    /// objects whose fact sets actually changed (diffed by the tracked
    /// state commit, so idempotent re-applications contribute nothing).
    /// This both gates rule-level delta filtering and seeds the
    /// semi-naive join.
    pub changed: ChangedSince,
    /// Method-applications copied in step 2 (frame-copy volume).
    pub facts_copied: usize,
}

/// Group a round's delta by created version, in first-appearance
/// order. This is the **canonical apply order**: every apply path —
/// serial, pooled, any worker count — processes versions in exactly
/// this sequence (or deposits results into slots indexed by it), so
/// `touched`/`created` lists and the recorded delta are identical
/// across configurations.
fn group_by_created(delta: &[Fired]) -> Vec<(Vid, Vec<&Fired>)> {
    let mut index: FastHashMap<Vid, usize> = FastHashMap::default();
    let mut groups: Vec<(Vid, Vec<&Fired>)> = Vec::new();
    for fired in delta {
        let created = fired.created();
        let i = *index.entry(created).or_insert_with(|| {
            groups.push((created, Vec::new()));
            groups.len() - 1
        });
        groups[i].1.push(fired);
    }
    groups
}

/// Steps 2 + 3 for one created version, **read-only** on `ob`: the
/// copied source state with the group's updates applied. Returns the
/// new state plus `(facts_copied, was_created)` bookkeeping. Being a
/// pure function of `(ob, created, updates)`, any number of these can
/// run concurrently over a shared `&ObjectBase`.
fn build_state(
    ob: &ObjectBase,
    created: Vid,
    updates: &[&Fired],
) -> (Arc<VersionState>, usize, bool) {
    let exists = exists_sym();
    let active = ob.exists_fact(created);
    let mut facts_copied = 0;
    // Step 2: the copy — an `Arc` alias of the source state, not a
    // deep copy. Step 3 unshares it on its first *effective* write
    // (every removal/insertion peeks first), so a round that
    // re-applies an already-applied update set touches nothing, and
    // the tracked commit recognizes the unchanged pointer and skips
    // the diff and the re-indexing outright.
    let mut state: Arc<VersionState> = if active {
        ob.version_shared(created).cloned().unwrap_or_default()
    } else {
        let target = updates[0].target();
        let copied = match ob.v_star(target) {
            Some(v_star) => ob.version_shared(v_star).cloned().unwrap_or_default(),
            // Brand-new object: empty copy (DESIGN.md D3).
            None => Arc::new(VersionState::new()),
        };
        facts_copied = copied.len();
        copied
    };
    // Every version notes its own existence (survives deletion; §3).
    let exists_app = MethodApp::new(Args::empty(), created.base());
    if !state.contains(exists, &exists_app) {
        Arc::make_mut(&mut state).insert(exists, exists_app);
    }

    // Step 3: apply. The paper defines this as set algebra — the kept
    // copies are those whose result is no del-result and no
    // mod-from-value, and every ins-result and mod-to-value is
    // unioned in. Hence two phases: all removals first, then all
    // insertions. Interleaving per update would make chained mods
    // like (a,b),(b,c) order-dependent ({c} or {a,c} instead of the
    // paper's {b,c}).
    for fired in updates {
        let removal = match fired {
            Fired::Del { method, args, result, .. } => {
                Some((*method, MethodApp::new(args.clone(), *result)))
            }
            Fired::Mod { method, args, from, .. } => {
                Some((*method, MethodApp::new(args.clone(), *from)))
            }
            Fired::Ins { .. } => None,
        };
        if let Some((method, app)) = removal {
            if state.contains(method, &app) {
                Arc::make_mut(&mut state).remove(method, &app);
            }
        }
    }
    for fired in updates {
        let insertion = match fired {
            Fired::Ins { method, args, result, .. } => {
                Some((*method, MethodApp::new(args.clone(), *result)))
            }
            Fired::Mod { method, args, to, .. } => {
                Some((*method, MethodApp::new(args.clone(), *to)))
            }
            Fired::Del { .. } => None,
        };
        if let Some((method, app)) = insertion {
            if !state.contains(method, &app) {
                Arc::make_mut(&mut state).insert(method, app);
            }
        }
    }
    (state, facts_copied, !active)
}

/// Steps 2 + 3 for the newly fired updates of one round: group by
/// created version, copy states for relevant VIDs, apply the updates,
/// and overwrite the version states in `ob`.
pub fn apply_updates(ob: &mut ObjectBase, delta: &[Fired]) -> ApplyReport {
    let mut report = ApplyReport::default();
    for (created, updates) in group_by_created(delta) {
        let (state, facts_copied, was_created) = build_state(ob, created, &updates);
        report.facts_copied += facts_copied;
        if was_created {
            report.created.push(created);
        }
        // The tracked commit diffs the new state against the old one:
        // freshly created versions record every method of their state,
        // re-applications record only what actually changed — and a
        // pointer-identical recommit records (and re-indexes) nothing.
        ob.replace_version_tracked_shared(created, state, &mut report.changed);
        report.touched.push(created);
    }
    report
}

/// [`apply_updates`] with the per-version work spread over a worker
/// pool: the state of every touched version is built concurrently
/// (read-only phase), then all states are committed at once through
/// the object base's sharded batch commit
/// (`ObjectBase::replace_versions_tracked_shared`), whose workers own
/// disjoint index shards. Produces a report identical to the serial
/// path for every pool width — see the module docs of
/// [`crate::pool`].
pub(crate) fn apply_updates_pooled(
    ob: &mut ObjectBase,
    delta: &[Fired],
    pool: &crate::pool::WorkerPool,
    par: &mut crate::trace::ParallelStats,
) -> ApplyReport {
    if pool.workers() < 2 {
        return apply_updates(ob, delta);
    }
    let started = std::time::Instant::now();
    let groups = group_by_created(delta);
    let shared: &ObjectBase = ob;
    let (built, timing) =
        pool.run(groups.len(), |i| build_state(shared, groups[i].0, &groups[i].1));
    par.apply_busy_max += timing.busy_max;
    par.apply_busy_total += timing.busy_total;

    let mut report = ApplyReport::default();
    let mut edits: Vec<(Vid, Arc<VersionState>)> = Vec::with_capacity(groups.len());
    for ((created, _), (state, facts_copied, was_created)) in groups.iter().zip(built) {
        report.facts_copied += facts_copied;
        if was_created {
            report.created.push(*created);
        }
        report.touched.push(*created);
        edits.push((*created, state));
    }
    ob.replace_versions_tracked_shared(&edits, pool.workers(), &mut report.changed);
    par.apply_wall += started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_lang::Program;
    use ruvo_term::{int, oid, sym};

    fn base() -> ObjectBase {
        let mut ob = ObjectBase::parse(
            "phil.isa -> empl / pos -> mgr / sal -> 4000.
             bob.isa -> empl / boss -> phil / sal -> 4200.",
        )
        .unwrap();
        ob.ensure_exists();
        ob
    }

    fn collect(ob: &ObjectBase, src: &str) -> Vec<Fired> {
        let p = Program::parse(src).unwrap();
        let mut out = Vec::new();
        for rule in &p.rules {
            collect_rule(ob, rule, &mut out);
        }
        out
    }

    #[test]
    fn ins_head_fires_unconditionally() {
        let ob = base();
        let fired = collect(&ob, "ins[E].tag -> yes <= E.isa -> empl.");
        assert_eq!(fired.len(), 2);
        assert!(fired.iter().all(|f| f.kind() == UpdateKind::Ins));
    }

    #[test]
    fn del_head_truth_filters() {
        let ob = base();
        // Deleting information that is not there does not fire.
        let fired = collect(&ob, "del[E].pos -> mgr <= E.isa -> empl.");
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].target(), Vid::object(oid("phil")));
    }

    #[test]
    fn mod_head_truth_filters() {
        let ob = base();
        let fired = collect(&ob, "mod[E].sal -> (S, S2) <= E.sal -> S & S2 = S + 1.");
        assert_eq!(fired.len(), 2);
        // A mod whose `from` is not the current value does not fire.
        let fired = collect(&ob, "mod[phil].sal -> (1234, 1).");
        assert!(fired.is_empty());
    }

    #[test]
    fn del_all_expands_to_every_application() {
        let ob = base();
        let fired = collect(&ob, "del[bob].* .");
        // bob has isa, boss, sal (exists excluded).
        assert_eq!(fired.len(), 3);
        assert!(fired.iter().all(|f| matches!(f, Fired::Del { .. })));
        assert!(fired.iter().all(|f| f.method() != exists_sym()));
    }

    #[test]
    fn apply_ins_copies_then_adds() {
        let mut ob = base();
        let fired = vec![Fired::Ins {
            target: Vid::object(oid("phil")),
            method: sym("isa"),
            args: Args::empty(),
            result: oid("hpe"),
        }];
        let report = apply_updates(&mut ob, &fired);
        assert_eq!(report.created.len(), 1);
        let created = fired[0].created();
        // Copy carried the old state...
        assert!(ob.contains(created, sym("sal"), &[], int(4000)));
        assert!(ob.contains(created, sym("isa"), &[], oid("empl")));
        // ...plus the insert and the exists note.
        assert!(ob.contains(created, sym("isa"), &[], oid("hpe")));
        assert!(ob.exists_fact(created));
        // The original version is untouched (frame problem note).
        assert!(!ob.contains(Vid::object(oid("phil")), sym("isa"), &[], oid("hpe")));
        ob.check_invariants();
    }

    #[test]
    fn apply_del_removes_from_copy_only() {
        let mut ob = base();
        let fired = vec![Fired::Del {
            target: Vid::object(oid("bob")),
            method: sym("sal"),
            args: Args::empty(),
            result: int(4200),
        }];
        apply_updates(&mut ob, &fired);
        let created = fired[0].created();
        assert!(!ob.contains(created, sym("sal"), &[], int(4200)));
        assert!(ob.contains(created, sym("isa"), &[], oid("empl")));
        assert!(ob.contains(Vid::object(oid("bob")), sym("sal"), &[], int(4200)));
        ob.check_invariants();
    }

    #[test]
    fn apply_mod_replaces_result() {
        let mut ob = base();
        let fired = vec![Fired::Mod {
            target: Vid::object(oid("phil")),
            method: sym("sal"),
            args: Args::empty(),
            from: int(4000),
            to: int(4600),
        }];
        apply_updates(&mut ob, &fired);
        let created = fired[0].created();
        assert!(ob.contains(created, sym("sal"), &[], int(4600)));
        assert!(!ob.contains(created, sym("sal"), &[], int(4000)));
        assert!(ob.contains(created, sym("pos"), &[], oid("mgr")));
        ob.check_invariants();
    }

    #[test]
    fn delete_everything_keeps_exists_note() {
        let mut ob = base();
        let fired: Vec<Fired> = collect(&ob, "del[bob].* .");
        apply_updates(&mut ob, &fired);
        let del_bob = Vid::object(oid("bob")).apply(UpdateKind::Del).unwrap();
        let state = ob.version(del_bob).expect("version survives as exists note");
        assert!(state.is_empty_except(exists_sym()));
        assert!(ob.exists_fact(del_bob));
    }

    #[test]
    fn apply_on_active_version_updates_in_place() {
        let mut ob = base();
        let target = Vid::object(oid("phil"));
        let f1 = Fired::Ins { target, method: sym("isa"), args: Args::empty(), result: oid("hpe") };
        let f2 = Fired::Ins { target, method: sym("isa"), args: Args::empty(), result: oid("vip") };
        let r1 = apply_updates(&mut ob, std::slice::from_ref(&f1));
        assert_eq!(r1.created.len(), 1);
        // Second round: ins(phil) is now active; no copy, no creation.
        let r2 = apply_updates(&mut ob, std::slice::from_ref(&f2));
        assert!(r2.created.is_empty());
        assert_eq!(r2.facts_copied, 0);
        let created = f1.created();
        assert!(ob.contains(created, sym("isa"), &[], oid("hpe")));
        assert!(ob.contains(created, sym("isa"), &[], oid("vip")));
    }

    #[test]
    fn mod_application_is_set_defined_not_sequential() {
        // §3 step 3 is set-defined: every `from` is removed from the
        // copy, every `to` is added. For set-valued m = {a, b} with
        // fired mods (a,b) and (b,c) in ONE round, the new state is
        // {b, c} regardless of the order the updates are applied in;
        // interleaved remove/insert would give {c} or {a, c}.
        let target = Vid::object(oid("o"));
        let fired = |from: &str, to: &str| Fired::Mod {
            target,
            method: sym("m"),
            args: Args::empty(),
            from: oid(from),
            to: oid(to),
        };
        for pair in [vec![fired("a", "b"), fired("b", "c")], vec![fired("b", "c"), fired("a", "b")]]
        {
            let mut ob = ObjectBase::parse("o.m -> a. o.m -> b.").unwrap();
            ob.ensure_exists();
            apply_updates(&mut ob, &pair);
            let created = pair[0].created();
            assert!(!ob.contains(created, sym("m"), &[], oid("a")));
            assert!(ob.contains(created, sym("m"), &[], oid("b")));
            assert!(ob.contains(created, sym("m"), &[], oid("c")));
        }
    }

    #[test]
    fn mod_swap_preserves_both_values() {
        // Swapping mods (a,b) and (b,a) on m = {a, b}: step 3 removes
        // {a, b} and adds {b, a} — the state is unchanged.
        let target = Vid::object(oid("o"));
        let mut ob = ObjectBase::parse("o.m -> a. o.m -> b.").unwrap();
        ob.ensure_exists();
        let fired = vec![
            Fired::Mod {
                target,
                method: sym("m"),
                args: Args::empty(),
                from: oid("a"),
                to: oid("b"),
            },
            Fired::Mod {
                target,
                method: sym("m"),
                args: Args::empty(),
                from: oid("b"),
                to: oid("a"),
            },
        ];
        apply_updates(&mut ob, &fired);
        let created = fired[0].created();
        assert!(ob.contains(created, sym("m"), &[], oid("a")));
        assert!(ob.contains(created, sym("m"), &[], oid("b")));
    }

    #[test]
    fn new_object_creation_via_ins() {
        let mut ob = base();
        let fired = vec![Fired::Ins {
            target: Vid::object(oid("ghost")),
            method: sym("isa"),
            args: Args::empty(),
            result: oid("spirit"),
        }];
        let report = apply_updates(&mut ob, &fired);
        assert_eq!(report.facts_copied, 0);
        let created = fired[0].created();
        assert!(ob.contains(created, sym("isa"), &[], oid("spirit")));
        assert!(ob.exists_fact(created));
    }

    #[test]
    fn changed_set_covers_new_versions() {
        let mut ob = base();
        let fired = vec![Fired::Mod {
            target: Vid::object(oid("phil")),
            method: sym("sal"),
            args: Args::empty(),
            from: int(4000),
            to: int(4600),
        }];
        let report = apply_updates(&mut ob, &fired);
        let mod_chain = fired[0].created().chain();
        // All copied methods became visible under the mod(·) chain.
        for m in ["sal", "isa", "pos", "exists"] {
            assert!(report.changed.contains(&(mod_chain, sym(m))), "missing changed entry for {m}");
        }
    }
}
