//! # ruvo-core — the VLDB'92 update semantics
//!
//! This crate is the paper's contribution made executable:
//!
//! * [`truth`] — the §3 truth relation for ground version-terms and for
//!   update-terms in rule heads and rule bodies,
//! * [`matcher`] — body evaluation: enumerating the ground instances of
//!   a rule whose body literals are all true w.r.t. an object base,
//! * [`tp`] — the immediate consequence operator `T_P` as a 3-step
//!   procedure (collect fired updates, copy states for relevant VIDs,
//!   apply inserts/deletes/modifies),
//! * [`stratify`] — conditions (a)–(d) of §4 plus stratified negation,
//!   computed via unification of version-id-terms,
//! * [`engine`] — stratum-by-stratum fixpoint evaluation with the §5
//!   version-linearity runtime check and new-object-base construction,
//! * [`trace`] — evaluation statistics and per-stratum traces.
//!
//! ## Semantics notes
//!
//! The per-stratum iteration uses *overwrite* semantics for the states
//! of versions relevant in a round (DESIGN.md D1): plain cumulative
//! union cannot express deletion. Within a stratum the stratification
//! conditions guarantee that every fired ground update stays fired, so
//! the set `T¹` grows monotonically and the iteration reaches a
//! fixpoint; see [`engine`] for the mechanics.

pub mod check;
pub mod database;
pub mod deps;
pub mod engine;
pub mod error;
pub mod history;
pub mod matcher;
pub mod plan;
pub(crate) mod pool;
pub mod query;
pub mod reference;
pub mod serve;
pub mod session;
pub mod store;
pub mod stratify;
pub mod temporal;
pub mod tp;
pub mod trace;
pub mod truth;

pub use check::{CheckReport, Commutativity, CommutativityMatrix, SourceCheck};
pub use database::{Database, DatabaseBuilder, Error, ErrorKind, Prepared, Transaction};
pub use deps::{DepEdge, DepEdgeKind, ReadSet, RuleDepGraph, TopCause, WriteSet};
pub use engine::{
    run_compiled, CompiledProgram, CyclePolicy, EngineConfig, FinalVersionPolicy, Outcome,
    TraceLevel, UpdateEngine,
};
pub use error::EvalError;
pub use history::{history, History, HistoryStep};
pub use plan::{IndexPlan, RuleIndexPlan, ScanHint};
pub use query::{match_goal, plan_query, run_query, QueryAnswers, QueryMode, QueryPlan};
pub use serve::{Applied, ServingDatabase};
pub use session::{SavepointId, Session, SessionError, Txn};
pub use store::{
    encode_checkpoint_plan, Checkpoint, CheckpointMode, CheckpointOutcome, CheckpointPlan,
    CheckpointPolicy, DurabilitySink, EncodedCheckpoint, FsyncPolicy, GenerationInfo,
    GenerationKind, StorageError, Volatile, WalProgram, WalStore,
};
pub use stratify::{Condition, EdgeInfo, RelaxedStratification, Stratification, StratifyError};
pub use temporal::{FactProp, Formula, Timeline};
pub use tp::{Fired, FiredSet};
pub use trace::{EvalStats, ParallelStats, RoundTrace, StratumTrace};
