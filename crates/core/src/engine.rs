//! Stratum-by-stratum fixpoint evaluation (§4) and new-object-base
//! construction (§5).
//!
//! ## The per-stratum loop
//!
//! Within a stratum, each round computes `T¹` for the stratum's rules
//! against the current object base and applies steps 2+3 of `T_P` for
//! every version the round's *newly fired* updates touch — re-applying
//! that version's **full accumulated** update set, since step 3 is
//! defined over the whole `T¹` (DESIGN.md D1/D7; chained modifies need
//! the whole set, and re-application is idempotent). The stratification
//! conditions guarantee that fired updates stay fired, so `T¹` grows
//! monotonically and the loop terminates when a round fires nothing
//! new.
//!
//! ## Rule-level delta filtering (ablation A1)
//!
//! A rule only needs re-evaluation in round *n+1* if round *n* changed
//! a `(chain, method)` relation its positive body literals can read
//! (negated literals and the head's `v*` reads are frozen within a
//! stratum by conditions (a), (c) and (d)). With filtering off, every
//! rule of the stratum is evaluated every round — the naive semantics,
//! kept as a benchmark baseline.
//!
//! ## Version linearity (§5)
//!
//! Every version touched by an applied update is recorded in a
//! [`LinearityTracker`]; the paper's runtime check rejects the program
//! at the first pair of incomparable versions of one object.

use std::time::Instant;

use ruvo_lang::{Program, Rule};
use ruvo_obase::{exists_sym, ChangedSince, LinearityTracker, LinearityViolation, ObjectBase};
use ruvo_term::{Chain, Const, FastHashMap, FastHashSet, Symbol, Vid};

use crate::error::EvalError;
use crate::plan::IndexPlan;
use crate::stratify::{stratify, stratify_relaxed, Stratification, StratifyError};
use crate::tp::{self, Fired, FiredSet};
use crate::trace::{EvalStats, ParallelStats, RoundTrace, StratumTrace};

/// How much trace detail [`UpdateEngine::run`] records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Counters only.
    Off,
    /// Per-stratum summaries (cheap; the default).
    #[default]
    Strata,
    /// Per-round entries as well.
    Rounds,
}

/// What to do with programs the static conditions (a)–(d) reject.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CyclePolicy {
    /// Reject statically (the paper's §4 semantics; the default).
    #[default]
    Reject,
    /// Accept via [`crate::stratify::stratify_relaxed`]: the offending
    /// SCC evaluates as one stratum under a runtime *stability check* —
    /// every fired ground update must keep firing in every later round
    /// of its stratum; a violation rejects the run with
    /// [`EvalError::Unstable`]. Statically stratifiable programs get
    /// identical strata and identical results under either policy.
    RuntimeStability,
}

/// Engine tuning knobs.
///
/// ```
/// use ruvo_core::EngineConfig;
///
/// // The default configuration evaluates semi-naively through the
/// // value-keyed method index; `naive_eval(true)` forces the original
/// // full-scan path for differential testing.
/// let fast = EngineConfig::default();
/// assert!(fast.semi_naive);
/// let slow = EngineConfig::default().naive_eval(true);
/// assert!(!slow.semi_naive);
/// ```
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// §5 runtime version-linearity check (default on). Disabling it is
    /// only meant for the A2 ablation benchmark; `new_object_base` then
    /// validates lazily.
    pub check_linearity: bool,
    /// Rule-level delta filtering (default on; ablation A1).
    pub delta_filtering: bool,
    /// Indexed, semi-naive evaluation (default on): scans with a bound
    /// key go through the value-keyed method index, and from the second
    /// round of a stratum on, rules are re-evaluated *seeded* — only
    /// joins touching an object the previous round changed are
    /// enumerated. Seeding refines the trigger machinery of
    /// [`EngineConfig::delta_filtering`], so with filtering off (the
    /// A1 ablation baseline) every round is a full re-evaluation and
    /// only the indexed scans remain. Disable (via
    /// [`EngineConfig::naive_eval`]) to force the original full-scan
    /// path; all combinations compute identical results.
    pub semi_naive: bool,
    /// Safety valve for the per-stratum fixpoint loop.
    pub max_rounds_per_stratum: usize,
    /// Trace detail.
    pub trace: TraceLevel,
    /// Evaluate the rules of a round on multiple threads.
    pub parallel: bool,
    /// Worker cap for parallel evaluation: the number of threads the
    /// run's worker pool (`core::pool`) is created with. `0` (the
    /// default) means "auto" — use the host's available parallelism.
    /// Ignored unless [`EngineConfig::parallel`] is on. The computed
    /// results are bit-identical for every value (see ARCHITECTURE.md
    /// §"Parallel evaluation"); only wall-clock telemetry varies.
    pub threads: usize,
    /// Handling of statically non-stratifiable programs (§6 extension).
    pub cycles: CyclePolicy,
    /// Run the stability check on *every* stratum, not just flagged
    /// ones (default off). For statically stratified programs stability
    /// is a theorem following from conditions (a)–(d); this knob lets
    /// tests validate that theorem empirically. Forces full rule
    /// re-evaluation per round (disables delta filtering benefits).
    pub verify_stability: bool,
    /// Demand-driven query evaluation (default on): `Database::query`
    /// rewrites the program against the goal's bound arguments (see
    /// [`crate::query`]) so only the demanded slice of the object base
    /// is computed. With `demand: false` every query runs the full
    /// fixpoint and filters — the escape hatch, and the oracle the
    /// differential query tests compare against.
    pub demand: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            check_linearity: true,
            delta_filtering: true,
            semi_naive: true,
            max_rounds_per_stratum: 1_000_000,
            trace: TraceLevel::Strata,
            parallel: false,
            threads: 0,
            cycles: CyclePolicy::Reject,
            verify_stability: false,
            demand: true,
        }
    }
}

impl EngineConfig {
    /// Escape hatch: force the pre-index, full-scan evaluation path
    /// (`naive_eval(true)` sets [`EngineConfig::semi_naive`] to
    /// `false`). Meant for differential testing and the A5 ablation
    /// benchmark; results are identical either way.
    pub fn naive_eval(mut self, on: bool) -> Self {
        self.semi_naive = !on;
        self
    }

    /// Toggle demand-driven query evaluation (see
    /// [`EngineConfig::demand`]); `demand(false)` forces every query
    /// through the full-evaluation path.
    pub fn demand(mut self, on: bool) -> Self {
        self.demand = on;
        self
    }

    /// Cap parallel evaluation at `n` worker threads (`0` = auto,
    /// see [`EngineConfig::threads`]).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }
}

/// The worker count a run's pool is created with: 1 when parallel
/// evaluation is off, else the configured cap or (for `threads: 0`)
/// the host's available parallelism.
fn effective_workers(config: &EngineConfig) -> usize {
    if !config.parallel {
        return 1;
    }
    if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// A program with every run-independent analysis done once: the §4
/// stratification (under a fixed [`CyclePolicy`]), the per-rule
/// delta-filter triggers, and the [`IndexPlan`] driving indexed,
/// semi-naive evaluation.
///
/// This is the compiled artifact behind [`crate::Prepared`]: build it
/// once with [`CompiledProgram::compile`], then evaluate it any number
/// of times with [`run_compiled`] without re-parsing, re-validating or
/// re-stratifying. [`UpdateEngine::run`] compiles on every call; the
/// [`crate::Database`] facade amortizes compilation across
/// applications.
///
/// ```
/// use ruvo_core::{run_compiled, CompiledProgram, CyclePolicy, EngineConfig};
/// use ruvo_lang::Program;
/// use ruvo_obase::ObjectBase;
/// use ruvo_term::{int, oid};
///
/// let program = Program::parse(
///     "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S + 50.",
/// ).unwrap();
/// let compiled = CompiledProgram::compile(program, CyclePolicy::Reject).unwrap();
/// assert_eq!(compiled.stratification().strata.len(), 1);
///
/// // Evaluate it on any prepared base, as often as needed.
/// let mut ob = ObjectBase::parse("henry.isa -> empl. henry.sal -> 250.").unwrap();
/// ob.ensure_exists();
/// let outcome = run_compiled(&compiled, &EngineConfig::default(), ob).unwrap();
/// assert_eq!(outcome.new_object_base().lookup1(oid("henry"), "sal"), vec![int(300)]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    program: Program,
    analysis: Analysis,
    cycles: CyclePolicy,
    /// The pretty-printed source, rendered lazily once per compiled
    /// program: the durable commit path logs it on every application,
    /// and re-rendering per commit would tax the writer's critical
    /// section.
    source: std::sync::OnceLock<std::sync::Arc<str>>,
}

/// The run-independent analysis of a program: stratification, per-
/// stratum runtime-check flags, per-rule delta-filter triggers, the
/// per-rule [`IndexPlan`] (scan hints + per-literal read sets), and
/// the rule dependency graph (read/write sets, commutativity,
/// intra-stratum components).
#[derive(Clone, Debug)]
struct Analysis {
    stratification: Stratification,
    risky: Vec<bool>,
    triggers: Vec<Option<FastHashSet<(Chain, Symbol)>>>,
    index_plan: IndexPlan,
    deps: crate::deps::RuleDepGraph,
}

impl Analysis {
    fn of(program: &Program, cycles: CyclePolicy) -> Result<Analysis, StratifyError> {
        let (stratification, risky) = match cycles {
            CyclePolicy::Reject => {
                let s = stratify(program)?;
                let n = s.strata.len();
                (s, vec![false; n])
            }
            CyclePolicy::RuntimeStability => {
                let relaxed = stratify_relaxed(program);
                (relaxed.stratification, relaxed.needs_runtime_check)
            }
        };
        let triggers = program.rules.iter().map(rule_triggers).collect();
        let index_plan = IndexPlan::of(program);
        let matrix = crate::check::commutativity(program, &stratification);
        let deps = crate::deps::RuleDepGraph::build(program, &stratification, matrix);
        Ok(Analysis { stratification, risky, triggers, index_plan, deps })
    }
}

impl CompiledProgram {
    /// Stratify `program` under `cycles` and precompute the rule
    /// triggers. Fails exactly when [`UpdateEngine::stratify`] would.
    pub fn compile(
        program: Program,
        cycles: CyclePolicy,
    ) -> Result<CompiledProgram, StratifyError> {
        let analysis = Analysis::of(&program, cycles)?;
        Ok(CompiledProgram { program, analysis, cycles, source: std::sync::OnceLock::new() })
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The program's re-parseable source text, rendered once and
    /// cached (shared handle; cloning is O(1)).
    pub fn source_text(&self) -> std::sync::Arc<str> {
        std::sync::Arc::clone(
            self.source.get_or_init(|| std::sync::Arc::from(self.program.to_string())),
        )
    }

    /// The stratification computed at compile time.
    pub fn stratification(&self) -> &Stratification {
        &self.analysis.stratification
    }

    /// The cycle policy the program was compiled under.
    pub fn cycle_policy(&self) -> CyclePolicy {
        self.cycles
    }

    /// The rule×rule commutativity matrix under this compilation's
    /// stratification — see [`crate::check`] for the semantics. An
    /// all-commuting stratum may evaluate its rules in any order (the
    /// precondition for parallel fixpoint evaluation). Computed once
    /// at compile time as part of the dependency graph.
    pub fn commutativity(&self) -> crate::check::CommutativityMatrix {
        self.analysis.deps.commutativity().clone()
    }

    /// The rule dependency graph: per-rule read/write sets, typed
    /// same-stratum edges, and the connected-component partition the
    /// parallel scheduler groups step-1 scans by — see [`crate::deps`].
    pub fn deps(&self) -> &crate::deps::RuleDepGraph {
        &self.analysis.deps
    }
}

/// The update-program interpreter.
///
/// ```
/// use ruvo_core::UpdateEngine;
/// use ruvo_lang::Program;
/// use ruvo_obase::ObjectBase;
/// use ruvo_term::{int, oid};
///
/// let ob = ObjectBase::parse("henry.isa -> empl. henry.sal -> 250.").unwrap();
/// let program = Program::parse(
///     "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
/// ).unwrap();
/// let outcome = UpdateEngine::new(program).run(&ob).unwrap();
/// assert_eq!(outcome.new_object_base().lookup1(oid("henry"), "sal"), vec![int(275)]);
/// ```
#[derive(Clone, Debug)]
pub struct UpdateEngine {
    program: Program,
    config: EngineConfig,
}

impl UpdateEngine {
    /// An engine with default configuration.
    pub fn new(program: Program) -> UpdateEngine {
        UpdateEngine { program, config: EngineConfig::default() }
    }

    /// An engine with explicit configuration.
    pub fn with_config(program: Program, config: EngineConfig) -> UpdateEngine {
        UpdateEngine { program, config }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Compute the §4 stratification without running anything.
    pub fn stratify(&self) -> Result<Stratification, StratifyError> {
        stratify(&self.program)
    }

    /// Run the update-program on `ob`, producing `result(P)` (all
    /// versions) and the machinery to extract the new object base.
    ///
    /// `ob` itself is not modified; evaluation works on a prepared
    /// working copy with `exists` facts added (§3). The copy is an
    /// O(shards) copy-on-write clone, so the pre-evaluation cost is
    /// the `exists` materialization — O(#versions) the first time for
    /// a given base, O(1) when `ob` is already prepared (see
    /// [`ObjectBase::ensure_exists`]); after that, evaluation pays
    /// only for the versions and index shards the update dirties.
    pub fn run(&self, ob: &ObjectBase) -> Result<Outcome, EvalError> {
        self.run_owned(ob.clone())
    }

    /// Like [`UpdateEngine::run`], but consumes the object base. (With
    /// O(shards) clones this is no longer a meaningful saving; it
    /// remains for callers that already own a base they are done
    /// with.)
    pub fn run_owned(&self, mut ob: ObjectBase) -> Result<Outcome, EvalError> {
        ob.ensure_exists();
        self.run_prepared(ob)
    }

    /// Run on an already *prepared* object base: every version must
    /// carry its `exists` fact (see [`ObjectBase::ensure_exists`]).
    /// This is the zero-copy entry point for benchmarks that account
    /// for preparation separately.
    ///
    /// Analyzes (stratifies) the program on every call; use
    /// [`CompiledProgram::compile`] + [`run_compiled`] (or the
    /// [`crate::Database`] facade) to amortize that work.
    pub fn run_prepared(&self, work: ObjectBase) -> Result<Outcome, EvalError> {
        let analysis = Analysis::of(&self.program, self.config.cycles)?;
        run_analyzed(&self.program, analysis, &self.config, work)
    }
}

/// Evaluate a [`CompiledProgram`] on a prepared object base (every
/// version must carry its `exists` fact; see
/// [`ObjectBase::ensure_exists`]). Performs **no** parsing,
/// validation or stratification — all of that happened at compile
/// time. `config.cycles` is ignored in favor of the policy the
/// program was compiled under.
pub fn run_compiled(
    compiled: &CompiledProgram,
    config: &EngineConfig,
    work: ObjectBase,
) -> Result<Outcome, EvalError> {
    // Only the (small) stratification is cloned per run, because the
    // reusable CompiledProgram keeps its copy; the rule triggers are
    // borrowed throughout.
    run_loop(&compiled.program, &compiled.analysis, config, work)
        .map(|parts| parts.into_outcome(compiled.analysis.stratification.clone()))
}

/// Like [`run_compiled`] for a freshly computed [`Analysis`] that can
/// be consumed: the one-shot path, with no per-run clones at all.
fn run_analyzed(
    program: &Program,
    analysis: Analysis,
    config: &EngineConfig,
    work: ObjectBase,
) -> Result<Outcome, EvalError> {
    run_loop(program, &analysis, config, work)
        .map(|parts| parts.into_outcome(analysis.stratification))
}

/// Everything [`run_loop`] produces except the stratification (which
/// the callers own or clone as appropriate).
struct OutcomeParts {
    result: ObjectBase,
    stats: EvalStats,
    stratum_traces: Vec<StratumTrace>,
    round_traces: Vec<RoundTrace>,
    finals: Option<LinearityTracker>,
    changed: ChangedSince,
}

impl OutcomeParts {
    fn into_outcome(self, stratification: Stratification) -> Outcome {
        Outcome {
            result: self.result,
            stratification,
            stats: self.stats,
            stratum_traces: self.stratum_traces,
            round_traces: self.round_traces,
            finals: self.finals,
            changed: self.changed,
        }
    }
}

/// One rule evaluation of a fixpoint round: the whole rule, or — for a
/// semi-naive round — the rule with one scan step seeded from the
/// previous round's delta.
struct EvalTask {
    rule: usize,
    seed: Option<(usize, FastHashSet<Const>)>,
}

/// Decide what to evaluate this round. `changed` is `None` for the
/// first round of a stratum (evaluate everything, unseeded); later
/// rounds skip rules whose positive body literals read nothing the
/// previous round changed and — under semi-naive evaluation — replace
/// full re-evaluation with one delta-seeded pass per changed body
/// literal.
fn round_tasks(
    stratum: &[usize],
    changed: Option<&ChangedSince>,
    checked: bool,
    config: &EngineConfig,
    triggers: &[Option<FastHashSet<(Chain, Symbol)>>],
    index_plan: &IndexPlan,
) -> Vec<EvalTask> {
    let full = |r: usize| EvalTask { rule: r, seed: None };
    let Some(ch) = changed else {
        return stratum.iter().map(|&r| full(r)).collect();
    };
    let mut tasks = Vec::new();
    for &r in stratum {
        if checked || !config.delta_filtering {
            tasks.push(full(r));
            continue;
        }
        // A rule with no trigger set (VID-variable atom) can read any
        // relation: always re-evaluate, never seed.
        let Some(ts) = &triggers[r] else {
            tasks.push(full(r));
            continue;
        };
        if !ts.iter().any(|t| ch.contains(t)) {
            continue; // delta-filtered out
        }
        if !config.semi_naive {
            tasks.push(full(r));
            continue;
        }
        // Semi-naive: one seeded pass per scan step whose literal reads
        // a changed relation, seeded with the objects that changed it.
        let before = tasks.len();
        let mut fallback = false;
        for (step, reads) in index_plan.rules[r].reads.iter().enumerate() {
            let Some(keys) = reads else {
                fallback = true;
                break;
            };
            let mut seed: FastHashSet<Const> = FastHashSet::default();
            for key in keys {
                if let Some(bases) = ch.bases(key) {
                    seed.extend(bases.iter().copied());
                }
            }
            if !seed.is_empty() {
                tasks.push(EvalTask { rule: r, seed: Some((step, seed)) });
            }
        }
        if fallback || tasks.len() == before {
            // Defensive: the trigger intersected, so some literal must
            // be seedable; if not, fall back to a full evaluation.
            tasks.truncate(before);
            tasks.push(full(r));
        }
    }
    tasks
}

/// The stratum-by-stratum fixpoint evaluation shared by every entry
/// point.
fn run_loop(
    program: &Program,
    analysis: &Analysis,
    config: &EngineConfig,
    mut work: ObjectBase,
) -> Result<OutcomeParts, EvalError> {
    let started = Instant::now();
    let Analysis { stratification, risky, triggers, index_plan, deps } = analysis;

    let mut tracker = config.check_linearity.then(LinearityTracker::new);
    let mut stats = EvalStats::default();
    // One pool for the whole run; every round's parallel regions (the
    // step-1 scans and the step-2+3 apply) borrow it. With parallel
    // evaluation off this is a width-1 pool and nothing ever spawns.
    let pool = crate::pool::WorkerPool::new(effective_workers(config));
    if config.parallel {
        stats.parallel.workers = pool.workers();
    }
    let ctx = RoundCtx { program, plans: index_plan, config, deps, pool: &pool };
    let mut stratum_traces = Vec::new();
    let mut round_traces = Vec::new();
    let mut total_changed = ChangedSince::new();

    for (si, stratum) in stratification.strata.iter().enumerate() {
        // Flagged strata (and all strata under `verify_stability`)
        // re-evaluate every rule each round and verify that fired
        // updates keep firing.
        let checked = config.verify_stability || risky[si];
        let mut fired = FiredSet::new();
        // Accumulated fired updates per created version: §3's step 3
        // applies the *full* `T¹` to each relevant version's copy,
        // so chained modifies on one version (`(a,b)` then `(b,c)`)
        // keep every to-value regardless of firing round.
        let mut by_version: FastHashMap<Vid, Vec<Fired>> = FastHashMap::default();
        // `None` marks the first round: evaluate everything.
        let mut changed: Option<ChangedSince> = None;
        let mut round = 0usize;
        loop {
            round += 1;
            if round > config.max_rounds_per_stratum {
                return Err(EvalError::RoundLimit {
                    stratum: si,
                    limit: config.max_rounds_per_stratum,
                });
            }
            let tasks =
                round_tasks(stratum, changed.as_ref(), checked, config, triggers, index_plan);
            // Distinct rules touched this round (tasks per rule are
            // contiguous, so checking the last entry suffices).
            let mut to_eval: Vec<usize> = Vec::new();
            for task in &tasks {
                if to_eval.last() != Some(&task.rule) {
                    to_eval.push(task.rule);
                }
            }
            stats.rule_evaluations += to_eval.len();
            stats.rule_evaluations_skipped += stratum.len() - to_eval.len();
            stats.rule_evaluations_seeded += tasks.iter().filter(|t| t.seed.is_some()).count();

            let new_fired = collect_round(&ctx, &work, &tasks, &mut stats.parallel);
            if checked && round > 1 {
                // Stability: T¹ w.r.t. the current interpretation
                // must still contain every previously fired update.
                let current: FastHashSet<&Fired> = new_fired.iter().collect();
                if let Some(lost) = fired.iter().find(|f| !current.contains(f)) {
                    return Err(EvalError::Unstable {
                        stratum: si,
                        round,
                        update: lost.to_string(),
                    });
                }
            }
            let delta: Vec<Fired> =
                new_fired.into_iter().filter(|f| fired.insert(f.clone())).collect();

            if config.trace >= TraceLevel::Rounds {
                round_traces.push(RoundTrace {
                    stratum: si,
                    round,
                    evaluated: to_eval,
                    new_fired: delta.len(),
                    touched: 0, // patched below if updates applied
                });
            }
            stats.rounds += 1;
            if delta.is_empty() {
                break;
            }
            // Re-apply the full accumulated update set of every
            // version the delta touches (idempotent for ins/del,
            // required for mod chains; see module docs). The affected
            // versions are kept in delta first-appearance order so the
            // apply order is canonical — identical for the serial and
            // every parallel configuration.
            let mut affected: Vec<Vid> = Vec::new();
            let mut affected_set: FastHashSet<Vid> = FastHashSet::default();
            for f in delta {
                let created = f.created();
                if affected_set.insert(created) {
                    affected.push(created);
                }
                by_version.entry(created).or_default().push(f);
            }
            let apply_list: Vec<Fired> =
                affected.iter().flat_map(|v| by_version[v].iter().cloned()).collect();
            let report = if pool.workers() >= 2 {
                tp::apply_updates_pooled(&mut work, &apply_list, &pool, &mut stats.parallel)
            } else {
                tp::apply_updates(&mut work, &apply_list)
            };
            if let Some(rt) = round_traces.last_mut() {
                rt.touched = report.touched.len();
            }
            stats.versions_created += report.created.len();
            stats.facts_copied += report.facts_copied;
            if let Some(tr) = &mut tracker {
                for &v in &report.touched {
                    tr.record(v)?;
                }
            }
            total_changed.merge(&report.changed);
            changed = Some(report.changed);
        }
        stats.fired_updates += fired.len();
        if config.trace >= TraceLevel::Strata {
            stratum_traces.push(StratumTrace {
                stratum: si,
                rules: stratum.clone(),
                rounds: round,
                fired: fired.len(),
            });
        }
    }

    stats.strata = stratification.strata.len();
    stats.elapsed = started.elapsed();
    Ok(OutcomeParts {
        result: work,
        stats,
        stratum_traces,
        round_traces,
        finals: tracker,
        changed: total_changed,
    })
}

/// Minimum seed size at which a seeded task is split into per-shard
/// sub-tasks. Splitting is conditioned only on
/// [`EngineConfig::parallel`] and this constant — never on the worker
/// count — so every parallel width sees the same sub-task list and
/// produces the same merged delta sequence.
const SEED_SPLIT_MIN: usize = 32;

/// Minimum object count at which a *full* (unseeded) scan — a round-1
/// task, or a later round's unseedable fallback — is split by shard
/// route as well. Like [`SEED_SPLIT_MIN`], a pure function of the
/// state and the config, never of the worker count.
const FULL_SPLIT_MIN: usize = 32;

/// The first `Scan` step of a rule's compiled plan — the step a full
/// evaluation can be split at. Seeding that step with a partition of
/// the *entire* object set is an exact cover of the full scan: every
/// match binds some version there, and its base routes the match to
/// exactly one partition. `None` for fully-ground rules (no scan
/// step), which are too cheap to split anyway.
fn first_scan_step(rule: &Rule) -> Option<usize> {
    rule.plan.steps.iter().position(|s| matches!(s, ruvo_lang::PlannedLiteral::Scan(_)))
}

/// A unit of step-1 scan work after seed splitting: a round task as
/// issued by [`round_tasks`], or one shard's slice of a split seed.
enum ScanJob<'a> {
    Whole(&'a EvalTask),
    Split { rule: usize, step: usize, seed: FastHashSet<Const> },
}

/// The run-constant inputs of [`collect_round`]: everything a round's
/// scan phase reads that does not change between rounds or strata.
#[derive(Clone, Copy)]
struct RoundCtx<'a> {
    program: &'a Program,
    plans: &'a IndexPlan,
    config: &'a EngineConfig,
    deps: &'a crate::deps::RuleDepGraph,
    pool: &'a crate::pool::WorkerPool,
}

/// Step 1 of `T_P` over a round's evaluation tasks. Under
/// [`EngineConfig::semi_naive`] scans follow the compiled index plan
/// (and seeds, for seeded tasks); otherwise every task is a naive
/// full-scan rule evaluation.
///
/// With [`EngineConfig::parallel`] on, the round's tasks are first
/// expanded into scan *units* in task order — large seeded tasks are
/// split by shard route ([`ruvo_obase::base_shard`]) into per-shard
/// sub-units (intra-rule parallelism), everything else stays one
/// unit. Units are then scheduled onto the pool one job per
/// *dependency component* ([`crate::deps::RuleDepGraph`]): whole-rule
/// units of dependent rules bundle into a single sequential job
/// (their scans chase the same relations), while independent
/// components — and every split sub-unit — spread across workers.
///
/// Both the unit list and the job grouping depend only on the tasks
/// and the compiled program, never on the worker count, and each
/// unit's output is merged back in *unit* order (slot-keyed), so the
/// fired sequence is identical to the serial path at every thread
/// width (see [`crate::pool`] for the determinism contract).
fn collect_round(
    ctx: &RoundCtx<'_>,
    ob: &ObjectBase,
    tasks: &[EvalTask],
    par: &mut ParallelStats,
) -> Vec<Fired> {
    let RoundCtx { program, plans, config, deps, pool } = *ctx;
    let run = |rule: usize, seed: Option<(usize, &FastHashSet<Const>)>, out: &mut Vec<Fired>| {
        let r = &program.rules[rule];
        if !config.semi_naive {
            tp::collect_rule(ob, r, out);
            return;
        }
        let plan = &plans.rules[rule];
        match seed {
            Some((step, seed)) => tp::collect_rule_seeded(ob, r, plan, step, seed, out),
            None => tp::collect_rule_planned(ob, r, plan, out),
        }
    };
    if !config.parallel {
        let mut out = Vec::new();
        for task in tasks {
            run(task.rule, task.seed.as_ref().map(|(s, set)| (*s, set)), &mut out);
        }
        return out;
    }
    let shard_buckets = |objs: &mut dyn Iterator<Item = Const>| -> Vec<FastHashSet<Const>> {
        let mut buckets: Vec<FastHashSet<Const>> =
            std::iter::repeat_with(FastHashSet::default).take(ruvo_obase::SHARD_COUNT).collect();
        for c in objs {
            buckets[ruvo_obase::base_shard(c)].insert(c);
        }
        buckets
    };
    // The whole-object-set partition for full-scan splitting, shared
    // across this round's full tasks; built (and the object set
    // counted) at most once per round, and only on rounds that
    // actually carry a full task.
    let mut full_buckets: Option<Vec<FastHashSet<Const>>> = None;
    let mut object_count: Option<usize> = None;
    let mut units: Vec<ScanJob> = Vec::new();
    for task in tasks {
        match &task.seed {
            Some((step, seed)) if seed.len() >= SEED_SPLIT_MIN => {
                par.seed_splits += 1;
                let buckets = shard_buckets(&mut seed.iter().copied());
                units.extend(
                    buckets.into_iter().filter(|b| !b.is_empty()).map(|seed| ScanJob::Split {
                        rule: task.rule,
                        step: *step,
                        seed,
                    }),
                );
            }
            None if config.semi_naive
                && deps.components()[deps.component_of(task.rule)].len() == 1
                && *object_count.get_or_insert_with(|| ob.objects().count()) >= FULL_SPLIT_MIN =>
            {
                // Round-1 full scans (and unseedable fallbacks) split
                // too: seed the rule's first scan step with the whole
                // object set, partitioned by shard route — an exact
                // cover of the full scan (see [`first_scan_step`]).
                // Only rules alone in their dependency component
                // split; dependent rules keep the component bundling
                // (their scans chase the same relations, so shard
                // fan-out would just shred that locality).
                let Some(step) = first_scan_step(&program.rules[task.rule]) else {
                    units.push(ScanJob::Whole(task));
                    continue;
                };
                par.full_splits += 1;
                let buckets =
                    full_buckets.get_or_insert_with(|| shard_buckets(&mut ob.objects())).clone();
                units.extend(
                    buckets.into_iter().filter(|b| !b.is_empty()).map(|seed| ScanJob::Split {
                        rule: task.rule,
                        step,
                        seed,
                    }),
                );
            }
            _ => units.push(ScanJob::Whole(task)),
        }
    }
    par.scan_subtasks += units.len();
    // One pool job per dependency component (created at its first
    // unit, so job order follows unit order); splits stay singletons.
    let mut jobs: Vec<Vec<usize>> = Vec::new();
    let mut job_of_component: FastHashMap<usize, usize> = FastHashMap::default();
    for (u, unit) in units.iter().enumerate() {
        match unit {
            ScanJob::Split { .. } => jobs.push(vec![u]),
            ScanJob::Whole(task) => {
                let c = deps.component_of(task.rule);
                match job_of_component.entry(c) {
                    std::collections::hash_map::Entry::Occupied(e) => jobs[*e.get()].push(u),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(jobs.len());
                        jobs.push(vec![u]);
                    }
                }
            }
        }
    }
    for job in &jobs {
        if job.len() > 1 {
            par.component_jobs += 1;
            par.component_units += job.len();
            par.component_units_max = par.component_units_max.max(job.len());
        }
    }
    let (outs, timing) = pool.run(jobs.len(), |i| {
        jobs[i]
            .iter()
            .map(|&u| {
                let mut out = Vec::new();
                match &units[u] {
                    ScanJob::Whole(task) => {
                        run(task.rule, task.seed.as_ref().map(|(s, set)| (*s, set)), &mut out)
                    }
                    ScanJob::Split { rule, step, seed } => {
                        run(*rule, Some((*step, seed)), &mut out)
                    }
                }
                (u, out)
            })
            .collect::<Vec<_>>()
    });
    par.scan_wall += timing.wall;
    par.scan_busy_max += timing.busy_max;
    par.scan_busy_total += timing.busy_total;
    // Slot-keyed merge: each unit's output lands back at its unit
    // index, so flattening reproduces the serial task order exactly.
    let mut slots: Vec<Vec<Fired>> = (0..units.len()).map(|_| Vec::new()).collect();
    for job in outs {
        for (u, out) in job {
            slots[u] = out;
        }
    }
    slots.into_iter().flatten().collect()
}

/// The `(chain, method)` relations a rule's positive body literals can
/// read — if none of them changed in a round, the rule's matches are
/// unchanged (see the module docs for why negated literals and head
/// reads need no triggers). `None` means the rule must be re-evaluated
/// every round: a VID-variable atom (§6 extension) can read any
/// version. This is the union of [`crate::plan::literal_reads`] over
/// the positive body literals.
fn rule_triggers(rule: &Rule) -> Option<FastHashSet<(Chain, Symbol)>> {
    let mut out: FastHashSet<(Chain, Symbol)> = FastHashSet::default();
    for lit in &rule.body {
        if !lit.positive {
            continue;
        }
        match crate::plan::literal_reads(lit) {
            Some(keys) => out.extend(keys),
            None => return None,
        }
    }
    Some(out)
}

/// How to pick each object's contribution to `ob'` when `result(P)` is
/// *not* version-linear — §6's "alternatives to version-linearity may
/// be interesting", made concrete.
///
/// Only meaningful together with `check_linearity: false` (the default
/// runtime check rejects non-linear results before extraction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FinalVersionPolicy {
    /// The paper's §5 rule: reject non-linear version sets.
    #[default]
    RequireLinear,
    /// Per object, the deepest *maximal* version wins; equal depths are
    /// resolved by the total order on update chains (deterministic but
    /// arbitrary — "the update branch that got furthest").
    DeepestWins,
    /// Union the states of all maximal versions. Branches are treated
    /// as independent update threads whose effects combine — natural
    /// under the language's set-valued method semantics, and the
    /// analogue of version-merge in OODB versioning \[Kim91\].
    MergeMaximal,
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct Outcome {
    result: ObjectBase,
    stratification: Stratification,
    stats: EvalStats,
    stratum_traces: Vec<StratumTrace>,
    round_traces: Vec<RoundTrace>,
    finals: Option<LinearityTracker>,
    changed: ChangedSince,
}

impl Outcome {
    /// `result(P)`: the full object base including every version
    /// created during evaluation.
    pub fn result(&self) -> &ObjectBase {
        &self.result
    }

    /// The stratification that was used.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Run statistics.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Per-stratum traces (if `TraceLevel::Strata` or higher).
    pub fn stratum_traces(&self) -> &[StratumTrace] {
        &self.stratum_traces
    }

    /// Per-round traces (if `TraceLevel::Rounds`).
    pub fn round_traces(&self) -> &[RoundTrace] {
        &self.round_traces
    }

    /// The run's accumulated semantic delta: per `(chain, method)`
    /// relation, the objects whose fact sets the evaluation changed.
    pub fn changed(&self) -> &ChangedSince {
        &self.changed
    }

    /// The final version of every object in `result(P)` (§5), validated
    /// for version-linearity when the runtime check was disabled.
    pub fn final_versions(&self) -> Result<FastHashMap<Const, Vid>, LinearityViolation> {
        let mut out: FastHashMap<Const, Vid> = FastHashMap::default();
        match &self.finals {
            Some(tracker) => {
                for base in self.result.objects() {
                    out.insert(base, tracker.final_version(base));
                }
            }
            None => {
                for base in self.result.objects() {
                    let mut deepest = Vid::object(base);
                    for v in self.result.versions_of(base) {
                        if deepest.is_subterm_of(v) {
                            deepest = v;
                        }
                    }
                    for v in self.result.versions_of(base) {
                        if !v.is_subterm_of(deepest) {
                            return Err(LinearityViolation {
                                object: base,
                                existing: deepest,
                                conflicting: v,
                            });
                        }
                    }
                    out.insert(base, deepest);
                }
            }
        }
        Ok(out)
    }

    /// §5: derive the updated object base `ob'` by copying, for each
    /// object, the method-applications of its final version (dropping
    /// the system method `exists`; objects whose final state is empty
    /// disappear).
    pub fn try_new_object_base(&self) -> Result<ObjectBase, LinearityViolation> {
        let finals = self.final_versions()?;
        let exists = exists_sym();
        let mut out = ObjectBase::new();
        for (base, fv) in finals {
            let Some(state) = self.result.version(fv) else { continue };
            for (method, app) in state.iter() {
                if method != exists {
                    out.insert(Vid::object(base), method, app.args.clone(), app.result);
                }
            }
        }
        Ok(out)
    }

    /// The *maximal* versions of an object in `result(P)`: those that
    /// are not a proper subterm of another version. A version-linear
    /// object has exactly one; branches have one per leaf.
    pub fn maximal_versions(&self, base: Const) -> Vec<Vid> {
        let versions: Vec<Vid> = self.result.versions_of(base).collect();
        let mut out: Vec<Vid> = versions
            .iter()
            .copied()
            .filter(|&v| !versions.iter().any(|&w| w != v && v.is_subterm_of(w)))
            .collect();
        out.sort_by_key(|v| (v.depth(), v.chain()));
        out
    }

    /// §5 extraction under an explicit [`FinalVersionPolicy`].
    ///
    /// `RequireLinear` is [`Outcome::try_new_object_base`]; the other
    /// policies never fail and resolve version branches as documented
    /// on the enum. On version-linear results all three agree.
    pub fn new_object_base_with(
        &self,
        policy: FinalVersionPolicy,
    ) -> Result<ObjectBase, LinearityViolation> {
        if policy == FinalVersionPolicy::RequireLinear {
            return self.try_new_object_base();
        }
        let exists = exists_sym();
        let mut out = ObjectBase::new();
        for base in self.result.objects() {
            let maximal = self.maximal_versions(base);
            let chosen: &[Vid] = match policy {
                FinalVersionPolicy::RequireLinear => unreachable!("handled above"),
                // maximal_versions sorts ascending by (depth, chain);
                // the last entry is the deepest (tie-broken) winner.
                FinalVersionPolicy::DeepestWins => {
                    maximal.last().map(std::slice::from_ref).unwrap_or(&[])
                }
                FinalVersionPolicy::MergeMaximal => &maximal,
            };
            for &v in chosen {
                let Some(state) = self.result.version(v) else { continue };
                for (method, app) in state.iter() {
                    if method != exists {
                        out.insert(Vid::object(base), method, app.args.clone(), app.result);
                    }
                }
            }
        }
        Ok(out)
    }

    /// The version timeline of one object in `result(P)` (see
    /// [`mod@crate::history`]); `None` for unknown objects or non-linear
    /// version sets.
    pub fn history(&self, base: Const) -> Option<crate::history::History> {
        crate::history::history(&self.result, base)
    }

    /// Like [`Outcome::try_new_object_base`].
    ///
    /// Library consumers running with
    /// [`EngineConfig::check_linearity`]`: false` (or
    /// [`crate::DatabaseBuilder::check_linearity`]`(false)`) should
    /// call [`Outcome::try_new_object_base`] instead and surface the
    /// violation as [`crate::ErrorKind::Linearity`] — this convenience
    /// wrapper is for contexts where the result is known linear
    /// (the check was on, so a non-linear result already failed the
    /// run) and a violation would be a programming error.
    ///
    /// # Panics
    /// Panics on a version-linearity violation — only possible when the
    /// engine ran with `check_linearity: false`. The panic is
    /// attributed to the caller (`#[track_caller]`) and names the
    /// violating version pair.
    #[track_caller]
    pub fn new_object_base(&self) -> ObjectBase {
        self.try_new_object_base().unwrap_or_else(|v| {
            panic!(
                "result(P) is not version-linear ({v}); \
                 use Outcome::try_new_object_base to handle this as ErrorKind::Linearity"
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruvo_term::{int, oid, UpdateKind};

    fn run(ob_src: &str, program_src: &str) -> Outcome {
        let ob = ObjectBase::parse(ob_src).unwrap();
        let program = Program::parse(program_src).unwrap();
        UpdateEngine::new(program).run(&ob).unwrap()
    }

    #[test]
    fn salary_raise_terminates_and_updates_once() {
        // §2.1: "each employee gets his salary raised exactly once".
        let outcome = run(
            "henry.isa -> empl. henry.sal -> 250. mary.isa -> empl. mary.sal -> 300.",
            "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.",
        );
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("henry"), "sal"), vec![int(275)]);
        assert_eq!(ob2.lookup1(oid("mary"), "sal"), vec![int(330)]);
        // The isa methods were carried over by the copy.
        assert_eq!(ob2.lookup1(oid("henry"), "isa"), vec![oid("empl")]);
        // result(P) holds both the old and the new version.
        let henry = Vid::object(oid("henry"));
        assert!(outcome.result().contains(henry, ruvo_term::sym("sal"), &[], int(250)));
        let mod_h = henry.apply(UpdateKind::Mod).unwrap();
        assert!(outcome.result().contains(mod_h, ruvo_term::sym("sal"), &[], int(275)));
    }

    #[test]
    fn update_facts_program() {
        let outcome = run("", "ins[adam].isa -> person. ins[adam].age -> 30.");
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("adam"), "isa"), vec![oid("person")]);
        assert_eq!(ob2.lookup1(oid("adam"), "age"), vec![int(30)]);
    }

    #[test]
    fn empty_program_is_identity() {
        let outcome = run("a.p -> 1. b.q -> x.", "");
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2, ObjectBase::parse("a.p -> 1. b.q -> x.").unwrap());
        assert_eq!(outcome.stats().strata, 0);
    }

    #[test]
    fn recursive_ancestors() {
        // §2.3's final example, with set-valued anc/parents.
        let outcome = run(
            "ann.isa -> person. bea.isa -> person / parents -> ann.
             cid.isa -> person / parents -> bea.",
            "ins[X].anc -> P <= X.isa -> person / parents -> P.
             ins[X].anc -> P <= ins(X).isa -> person / anc -> A & A.isa -> person / parents -> P.",
        );
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("cid"), "anc"), {
            let mut v = vec![oid("ann"), oid("bea")];
            v.sort();
            v
        });
        assert_eq!(ob2.lookup1(oid("bea"), "anc"), vec![oid("ann")]);
        assert_eq!(ob2.lookup1(oid("ann"), "anc"), vec![]);
        // The recursion needed more than one round in its stratum.
        assert!(outcome.stats().rounds > 2, "stats: {}", outcome.stats());
    }

    #[test]
    fn late_delete_within_stratum_is_applied() {
        // D1: the delete's body depends on an ins-fact derived in the
        // same stratum, so it fires in round 2; overwrite semantics
        // must still remove q -> 1 from del(b).
        let outcome = run(
            "a.p -> 1. b.q -> 1.",
            "ins[a].flag -> 1 <= a.p -> 1.
             del[b].q -> 1 <= ins(a).flag -> 1.",
        );
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("b"), "q"), vec![]);
        assert_eq!(ob2.lookup1(oid("a"), "flag"), vec![int(1)]);
    }

    #[test]
    fn linearity_violation_detected() {
        // §5's example shape: mod and del on the same initial version.
        let ob = ObjectBase::parse("o.m -> a.").unwrap();
        let program = Program::parse(
            "mod[o].m -> (a, b) <= o.m -> a.
             del[o].m -> a <= o.m -> a.",
        )
        .unwrap();
        let err = UpdateEngine::new(program).run(&ob).unwrap_err();
        match err {
            EvalError::Linearity(v) => assert_eq!(v.object, oid("o")),
            other => panic!("expected linearity violation, got {other:?}"),
        }
    }

    #[test]
    fn linearity_check_disabled_defers_error() {
        let ob = ObjectBase::parse("o.m -> a.").unwrap();
        let program = Program::parse(
            "mod[o].m -> (a, b) <= o.m -> a.
             del[o].m -> a <= o.m -> a.",
        )
        .unwrap();
        let config = EngineConfig { check_linearity: false, ..Default::default() };
        let outcome = UpdateEngine::with_config(program, config).run(&ob).unwrap();
        assert!(outcome.try_new_object_base().is_err());
    }

    #[test]
    fn deleted_object_disappears_from_new_base() {
        let outcome = run("victim.only -> 1. other.p -> 2.", "del[victim].* .");
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("victim"), "only"), vec![]);
        assert!(!ob2.objects().any(|o| o == oid("victim")));
        assert_eq!(ob2.lookup1(oid("other"), "p"), vec![int(2)]);
        // result(P) still knows the deletion happened (the exists note).
        let del_victim = Vid::object(oid("victim")).apply(UpdateKind::Del).unwrap();
        assert!(outcome.result().exists_fact(del_victim));
    }

    #[test]
    fn delta_filtering_matches_naive() {
        let ob_src = "ann.isa -> person. bea.isa -> person / parents -> ann.
                      cid.isa -> person / parents -> bea. dan.isa -> person / parents -> cid.";
        let prog_src = "ins[X].anc -> P <= X.isa -> person / parents -> P.
             ins[X].anc -> P <= ins(X).isa -> person / anc -> A & A.isa -> person / parents -> P.";
        let ob = ObjectBase::parse(ob_src).unwrap();
        let with = UpdateEngine::with_config(
            Program::parse(prog_src).unwrap(),
            EngineConfig { delta_filtering: true, ..Default::default() },
        )
        .run(&ob)
        .unwrap();
        let without = UpdateEngine::with_config(
            Program::parse(prog_src).unwrap(),
            EngineConfig { delta_filtering: false, ..Default::default() },
        )
        .run(&ob)
        .unwrap();
        assert_eq!(with.result(), without.result());
        assert_eq!(with.new_object_base(), without.new_object_base());
    }

    #[test]
    fn seminaive_matches_naive_on_paper_program() {
        // The paper's full enterprise program: three strata, negation,
        // del/mod update atoms in bodies, and a del[..].* head.
        let ob_src = "phil.isa -> empl / pos -> mgr / sal -> 4000.
                      bob.isa -> empl / boss -> phil / sal -> 4200.
                      sue.isa -> empl / boss -> phil / sal -> 4300.";
        let prog = "
            rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
            rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
            rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
            rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.
        ";
        let ob = ObjectBase::parse(ob_src).unwrap();
        let fast = UpdateEngine::new(Program::parse(prog).unwrap()).run(&ob).unwrap();
        let slow = UpdateEngine::with_config(
            Program::parse(prog).unwrap(),
            EngineConfig::default().naive_eval(true),
        )
        .run(&ob)
        .unwrap();
        assert_eq!(fast.result(), slow.result());
        assert_eq!(fast.new_object_base(), slow.new_object_base());
        assert_eq!(fast.stats().fired_updates, slow.stats().fired_updates);
    }

    #[test]
    fn seminaive_matches_naive_on_recursion() {
        // A multi-round recursion where seeding actually kicks in.
        let ob_src = "ann.isa -> person. bea.isa -> person / parents -> ann.
                      cid.isa -> person / parents -> bea. dan.isa -> person / parents -> cid.";
        let prog = "ins[X].anc -> P <= X.isa -> person / parents -> P.
             ins[X].anc -> P <= ins(X).isa -> person / anc -> A & A.isa -> person / parents -> P.";
        let ob = ObjectBase::parse(ob_src).unwrap();
        let fast = UpdateEngine::new(Program::parse(prog).unwrap()).run(&ob).unwrap();
        assert!(fast.stats().rule_evaluations_seeded > 0, "recursion must be delta-seeded");
        let slow = UpdateEngine::with_config(
            Program::parse(prog).unwrap(),
            EngineConfig::default().naive_eval(true),
        )
        .run(&ob)
        .unwrap();
        assert_eq!(slow.stats().rule_evaluations_seeded, 0, "naive path never seeds");
        assert_eq!(fast.result(), slow.result());
        // The run reports its accumulated semantic delta.
        let ins_chain = Chain::EMPTY.push(UpdateKind::Ins).unwrap();
        assert!(fast.changed().contains(&(ins_chain, ruvo_term::sym("anc"))));
    }

    #[test]
    fn seminaive_seeds_del_and_mod_body_scans() {
        // For statically stratified programs, conditions (a)/(d) pin
        // every writer of a del/mod-body literal's reads strictly below
        // the reader — *unless* the del/mod versions pre-exist in the
        // loaded object base (no del/mod heads, no (a)/(d) edges). Then
        // the whole program shares one stratum and an ins-rule firing
        // in round 2 moves `v*`, creating new del/mod-body matches that
        // only a seeded del/mod scan can find in round 3.
        let ob = ObjectBase::parse(
            "a.mark -> old.  a.tag -> 1.  a.late -> 1.
             del(ins(a)).tag -> 1.
             b.mark -> mold. b.late -> 1.
             mod(ins(b)).mark -> mnew. mod(ins(b)).tag -> 1.
             t.init -> 1.",
        )
        .unwrap();
        let prog = "
            w0: ins[t].go -> 1 <= t.init -> 1.
            w1: ins[X].mark -> new <= X.late -> 1 & ins(t).go -> 1.
            c1: ins[out1].got -> R <= del[ins(X)].mark -> R.
            c2: ins[out2].from -> F <= mod[ins(X)].mark -> (F, T).
        ";
        let fast = UpdateEngine::new(Program::parse(prog).unwrap()).run(&ob).unwrap();
        // One stratum, multiple rounds, and the consumers re-ran seeded.
        assert_eq!(fast.stratification().strata.len(), 1);
        assert!(fast.stats().rule_evaluations_seeded > 0);
        let ins_out1 = Vid::object(oid("out1")).apply(UpdateKind::Ins).unwrap();
        let ins_out2 = Vid::object(oid("out2")).apply(UpdateKind::Ins).unwrap();
        // Round-1 matches (v* = the initial versions)...
        assert!(fast.result().contains(ins_out1, ruvo_term::sym("got"), &[], oid("old")));
        assert!(fast.result().contains(ins_out2, ruvo_term::sym("from"), &[], oid("mold")));
        // ...and the round-3 matches found *through the seeded scans*
        // after w1 moved v* to ins(a)/ins(b) in round 2.
        assert!(fast.result().contains(ins_out1, ruvo_term::sym("got"), &[], oid("new")));
        assert!(fast.result().contains(ins_out2, ruvo_term::sym("from"), &[], oid("new")));
        // Differential: the naive path agrees exactly.
        let slow = UpdateEngine::with_config(
            Program::parse(prog).unwrap(),
            EngineConfig::default().naive_eval(true),
        )
        .run(&ob)
        .unwrap();
        assert_eq!(fast.result(), slow.result());
    }

    #[test]
    fn parallel_matches_sequential() {
        let ob_src = "phil.isa -> empl / pos -> mgr / sal -> 4000.
                      bob.isa -> empl / boss -> phil / sal -> 4200.";
        let prog = "
            rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
            rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
        ";
        let ob = ObjectBase::parse(ob_src).unwrap();
        let seq = UpdateEngine::new(Program::parse(prog).unwrap()).run(&ob).unwrap();
        let par = UpdateEngine::with_config(
            Program::parse(prog).unwrap(),
            EngineConfig { parallel: true, ..Default::default() },
        )
        .run(&ob)
        .unwrap();
        assert_eq!(seq.result(), par.result());
    }

    #[test]
    fn round_limit_triggers() {
        let ob = ObjectBase::parse("a.p -> 1. b.x -> 9. c.x -> 9.").unwrap();
        // Needs 3+ rounds: chain of derivations.
        let program = Program::parse(
            "ins[b].p -> 1 <= ins(a).p -> 1.
             ins[a].p -> 1 <= a.p -> 1.
             ins[c].p -> 1 <= ins(b).p -> 1.",
        )
        .unwrap();
        let config = EngineConfig { max_rounds_per_stratum: 2, ..Default::default() };
        let err = UpdateEngine::with_config(program.clone(), config).run(&ob).unwrap_err();
        assert!(matches!(err, EvalError::RoundLimit { .. }));
        // With enough rounds it completes.
        assert!(UpdateEngine::new(program).run(&ob).is_ok());
    }

    #[test]
    fn trace_levels_record() {
        let ob = ObjectBase::parse("a.p -> 1.").unwrap();
        let program = Program::parse("ins[a].q -> 1 <= a.p -> 1.").unwrap();
        let outcome = UpdateEngine::with_config(
            program,
            EngineConfig { trace: TraceLevel::Rounds, ..Default::default() },
        )
        .run(&ob)
        .unwrap();
        assert_eq!(outcome.stratum_traces().len(), 1);
        assert_eq!(outcome.round_traces().len(), 2); // firing round + empty round
        assert_eq!(outcome.round_traces()[0].new_fired, 1);
    }

    #[test]
    fn chained_modify_across_rounds_reaches_paper_fixpoint() {
        // m is set-valued with {a, b}. (a,b) fires in round 1; (b,c)
        // fires in round 2 (its body needs the ins-fact from round 1).
        // At the paper's fixpoint T¹ = {(a,b),(b,c)} and step 3 gives
        // mod(o).m = {b, c}. Applying only the round-2 delta to the
        // round-1 state would lose b (state {c}).
        let outcome = run(
            "o.m -> a. o.m -> b.",
            "ins[trigger].go -> 1 <= o.m -> a.
             mod[o].m -> (a, b) <= o.m -> a.
             mod[o].m -> (b, c) <= ins(trigger).go -> 1 & o.m -> b.",
        );
        // All three rules share one stratum: the chain is a genuinely
        // intra-stratum phenomenon.
        assert_eq!(outcome.stratification().strata.len(), 1);
        let ob2 = outcome.new_object_base();
        let mut got = ob2.lookup1(oid("o"), "m");
        got.sort();
        assert_eq!(got, vec![oid("b"), oid("c")]);
    }

    #[test]
    fn same_round_chained_modify_is_order_independent() {
        // Both mods fire in round 1; the result must not depend on the
        // order rules are listed in.
        for prog in [
            "mod[o].m -> (a, b) <= o.m -> a. mod[o].m -> (b, c) <= o.m -> b.",
            "mod[o].m -> (b, c) <= o.m -> b. mod[o].m -> (a, b) <= o.m -> a.",
        ] {
            let outcome = run("o.m -> a. o.m -> b.", prog);
            let mut got = outcome.new_object_base().lookup1(oid("o"), "m");
            got.sort();
            assert_eq!(got, vec![oid("b"), oid("c")], "program: {prog}");
        }
    }

    #[test]
    fn new_object_creation() {
        let outcome = run(
            "founder.isa -> person.",
            "ins[child].parents -> founder <= founder.isa -> person.",
        );
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("child"), "parents"), vec![oid("founder")]);
    }

    // A 2-rule cycle through conditions (b) and (c): rule2 reads the
    // negated delete on ins(X) (so the del-rule must be strictly lower)
    // while rule1 reads ins(X) positively (so the ins-rule must be at
    // most as high). Statically rejected; evaluation is stable when the
    // negated atom never flips.
    const CYCLIC_STABLE: &str = "
        r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
        r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 9.
    ";

    #[test]
    fn cyclic_program_rejected_statically() {
        let ob = ObjectBase::parse("a.m -> 1. a.trigger -> 1.").unwrap();
        let program = Program::parse(CYCLIC_STABLE).unwrap();
        let err = UpdateEngine::new(program).run(&ob).unwrap_err();
        assert!(matches!(err, EvalError::NotStratifiable(_)), "got {err:?}");
    }

    #[test]
    fn cyclic_but_stable_program_accepted_at_runtime() {
        let ob = ObjectBase::parse("a.m -> 1. a.trigger -> 1.").unwrap();
        let program = Program::parse(CYCLIC_STABLE).unwrap();
        let config = EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() };
        let outcome = UpdateEngine::with_config(program, config).run(&ob).unwrap();
        // a's final version is del(ins(a)): go was inserted, then m
        // deleted from the ins-version.
        let ob2 = outcome.new_object_base();
        assert_eq!(ob2.lookup1(oid("a"), "go"), vec![int(1)]);
        assert_eq!(ob2.lookup1(oid("a"), "m"), vec![]);
        assert_eq!(ob2.lookup1(oid("a"), "trigger"), vec![int(1)]);
    }

    #[test]
    fn cyclic_unstable_program_rejected_at_runtime() {
        // Same shape, but the negated update-term is exactly the delete
        // r1 performs: once it happens, r2's fired instance no longer
        // fires — order-dependence detected and rejected.
        let ob = ObjectBase::parse("a.m -> 1. a.trigger -> 1.").unwrap();
        let program = Program::parse(
            "r1: del[ins(X)].m -> 1 <= ins(X).m -> 1 & ins(X).go -> 1.
             r2: ins[X].go -> 1 <= X.trigger -> 1 & not del[ins(X)].m -> 1.",
        )
        .unwrap();
        let config = EngineConfig { cycles: CyclePolicy::RuntimeStability, ..Default::default() };
        let err = UpdateEngine::with_config(program, config).run(&ob).unwrap_err();
        match err {
            EvalError::Unstable { update, .. } => {
                assert!(update.contains("go"), "unexpected update: {update}");
            }
            other => panic!("expected Unstable, got {other:?}"),
        }
    }

    #[test]
    fn runtime_policy_matches_static_on_stratifiable_programs() {
        // The paper's enterprise example: identical strata, identical
        // result under either policy, with or without paranoia.
        let ob_src = "phil.isa -> empl / pos -> mgr / sal -> 4000.
                      bob.isa -> empl / boss -> phil / sal -> 4200.";
        let prog = "
            rule1: mod[E].sal -> (S, S2) <= E.isa -> empl / pos -> mgr / sal -> S & S2 = S * 1.1 + 200.
            rule2: mod[E].sal -> (S, S2) <= E.isa -> empl / sal -> S & not E.pos -> mgr & S2 = S * 1.1.
            rule3: del[mod(E)].* <= mod(E).isa -> empl / boss -> B / sal -> SE & mod(B).isa -> empl / sal -> SB & SE > SB.
            rule4: ins[mod(E)].isa -> hpe <= mod(E).isa -> empl / sal -> S & S > 4500 & not del[mod(E)].isa -> empl.
        ";
        let ob = ObjectBase::parse(ob_src).unwrap();
        let strict = UpdateEngine::new(Program::parse(prog).unwrap()).run(&ob).unwrap();
        for verify in [false, true] {
            let config = EngineConfig {
                cycles: CyclePolicy::RuntimeStability,
                verify_stability: verify,
                ..Default::default()
            };
            let relaxed =
                UpdateEngine::with_config(Program::parse(prog).unwrap(), config).run(&ob).unwrap();
            assert_eq!(strict.result(), relaxed.result(), "verify_stability = {verify}");
            assert_eq!(strict.stratification().strata, relaxed.stratification().strata);
        }
    }

    #[test]
    fn final_version_policies_on_branching_result() {
        // ins(o) and mod(o) branch off the initial version: ins adds
        // extra -> 1 (keeping m -> a), mod rewrites m to b.
        let ob = ObjectBase::parse("o.m -> a.").unwrap();
        let program = Program::parse(
            "mod[o].m -> (a, b) <= o.m -> a.
             ins[o].extra -> 1 <= o.m -> a.",
        )
        .unwrap();
        let config = EngineConfig { check_linearity: false, ..Default::default() };
        let outcome = UpdateEngine::with_config(program, config).run(&ob).unwrap();

        // The paper's policy rejects.
        assert!(outcome.new_object_base_with(FinalVersionPolicy::RequireLinear).is_err());

        // Two maximal versions, sorted ins(o) < mod(o) (chain order).
        let maximal = outcome.maximal_versions(oid("o"));
        assert_eq!(maximal.len(), 2);
        assert!(maximal[0].chain() < maximal[1].chain());

        // DeepestWins: equal depth, mod(o) wins the chain tie-break.
        let deep = outcome.new_object_base_with(FinalVersionPolicy::DeepestWins).unwrap();
        assert_eq!(deep.lookup1(oid("o"), "m"), vec![oid("b")]);
        assert_eq!(deep.lookup1(oid("o"), "extra"), vec![]);

        // MergeMaximal: union of both branches.
        let merged = outcome.new_object_base_with(FinalVersionPolicy::MergeMaximal).unwrap();
        let mut m = merged.lookup1(oid("o"), "m");
        m.sort();
        assert_eq!(m, vec![oid("a"), oid("b")]);
        assert_eq!(merged.lookup1(oid("o"), "extra"), vec![int(1)]);
    }

    #[test]
    fn final_version_policies_agree_on_linear_results() {
        let ob = ObjectBase::parse("henry.isa -> empl. henry.sal -> 250.").unwrap();
        let program = Program::parse(
            "mod[E].sal -> (S, S2) <= E.isa -> empl & E.sal -> S & S2 = S * 1.1.
             ins[mod(E)].isa -> hpe <= mod(E).sal -> S & S > 270.",
        )
        .unwrap();
        let outcome = UpdateEngine::new(program).run(&ob).unwrap();
        let linear = outcome.try_new_object_base().unwrap();
        for policy in [FinalVersionPolicy::DeepestWins, FinalVersionPolicy::MergeMaximal] {
            assert_eq!(outcome.new_object_base_with(policy).unwrap(), linear, "{policy:?}");
        }
        assert_eq!(outcome.maximal_versions(oid("henry")).len(), 1);
    }

    #[test]
    fn relaxed_stratification_flags_cycle_strata() {
        let program = Program::parse(CYCLIC_STABLE).unwrap();
        let relaxed = crate::stratify::stratify_relaxed(&program);
        assert_eq!(relaxed.stratification.strata, vec![vec![0, 1]]);
        assert_eq!(relaxed.needs_runtime_check, vec![true]);
        // A stratifiable program has no flagged strata.
        let plain = Program::parse("ins[a].p -> 1.").unwrap();
        let relaxed = crate::stratify::stratify_relaxed(&plain);
        assert_eq!(relaxed.needs_runtime_check, vec![false]);
    }

    /// A base above [`FULL_SPLIT_MIN`] objects and a singleton-component
    /// rule: the round-1 full scan must split by shard route, and the
    /// split run must match serial exactly.
    #[test]
    fn full_scans_split_above_the_object_gate() {
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("o{i}.val -> {i}.\n"));
        }
        let ob = ObjectBase::parse(&src).unwrap();
        let program = Program::parse("ins[X].tag -> 1 <= X.val -> V & V > 5.").unwrap();
        let serial = UpdateEngine::new(program.clone()).run(&ob).unwrap();
        let parallel = UpdateEngine::with_config(
            program.clone(),
            EngineConfig { parallel: true, threads: 2, ..Default::default() },
        )
        .run(&ob)
        .unwrap();
        assert!(
            parallel.stats().parallel.full_splits > 0,
            "round-1 full scan did not split: {:?}",
            parallel.stats().parallel
        );
        assert_eq!(serial.result(), parallel.result());
        assert_eq!(serial.new_object_base(), parallel.new_object_base());

        // Below the gate nothing splits.
        let small = ObjectBase::parse("a.val -> 10. b.val -> 20.").unwrap();
        let outcome = UpdateEngine::with_config(
            program,
            EngineConfig { parallel: true, threads: 2, ..Default::default() },
        )
        .run(&small)
        .unwrap();
        assert_eq!(outcome.stats().parallel.full_splits, 0);
    }
}
